//! Property tests for the scfault determinism contract (E16).
//!
//! Faults are data, not dice: a [`FaultPlan`] is fixed before the run, and
//! every retry delay is a pure function of the seed. So for a given
//! `(workload, plan, seed)`, fog sweeps under fault injection must produce
//! **byte-identical** reports *and* byte-identical Prometheus snapshots for
//! any worker count — the same promise scpar makes for fault-free runs,
//! extended to runs where nodes crash, links partition, and jobs re-route
//! mid-sim.

use proptest::prelude::*;
use smartcity::fault::{FaultPlan, FaultSpec, RetryPolicy};
use smartcity::fog::{FogSimulator, Placement, Topology, Workload};
use smartcity::simclock::SimDuration;

const THREAD_COUNTS: [usize; 2] = [2, 8];

fn spec(nodes: u32) -> FaultSpec {
    FaultSpec {
        crashes: 2.0,
        partitions: 2.0,
        latency_spikes: 1.0,
        ..FaultSpec::new(SimDuration::from_secs(15), nodes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The schedule itself is a pure function of (spec, seed): generating
    /// twice yields identical fingerprints and event listings.
    #[test]
    fn fault_plans_are_reproducible(seed in any::<u64>(), intensity in 0.0f64..3.0) {
        let s = spec(11).intensity(intensity);
        let a = FaultPlan::generate(&s, seed);
        let b = FaultPlan::generate(&s, seed);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(format!("{:?}", a.events()), format!("{:?}", b.events()));
    }

    /// Faulted fog sweeps: crash re-routing, partition store-and-forward,
    /// retry backoff, and degradation all happen identically at any thread
    /// count — reports and Prometheus exports are byte-for-byte equal.
    #[test]
    fn faulted_fog_sweep_is_thread_count_independent(
        jobs in 1usize..50,
        esc in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let topo = Topology::four_tier(3, 2, 2);
        let nodes = topo.len() as u32;
        let sim = FogSimulator::new(topo);
        let w = Workload::with_escalation(jobs, 100_000, 10.0, esc, seed);
        let plan = FaultPlan::generate(&spec(nodes), seed ^ 0xE16);
        let retry = RetryPolicy::new(4, SimDuration::from_millis(50));
        let placements = [
            Placement::AllCloud,
            Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 },
            Placement::ServerOnly,
        ];
        let serial: Vec<(String, String)> = sim
            .runner(&w)
            .threads(1)
            .faults(&plan)
            .retry(retry)
            .sweep_recorded(&placements)
            .into_iter()
            .map(|(r, snap)| (format!("{r:?}"), snap))
            .collect();
        for threads in THREAD_COUNTS {
            let par: Vec<(String, String)> = sim
                .runner(&w)
                .threads(threads)
                .faults(&plan)
                .retry(retry)
                .sweep_recorded(&placements)
                .into_iter()
                .map(|(r, snap)| (format!("{r:?}"), snap))
                .collect();
            prop_assert_eq!(&serial, &par, "{}-thread faulted sweep diverged", threads);
        }
    }

    /// Repeating the identical faulted run (same seed, same plan) twice at
    /// the same thread count is also byte-identical — no hidden global
    /// state leaks between runs.
    #[test]
    fn faulted_runs_are_repeatable(jobs in 1usize..40, seed in any::<u64>()) {
        let run = || {
            let topo = Topology::four_tier(2, 2, 1);
            let nodes = topo.len() as u32;
            let sim = FogSimulator::new(topo);
            let w = Workload::with_escalation(jobs, 80_000, 10.0, 0.5, seed);
            let plan = FaultPlan::generate(&spec(nodes), seed);
            let placement = Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 };
            let mut out = sim
                .runner(&w)
                .faults(&plan)
                .sweep_recorded(&[placement]);
            let (report, snapshot) = out.remove(0);
            (format!("{report:?}"), snapshot)
        };
        prop_assert_eq!(run(), run());
    }
}
