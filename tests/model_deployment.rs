//! Integration: the hardware layer's model-deployment flow — train on the
//! "analysis server", export the split weights, load them onto a fresh
//! "edge device" instance, and verify bit-identical decisions.

use scdata::vehicles::VehicleCatalog;
use scdata::video::FrameGenerator;
use smartcity::core::apps::vehicle::VehicleClassifier;

#[test]
fn trained_model_deploys_to_fresh_device() {
    let classes = 4;
    let catalog = VehicleCatalog::generate(classes, 1);
    let mut gen = FrameGenerator::new(catalog, 16, 16, 2).noise(0.02);
    let (frames, labels) = gen.dataset(classes, 10);

    // Train on the analysis server.
    let mut server_side = VehicleClassifier::new(classes, 16, 0.8, 3);
    server_side.train(&frames, &labels, 40, 0.01);
    let expected: Vec<_> = server_side.classify(&frames);

    // Ship both halves to a freshly initialized device (different seed).
    let device_blob = server_side.export_device_model();
    let server_blob = server_side.export_server_model();
    let mut deployed = VehicleClassifier::new(classes, 16, 0.8, 999);
    assert_ne!(deployed.classify(&frames), expected, "fresh init differs");
    deployed
        .import_models(&device_blob, &server_blob)
        .expect("same architecture");
    assert_eq!(deployed.classify(&frames), expected, "deployment is exact");

    // The device blob is the smaller artifact (fits the edge).
    assert!(device_blob.len() < server_blob.len());
}

#[test]
fn deployment_rejects_wrong_architecture() {
    let a = VehicleClassifier::new(4, 16, 0.8, 1);
    let mut b = VehicleClassifier::new(6, 16, 0.8, 2); // different class count
    assert!(b
        .import_models(&a.export_device_model(), &a.export_server_model())
        .is_err());
}
