//! Property tests for the scpar determinism contract (E15).
//!
//! The parallel runtime promises that the thread count is a pure throughput
//! knob: for a given seed, running on 1, 2, or 8 workers must produce
//! **byte-identical** numeric results *and* byte-identical telemetry
//! exports. These tests exercise that promise across the three layers the
//! runtime is wired into — dense linear algebra, batched neural inference,
//! and fog placement sweeps.

use proptest::prelude::*;
use smartcity::fog::{FogSimulator, Placement, Topology, Workload};
use smartcity::neural::layers::{Dense, Relu};
use smartcity::neural::linalg::Mat;
use smartcity::neural::net::Sequential;
use smartcity::neural::tensor::Tensor;
use smartcity::par::ScparConfig;

/// Deterministic pseudo-random fill: a splitmix64 stream mapped to [-1, 1].
fn fill(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

const THREAD_COUNTS: [usize; 2] = [2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Blocked matmul: panel boundaries are a function of the shape only,
    /// so any worker count reassembles the exact same f64 bit patterns.
    #[test]
    fn matmul_is_thread_count_independent(
        m in 1usize..70,
        k in 1usize..40,
        n in 1usize..50,
        seed in any::<u64>(),
    ) {
        let a = Mat::from_vec(m, k, fill(seed, m * k));
        let b = Mat::from_vec(k, n, fill(seed ^ 0xabcd, k * n));
        let serial = a.matmul_with(&b, &ScparConfig::serial());
        for threads in THREAD_COUNTS {
            let par = a.matmul_with(&b, &ScparConfig::with_threads(threads));
            let same = (0..m).all(|i| {
                (0..n).all(|j| serial[(i, j)].to_bits() == par[(i, j)].to_bits())
            });
            prop_assert!(same, "{threads}-thread matmul diverged");
        }
    }

    /// Batched inference: row chunks are fixed at `BATCH_CHUNK_ROWS`, so
    /// logits are bit-identical for every worker count.
    #[test]
    fn batch_inference_is_thread_count_independent(
        rows in 1usize..90,
        seed in any::<u64>(),
    ) {
        let net = Sequential::new()
            .with(Dense::new(6, 12, seed))
            .with(Relu::new())
            .with(Dense::new(12, 3, seed ^ 1));
        let data: Vec<f32> = fill(seed ^ 2, rows * 6).iter().map(|v| *v as f32).collect();
        let input = Tensor::from_vec(vec![rows, 6], data).unwrap();
        let serial = net.predict_with(&input, &ScparConfig::serial());
        for threads in THREAD_COUNTS {
            let par = net.predict_with(&input, &ScparConfig::with_threads(threads));
            let same = serial
                .data()
                .iter()
                .zip(par.data().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "{threads}-thread inference diverged");
        }
    }

    /// Fog placement sweeps: each run gets a private recorder, results are
    /// combined in submission order, so both the reports *and* the
    /// Prometheus snapshots are byte-identical for every worker count.
    #[test]
    fn fog_sweep_is_thread_count_independent(
        jobs in 1usize..60,
        esc in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let sim = FogSimulator::new(Topology::four_tier(3, 2, 1));
        let w = Workload::with_escalation(jobs, 100_000, 10.0, esc, seed);
        let placements = [
            Placement::AllCloud,
            Placement::AllEdge,
            Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 },
            Placement::ServerOnly,
        ];
        let serial: Vec<(String, String)> = sim
            .runner(&w)
            .threads(1)
            .sweep_recorded(&placements)
            .into_iter()
            .map(|(r, snap)| (format!("{r:?}"), snap))
            .collect();
        for threads in THREAD_COUNTS {
            let par: Vec<(String, String)> = sim
                .runner(&w)
                .threads(threads)
                .sweep_recorded(&placements)
                .into_iter()
                .map(|(r, snap)| (format!("{r:?}"), snap))
                .collect();
            prop_assert_eq!(&serial, &par, "{}-thread sweep diverged", threads);
        }
    }
}
