//! Property tests for the scpar determinism contract (E15).
//!
//! The parallel runtime promises that the thread count is a pure throughput
//! knob: for a given seed, running on 1, 2, or 8 workers must produce
//! **byte-identical** numeric results *and* byte-identical telemetry
//! exports. These tests exercise that promise across the three layers the
//! runtime is wired into — dense linear algebra, batched neural inference,
//! and fog placement sweeps.
//!
//! The same contract extends to the SIMD dispatch axis: `scsimd`'s strict
//! profile promises that the vector backends replay the scalar reference's
//! exact IEEE-754 operation sequence, so pinning `Isa::Scalar` versus the
//! runtime-dispatched ISA must also be byte-identical.

use proptest::prelude::*;
use smartcity::fog::{FogSimulator, Placement, Topology, Workload};
use smartcity::neural::exec::ExecCtx;
use smartcity::neural::layers::{Dense, Relu};
use smartcity::neural::linalg::Mat;
use smartcity::neural::net::Sequential;
use smartcity::neural::tensor::Tensor;
use smartcity::par::ScparConfig;

/// Deterministic pseudo-random fill: a splitmix64 stream mapped to [-1, 1].
fn fill(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

const THREAD_COUNTS: [usize; 2] = [2, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Blocked matmul: panel boundaries are a function of the shape only,
    /// so any worker count reassembles the exact same f64 bit patterns.
    #[test]
    fn matmul_is_thread_count_independent(
        m in 1usize..70,
        k in 1usize..40,
        n in 1usize..50,
        seed in any::<u64>(),
    ) {
        let a = Mat::from_vec(m, k, fill(seed, m * k));
        let b = Mat::from_vec(k, n, fill(seed ^ 0xabcd, k * n));
        let serial = a.matmul_ctx(&b, &ExecCtx::serial());
        for threads in THREAD_COUNTS {
            let ctx = ExecCtx::serial().with_par(ScparConfig::with_threads(threads));
            let par = a.matmul_ctx(&b, &ctx);
            let same = (0..m).all(|i| {
                (0..n).all(|j| serial[(i, j)].to_bits() == par[(i, j)].to_bits())
            });
            prop_assert!(same, "{threads}-thread matmul diverged");
        }
    }

    /// Batched inference: row chunks are fixed at `BATCH_CHUNK_ROWS`, so
    /// logits are bit-identical for every worker count.
    #[test]
    fn batch_inference_is_thread_count_independent(
        rows in 1usize..90,
        seed in any::<u64>(),
    ) {
        let net = Sequential::new()
            .with(Dense::new(6, 12, seed))
            .with(Relu::new())
            .with(Dense::new(12, 3, seed ^ 1));
        let data: Vec<f32> = fill(seed ^ 2, rows * 6).iter().map(|v| *v as f32).collect();
        let input = Tensor::from_vec(vec![rows, 6], data).unwrap();
        let serial = net.predict_ctx(&input, &ExecCtx::serial());
        for threads in THREAD_COUNTS {
            let ctx = ExecCtx::serial().with_par(ScparConfig::with_threads(threads));
            let par = net.predict_ctx(&input, &ctx);
            let same = serial
                .data()
                .iter()
                .zip(par.data().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "{threads}-thread inference diverged");
        }
    }

    /// Fog placement sweeps: each run gets a private recorder, results are
    /// combined in submission order, so both the reports *and* the
    /// Prometheus snapshots are byte-identical for every worker count.
    #[test]
    fn fog_sweep_is_thread_count_independent(
        jobs in 1usize..60,
        esc in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let sim = FogSimulator::new(Topology::four_tier(3, 2, 1));
        let w = Workload::with_escalation(jobs, 100_000, 10.0, esc, seed);
        let placements = [
            Placement::AllCloud,
            Placement::AllEdge,
            Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 },
            Placement::ServerOnly,
        ];
        let serial: Vec<(String, String)> = sim
            .runner(&w)
            .threads(1)
            .sweep_recorded(&placements)
            .into_iter()
            .map(|(r, snap)| (format!("{r:?}"), snap))
            .collect();
        for threads in THREAD_COUNTS {
            let par: Vec<(String, String)> = sim
                .runner(&w)
                .threads(threads)
                .sweep_recorded(&placements)
                .into_iter()
                .map(|(r, snap)| (format!("{r:?}"), snap))
                .collect();
            prop_assert_eq!(&serial, &par, "{}-thread sweep diverged", threads);
        }
    }

    /// SIMD dispatch axis: the f32 inference kernels (matmul, activations,
    /// softmax) pinned to the scalar backend versus the runtime-dispatched
    /// ISA give byte-identical outputs — at every thread count. This is
    /// the strict-profile contract the per-ISA golden policy rests on.
    #[test]
    fn inference_kernels_are_isa_independent(
        rows in 1usize..60,
        seed in any::<u64>(),
    ) {
        let scalar = smartcity::simd::Isa::Scalar;
        let native = smartcity::simd::Isa::active();

        let data: Vec<f32> = fill(seed, rows * 6).iter().map(|v| *v as f32).collect();
        let w: Vec<f32> = fill(seed ^ 1, 6 * 12).iter().map(|v| *v as f32).collect();
        let input = Tensor::from_vec(vec![rows, 6], data).unwrap();
        let weight = Tensor::from_vec(vec![6, 12], w).unwrap();

        let logits_s = input
            .matmul_ctx(&weight, &ExecCtx::serial().with_isa(scalar))
            .unwrap();
        for threads in [1usize, 2, 8] {
            let ctx = ExecCtx::serial()
                .with_par(ScparConfig::with_threads(threads))
                .with_isa(native);
            let logits_n = input.matmul_ctx(&weight, &ctx).unwrap();
            let same = logits_s
                .data()
                .iter()
                .zip(logits_n.data().iter())
                .all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "{threads}-thread SIMD f32 matmul diverged from scalar");
        }

        type UnaryOp = fn(&mut [f32], smartcity::simd::Isa);
        let unary: [UnaryOp; 4] = [
            smartcity::simd::exp_f32,
            smartcity::simd::sigmoid_f32,
            smartcity::simd::tanh_f32,
            smartcity::simd::relu_f32,
        ];
        for op in unary {
            let mut s = logits_s.data().to_vec();
            let mut n = logits_s.data().to_vec();
            op(&mut s, scalar);
            op(&mut n, native);
            let same = s.iter().zip(n.iter()).all(|(x, y)| x.to_bits() == y.to_bits());
            prop_assert!(same, "SIMD activation diverged from scalar backend");
        }

        let mut sm_s = logits_s.data().to_vec();
        let mut sm_n = logits_s.data().to_vec();
        smartcity::simd::softmax_rows_f32(&mut sm_s, 12, scalar);
        smartcity::simd::softmax_rows_f32(&mut sm_n, 12, native);
        let same = sm_s.iter().zip(sm_n.iter()).all(|(x, y)| x.to_bits() == y.to_bits());
        prop_assert!(same, "SIMD softmax diverged from scalar backend");
    }

    /// f64 matmul pinned to `Isa::Scalar` versus the dispatched ISA is
    /// byte-identical: the vector panels replay the scalar op order.
    #[test]
    fn matmul_is_isa_independent(
        m in 1usize..50,
        k in 1usize..40,
        n in 1usize..50,
        seed in any::<u64>(),
    ) {
        let a = Mat::from_vec(m, k, fill(seed, m * k));
        let b = Mat::from_vec(k, n, fill(seed ^ 0xabcd, k * n));
        let scalar = a.matmul_ctx(&b, &ExecCtx::serial().with_isa(smartcity::simd::Isa::Scalar));
        let native = a.matmul_ctx(&b, &ExecCtx::serial().with_isa(smartcity::simd::Isa::active()));
        let same = (0..m).all(|i| {
            (0..n).all(|j| scalar[(i, j)].to_bits() == native[(i, j)].to_bits())
        });
        prop_assert!(same, "SIMD matmul diverged from scalar backend");
    }
}
