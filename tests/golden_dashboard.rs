//! Golden-master pin of the dashboard artifacts (seed 42).
//!
//! `smartcity::core::artifacts::build_dashboard_artifacts` promises byte
//! determinism: same seed, same bytes, on every platform and
//! `SCPAR_THREADS` setting. This suite holds it to that with checked-in
//! snapshots of the two artifacts where every layer's output converges —
//! the KPI dashboard JSON and the Prometheus metrics export (pipeline,
//! storage, and `scserve_*` serving metrics alike).
//!
//! Any intentional change to pipeline output, metric names, float
//! formatting, or serving behaviour shows up here as a reviewable diff.
//! Regenerate with:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test --test golden_dashboard
//! ```

use std::fs;
use std::path::PathBuf;

use smartcity::core::artifacts::build_dashboard_artifacts;

const SEED: u64 = 42;
const RECORDS: usize = 400;
const WAZE: usize = 80;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `got` against the checked-in snapshot, with a
/// line-resolution report on mismatch. `GOLDEN_UPDATE=1` rewrites the
/// snapshot instead.
fn assert_matches_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, got).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {path:?} ({e}); run GOLDEN_UPDATE=1 cargo test")
    });
    if got == want {
        return;
    }
    let line = got
        .lines()
        .zip(want.lines())
        .position(|(g, w)| g != w)
        .map(|i| i + 1)
        .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
    let g = got.lines().nth(line - 1).unwrap_or("<eof>");
    let w = want.lines().nth(line - 1).unwrap_or("<eof>");
    panic!(
        "{name} diverged from its golden snapshot at line {line}:\n  got:  {g}\n  want: {w}\n\
         ({} vs {} bytes total; GOLDEN_UPDATE=1 regenerates if intentional)",
        got.len(),
        want.len()
    );
}

#[test]
fn dashboard_json_matches_golden_snapshot() {
    let artifacts = build_dashboard_artifacts(SEED, RECORDS, WAZE);
    assert_matches_golden("dashboard_seed42.json", &artifacts.dashboard_json);
}

#[test]
fn metrics_prom_matches_golden_snapshot() {
    let artifacts = build_dashboard_artifacts(SEED, RECORDS, WAZE);
    // Sanity first: the snapshot must actually cover the serving tier, so
    // a regression that silently drops scserve metrics cannot re-pin an
    // emptier export.
    assert!(artifacts.metrics_prom.contains("scserve_requests_total"));
    assert!(artifacts.metrics_prom.contains("scserve_batch_size"));
    assert_matches_golden("metrics_seed42.prom", &artifacts.metrics_prom);
}

#[test]
fn trace_json_matches_golden_snapshot() {
    let artifacts = build_dashboard_artifacts(SEED, RECORDS, WAZE);
    // Sanity first: the artifact must carry exemplar Chrome-trace events,
    // all three critical-path exemplars, and an alert-free baseline, so a
    // regression cannot re-pin an empty trace document.
    let doc: serde_json::Value = serde_json::from_str(&artifacts.trace_json).unwrap();
    assert!(!doc["traceEvents"].as_array().unwrap().is_empty());
    let labels: Vec<_> = doc["critical_path"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| e["label"].as_str().unwrap().to_string())
        .collect();
    assert_eq!(labels, ["p50", "p99", "max"]);
    assert_eq!(doc["alerts"]["alerts"].as_array().unwrap().len(), 0);
    assert_matches_golden("trace_seed42.json", &artifacts.trace_json);
}
