//! Integration: the E4 linkage — a *real* trained early-exit model's offload
//! fraction drives the fog simulator, reproducing Fig. 5's system behaviour
//! (threshold ↑ ⇒ escalations ↑ ⇒ upstream bytes ↑ and accuracy ↑).

use scdata::vehicles::VehicleCatalog;
use scdata::video::FrameGenerator;
use smartcity::core::apps::vehicle::VehicleClassifier;
use smartcity::fog::{FogSimulator, Placement, Topology, Workload};

#[test]
fn trained_offload_fraction_drives_fog_costs() {
    // Train a small early-exit classifier.
    let classes = 4;
    let catalog = VehicleCatalog::generate(classes, 1);
    let mut gen = FrameGenerator::new(catalog, 16, 16, 2).noise(0.02);
    let (frames, labels) = gen.dataset(classes, 12);
    let mut clf = VehicleClassifier::new(classes, 16, 0.5, 3);
    clf.train(&frames, &labels, 40, 0.01);

    // Sweep the confidence threshold; collect (offload, accuracy).
    let mut rows = Vec::new();
    for &threshold in &[0.3f32, 0.6, 0.9, 0.99] {
        clf.set_threshold(threshold);
        let (acc, offload) = clf.evaluate(&frames, &labels);
        rows.push((threshold, acc, offload));
    }

    // Offload fraction must be monotone in the threshold.
    for pair in rows.windows(2) {
        assert!(
            pair[1].2 >= pair[0].2,
            "offload must not decrease: {rows:?}"
        );
    }
    // The loosest threshold keeps (nearly) everything local; the tightest
    // escalates a strict majority or more.
    assert!(rows[0].2 < 0.5, "threshold 0.3 mostly local: {rows:?}");
    assert!(
        rows[3].2 > rows[0].2,
        "threshold 0.99 escalates more: {rows:?}"
    );

    // Feed measured offload fractions into the fog simulator: upstream bytes
    // must grow with the measured escalation rate.
    let sim = FogSimulator::new(Topology::four_tier(4, 2, 1));
    let mut last_bytes = 0u64;
    for &(_, _, offload) in &rows {
        let workload = Workload::with_escalation(100, 100_000, 10.0, offload, 4);
        let report = sim
            .runner(&workload)
            .placement(Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 6 * 8 * 8 * 4,
            })
            .run();
        assert!(
            report.fog_to_server_bytes >= last_bytes,
            "upstream bytes track offload"
        );
        last_bytes = report.fog_to_server_bytes;
    }
}

#[test]
fn early_exit_dominates_extremes_in_fog_costs() {
    let sim = FogSimulator::new(Topology::four_tier(4, 2, 1));
    let workload = Workload::with_escalation(150, 100_000, 10.0, 0.3, 5);
    let early = sim
        .runner(&workload)
        .placement(Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        })
        .run();
    let all_edge = sim.runner(&workload).placement(Placement::AllEdge).run();
    let all_cloud = sim.runner(&workload).placement(Placement::AllCloud).run();

    // The paper's design goal: far less upstream traffic than cloud
    // processing, far lower latency than running everything on the edge.
    assert!(early.total_upstream_bytes() * 5 < all_cloud.total_upstream_bytes());
    assert!(early.mean_latency_s * 2.0 < all_edge.mean_latency_s);
}
