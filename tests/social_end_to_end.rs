//! Integration: the §IV-B investigation flow with the paper's calibrated
//! network, a mixed tweet corpus, and the document-store report log.

use scdata::tweets::TweetGenerator;
use scsocial::narrowing::{person_handle, Incident, NarrowingConfig};
use scsocial::GangNetworkGenerator;
use simclock::SimTime;
use smartcity::core::apps::social::InvestigationService;
use smartcity::geo::GeoPoint;

#[test]
fn paper_statistics_and_narrowing_hold_together() {
    let network = GangNetworkGenerator::baton_rouge(200).generate();

    // The §IV-B quantities.
    assert_eq!(network.gang_count(), 67);
    assert_eq!(network.member_count(), 982);
    let stats = network.member_stats();
    assert!((stats.mean_first_degree - 14.0).abs() < 1.5, "{stats:?}");
    assert!(
        (150.0..260.0).contains(&stats.mean_second_degree),
        "{stats:?}"
    );

    // Incident seeded on a member with a decent field.
    let seed_person = network.members()[10];
    let incident = Incident {
        location: GeoPoint::new(30.4515, -91.1871),
        time: SimTime::from_secs(50_000),
        seed_person,
    };
    let field = network.graph().second_degree(seed_person);
    assert!(field.len() > 50);

    // Corpus: 4 guilty associates near the scene; 300 benign distractors
    // from the field posted far away.
    let mut gen = TweetGenerator::new(201);
    let mut tweets = Vec::new();
    let guilty: Vec<_> = field.iter().take(4).copied().collect();
    for &g in &guilty {
        tweets.push(gen.near_incident(
            &person_handle(g),
            incident.location,
            400.0,
            incident.time,
            30 * 60 * 1_000_000,
        ));
    }
    for (i, &p) in field.iter().enumerate().take(300) {
        let far = incident.location.offset_m(12_000.0, (i as f64) * 3.0);
        tweets.push(gen.benign(&person_handle(p), far, SimTime::from_secs(999_000)));
    }

    let mut service = InvestigationService::new(network, tweets, NarrowingConfig::default());
    let (_, report) = service.investigate(&incident);

    // Exactly the guilty surface.
    let mut expect = guilty.clone();
    expect.sort_unstable();
    assert_eq!(report.persons_of_interest, expect);
    assert!(
        report.reduction_factor > 10.0,
        "field {} → poi {} (factor {})",
        report.field_of_interest,
        report.persons_of_interest.len(),
        report.reduction_factor
    );

    // The report is durably queryable.
    assert_eq!(service.reports_for(seed_person.0).len(), 1);
}
