//! The sctune determinism contract: tuning is a wall-clock knob and
//! nothing else.
//!
//! Every tunable (matmul panel height, predict chunk height, k-means
//! cells per task, micro-batch size) only moves scpar task boundaries
//! between independent work units, and every kernel keeps its telemetry
//! accounting pinned to the nominal constants. So for a given seed:
//!
//! * the committed `tuning_table.json` must yield byte-identical outputs,
//!   profiles, and Prometheus text at any `SCPAR_THREADS` and any
//!   `SCSIMD_FORCE` — identical to the untuned run;
//! * **any** table entry — including adversarial values no sane generator
//!   would emit — must preserve output bits (property-tested below);
//! * the committed table itself must be canonical: load → re-serialize
//!   must reproduce the file byte-for-byte.

use proptest::prelude::*;
use smartcity::compute::mllib::kmeans_ctx;
use smartcity::neural::exec::ExecCtx;
use smartcity::neural::layers::{Dense, Relu};
use smartcity::neural::linalg::Mat;
use smartcity::neural::net::Sequential;
use smartcity::neural::tensor::Tensor;
use smartcity::par::ScparConfig;
use smartcity::telemetry::{prometheus_text, Telemetry};
use smartcity::tune::{TuneKey, Tuner, TuningTable};

/// Deterministic pseudo-random fill: a splitmix64 stream mapped to [-1, 1].
fn fill(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 2.0 - 1.0
        })
        .collect()
}

fn committed_table_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tuning_table.json")
}

#[test]
fn committed_table_is_canonical_and_nonempty() {
    let path = committed_table_path();
    let text = std::fs::read_to_string(&path).expect("tuning_table.json is committed");
    let table = TuningTable::from_json(&text).expect("committed table validates");
    assert!(!table.is_empty(), "committed table has entries");
    assert_eq!(
        table.to_json_string(),
        text,
        "committed table must be in canonical form (regenerate with tune_gen)"
    );
}

/// One full tuned pass over the three wired compute kernels, with work
/// accounting recorded. Returns (output bits, prometheus text).
fn tuned_run(tuner: Tuner, threads: usize, isa: smartcity::simd::Isa) -> (Vec<u64>, String) {
    let telemetry = Telemetry::shared();
    let ctx = ExecCtx::serial()
        .with_par(ScparConfig::with_threads(threads))
        .with_isa(isa)
        .with_telemetry(telemetry.handle())
        .with_tuner(tuner);

    let mut bits: Vec<u64> = Vec::new();

    // f64 matmul: the committed table has an exact entry for this shape.
    let a = Mat::from_vec(2048, 16, fill(3, 2048 * 16));
    let b = Mat::from_vec(16, 16, fill(4, 16 * 16));
    let prod = a.matmul_ctx(&b, &ctx);
    bits.extend(
        (0..2048)
            .flat_map(|i| (0..16).map(move |j| (i, j)))
            .map(|(i, j)| prod[(i, j)].to_bits()),
    );

    // f32 matmul through the tensor path.
    let ta = Tensor::from_vec(
        vec![192, 32],
        fill(5, 192 * 32).iter().map(|v| *v as f32).collect(),
    )
    .unwrap();
    let tb = Tensor::from_vec(
        vec![32, 8],
        fill(6, 32 * 8).iter().map(|v| *v as f32).collect(),
    )
    .unwrap();
    let tp = ta.matmul_ctx(&tb, &ctx).expect("shapes agree");
    bits.extend(tp.data().iter().map(|v| v.to_bits() as u64));

    // Batched inference (exact `predict/r256/e64/t*` entries).
    let net = Sequential::new()
        .with(Dense::new(64, 32, 7))
        .with(Relu::new())
        .with(Dense::new(32, 8, 8))
        .with_telemetry(telemetry.handle());
    let input = Tensor::from_vec(
        vec![256, 64],
        fill(9, 256 * 64).iter().map(|v| *v as f32).collect(),
    )
    .unwrap();
    let logits = net.predict_ctx(&input, &ctx);
    bits.extend(logits.data().iter().map(|v| v.to_bits() as u64));

    // k-means (exact `kmeans/p2048/d4/k8/t*` entries).
    let points: Vec<Vec<f64>> = (0..2048).map(|i| fill(100 + i as u64, 4)).collect();
    let model = kmeans_ctx(&points, 8, 4, 11, &ctx);
    bits.extend(model.centroids.iter().flatten().map(|v| v.to_bits()));
    bits.push(model.inertia.to_bits());
    bits.push(model.iterations as u64);

    (bits, prometheus_text(telemetry.registry()))
}

/// The committed table at every thread count and both ISA pins must match
/// the untuned serial run bit-for-bit — outputs *and* telemetry.
#[test]
fn committed_table_is_bit_and_telemetry_identical_across_threads_and_isa() {
    let table = TuningTable::load(&committed_table_path()).expect("committed table loads");
    let (base_bits, base_prom) = tuned_run(Tuner::disabled(), 1, smartcity::simd::Isa::Scalar);
    for threads in [1usize, 2, 8] {
        for isa in [smartcity::simd::Isa::Scalar, smartcity::simd::Isa::active()] {
            let (bits, prom) = tuned_run(Tuner::from_table(table.clone()), threads, isa);
            assert_eq!(
                base_bits,
                bits,
                "tuned outputs diverged at {threads} threads, ISA {}",
                isa.name()
            );
            assert_eq!(
                base_prom,
                prom,
                "tuned Prometheus text diverged at {threads} threads, ISA {}",
                isa.name()
            );
        }
    }
}

/// Work accounting is pinned to the *nominal* schedule constants, so the
/// scprof profile JSON must be byte-identical tuned vs untuned — at every
/// thread count.
#[test]
fn tuned_profile_json_matches_untuned_across_threads() {
    use smartcity::prof::Profiler;
    let table = TuningTable::load(&committed_table_path()).expect("committed table loads");
    let profile = |tuner: Tuner, threads: usize| {
        let profiler = Profiler::shared();
        let ctx = ExecCtx::serial()
            .with_par(ScparConfig::with_threads(threads))
            .with_telemetry(profiler.handle())
            .with_tuner(tuner);
        let a = Mat::from_vec(2048, 16, fill(31, 2048 * 16));
        let b = Mat::from_vec(16, 16, fill(32, 16 * 16));
        a.matmul_ctx(&b, &ctx);
        let points: Vec<Vec<f64>> = (0..2048).map(|i| fill(300 + i as u64, 4)).collect();
        kmeans_ctx(&points, 8, 4, 33, &ctx);
        profiler.report().to_json()
    };
    let base = profile(Tuner::disabled(), 1);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            base,
            profile(Tuner::from_table(table.clone()), threads),
            "tuned profile JSON diverged at {threads} threads"
        );
    }
}

/// Nearest-key fallback serves shapes the table has never seen — and the
/// donated schedule is still bit-safe.
#[test]
fn nearest_key_fallback_is_bit_safe() {
    let mut table = TuningTable::empty();
    table.insert(TuneKey::matmul_f64(2048, 16, 16, 2, "any"), 256);
    let tuner = Tuner::from_table(table);
    // No entry for this shape or thread count: nearest donates 256.
    assert_eq!(
        tuner.matmul_f64_panel_rows(1000, 16, 16, 8, "avx2", 32),
        256
    );

    let a = Mat::from_vec(1000, 16, fill(21, 1000 * 16));
    let b = Mat::from_vec(16, 16, fill(22, 16 * 16));
    let plain = a.matmul_ctx(&b, &ExecCtx::serial());
    let ctx = ExecCtx::serial()
        .with_par(ScparConfig::with_threads(8))
        .with_tuner(tuner);
    let tuned = a.matmul_ctx(&b, &ctx);
    let same =
        (0..1000).all(|i| (0..16).all(|j| plain[(i, j)].to_bits() == tuned[(i, j)].to_bits()));
    assert!(same, "nearest-donated panel changed matmul bits");
}

/// A corrupt table file must never poison a run: the env-path loader
/// reports and disables instead of panicking, and a disabled tuner is the
/// pre-tuning behavior exactly.
#[test]
fn corrupt_table_file_disables_tuning_without_panic() {
    let dir = std::env::temp_dir().join("sctune-corrupt-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tuning_table.json");
    std::fs::write(&path, "{ not json").unwrap();
    let tuner = Tuner::from_table_path(&path);
    assert!(!tuner.is_enabled(), "corrupt table must disable the tuner");
    assert_eq!(tuner.predict_chunk_rows(256, 64, 2, 32), 32);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ANY table entry — sane, absurd, adversarial — preserves output
    /// bits for every wired kernel, at any thread count. This is the
    /// schedule-only guarantee the whole crate rests on.
    #[test]
    fn arbitrary_table_entries_preserve_bits(
        panel in 1usize..600,
        chunk in 1usize..600,
        cells in 1usize..40,
        m in 1usize..200,
        rows in 1usize..120,
        points in 8usize..600,
        threads in 1usize..9,
        seed in any::<u64>(),
    ) {
        let mut table = TuningTable::empty();
        table.insert(TuneKey::matmul_f64(m, 8, 8, threads, "any"), panel);
        table.insert(TuneKey::predict(rows, 6, threads), chunk);
        table.insert(TuneKey::kmeans(points, 3, 4, threads), cells);
        let ctx = ExecCtx::serial()
            .with_par(ScparConfig::with_threads(threads))
            .with_tuner(Tuner::from_table(table));
        let plain = ExecCtx::serial();

        let a = Mat::from_vec(m, 8, fill(seed, m * 8));
        let b = Mat::from_vec(8, 8, fill(seed ^ 1, 64));
        let (x, y) = (a.matmul_ctx(&b, &plain), a.matmul_ctx(&b, &ctx));
        let same = (0..m).all(|i| (0..8).all(|j| x[(i, j)].to_bits() == y[(i, j)].to_bits()));
        prop_assert!(same, "tuned matmul diverged (panel {panel})");

        let net = Sequential::new()
            .with(Dense::new(6, 12, seed))
            .with(Relu::new())
            .with(Dense::new(12, 3, seed ^ 2));
        let data: Vec<f32> = fill(seed ^ 3, rows * 6).iter().map(|v| *v as f32).collect();
        let input = Tensor::from_vec(vec![rows, 6], data).unwrap();
        let (px, py) = (net.predict_ctx(&input, &plain), net.predict_ctx(&input, &ctx));
        let same = px.data().iter().zip(py.data().iter()).all(|(u, v)| u.to_bits() == v.to_bits());
        prop_assert!(same, "tuned predict diverged (chunk {chunk})");

        let pts: Vec<Vec<f64>> = (0..points).map(|i| fill(seed ^ (4 + i as u64), 3)).collect();
        let (kx, ky) = (kmeans_ctx(&pts, 4, 3, seed, &plain), kmeans_ctx(&pts, 4, 3, seed, &ctx));
        prop_assert_eq!(kx.iterations, ky.iterations, "tuned kmeans iteration count diverged");
        let same = kx.centroids.iter().flatten().zip(ky.centroids.iter().flatten())
            .all(|(u, v)| u.to_bits() == v.to_bits())
            && kx.inertia.to_bits() == ky.inertia.to_bits();
        prop_assert!(same, "tuned kmeans diverged (cells {cells})");
    }
}
