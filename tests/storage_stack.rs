//! Integration: the storage substrates working as the paper combines them —
//! streaming ingestion feeding the wide-column store, batch archival in the
//! DFS, and the HBase-vs-HDFS access-pattern contrast (§II-C2).

use smartcity::dfs::DfsCluster;
use smartcity::nosql::wide_column::Table;
use smartcity::stream::{Event, Pipeline, Sink, VecSource};

/// A sink that writes events into a wide-column table keyed by event key.
#[derive(Debug)]
struct TableSink {
    table: Table,
}

impl Sink for TableSink {
    fn deliver(&mut self, events: &[Event]) -> Result<(), String> {
        for e in events {
            let key = e.key().ok_or("event missing key")?;
            self.table
                .put(key, "raw", "payload", e.payload().to_vec())
                .unwrap();
        }
        Ok(())
    }
}

#[test]
fn stream_into_wide_column_store() {
    let events: Vec<Event> = (0..200)
        .map(|i| Event::with_key(format!("evt-{i:04}"), vec![i as u8]))
        .collect();
    let source = VecSource::new(events, 16);
    let sink = TableSink {
        table: Table::new("raw_events", 64),
    };
    let mut pipeline = Pipeline::new(Box::new(source), 32, Box::new(sink)).sink_batch(8);
    let stats = pipeline.run_to_completion(1000);
    assert_eq!(stats.delivered, 200);
    assert_eq!(stats.buffered, 0);
}

#[test]
fn wide_column_random_access_vs_dfs_batch() {
    // Same logical dataset in both systems.
    let n = 300usize;
    let mut table = Table::new("incidents", 128);
    let mut dfs = DfsCluster::new(4, 2, 4 * 1024, 9).unwrap();
    let mut batch = Vec::new();
    for i in 0..n {
        let value = format!("incident-{i}");
        table
            .put(&format!("row-{i:05}"), "f", "v", value.clone().into_bytes())
            .unwrap();
        batch.extend_from_slice(value.as_bytes());
        batch.push(b'\n');
    }
    dfs.create("/incidents/batch.dat", &batch).unwrap();

    // Random point reads: the wide-column store answers each key directly.
    for i in (0..n).step_by(29) {
        let v = table
            .get(&format!("row-{i:05}"), "f", "v")
            .expect("present");
        assert_eq!(v, format!("incident-{i}").into_bytes());
    }

    // The DFS only offers whole-file (batch) access — to read one record you
    // read the blocks.
    let blob = dfs.read("/incidents/batch.dat").unwrap();
    assert_eq!(blob.len(), batch.len());
    let lines: Vec<&[u8]> = blob
        .split(|&b| b == b'\n')
        .filter(|l| !l.is_empty())
        .collect();
    assert_eq!(lines.len(), n);

    // Ordered scans: the wide-column store returns sorted row ranges.
    let day: Vec<String> = table
        .scan_rows("row-00010", "row-00020")
        .map(|(k, _)| k.row)
        .collect();
    assert_eq!(day.len(), 10);
    assert!(day.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn lsm_flush_plus_dfs_archival() {
    // Annotation lifecycle: hot writes in the memtable, flushed runs, and a
    // cold archive copy in the DFS.
    let mut table = Table::new("annotations", 16);
    for i in 0..100 {
        table
            .put(&format!("video-{i:03}"), "meta", "label", vec![i as u8])
            .unwrap();
    }
    table.flush();
    let stats = table.stats();
    assert!(stats.flushes >= 1);
    assert_eq!(stats.memtable_cells, 0);

    // Export the full scan as an archive file.
    let mut archive = Vec::new();
    for (key, value) in table.scan_rows("", "\u{10FFFF}") {
        archive.extend_from_slice(key.row.as_bytes());
        archive.push(b'=');
        archive.extend_from_slice(&value);
        archive.push(b';');
    }
    let mut dfs = DfsCluster::new(3, 2, 1024, 10).unwrap();
    dfs.create("/archive/annotations-2026-07.bin", &archive)
        .unwrap();
    assert_eq!(
        dfs.read("/archive/annotations-2026-07.bin").unwrap(),
        archive
    );
}
