//! Determinism contract for the scprof work-accounting profiler (E15/scprof).
//!
//! The profiler's promise: for a given seed, the aggregated `ProfileReport`
//! — and therefore the JSON export and the folded-stack flamegraph — is
//! **byte-identical** at any worker count. Thread count changes how work is
//! chunked (and so the hidden `calls` counters), never the summed work.
//! These tests pin that promise across the full pipeline and at the matmul
//! kernel level, where the recorded FLOPs must equal the closed form
//! `2·m·n·k`.

use proptest::prelude::*;
use smartcity::compute::mllib::kmeans_ctx;
use smartcity::core::infrastructure::Cyberinfrastructure;
use smartcity::core::pipeline::CityDataPipeline;
use smartcity::neural::exec::ExecCtx;
use smartcity::par::ScparConfig;
use smartcity::prof::{CostDimension, Profiler};
use smartcity::telemetry::WorkDelta;

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Deterministic pseudo-random fill in [-1, 1] (splitmix64).
fn fill(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            ((z as f64 / u64::MAX as f64) * 2.0 - 1.0) as f32
        })
        .collect()
}

/// Runs the full city pipeline under a fresh profiler at `threads` workers
/// and returns the aggregated report.
fn profiled_pipeline_report(threads: usize) -> smartcity::prof::ProfileReport {
    let profiler = Profiler::shared();
    let mut infra = Cyberinfrastructure::builder().seed(7).build();
    let (topic, store, annotations) = infra.pipeline_stores();
    CityDataPipeline::new(7, 400, 80)
        .runner(topic, store, annotations)
        .threads(threads)
        .telemetry(profiler.handle())
        .run()
        .expect("generated pipeline data is always valid");
    profiler.report()
}

#[test]
fn pipeline_profile_json_and_folded_are_byte_identical_across_threads() {
    let baseline = profiled_pipeline_report(1);
    let base_json = baseline.to_json();
    let base_folded_flops = baseline.folded(CostDimension::Flops);
    let base_folded_items = baseline.folded(CostDimension::Items);
    assert!(
        !baseline.kernels.is_empty(),
        "pipeline run must attribute work to kernels"
    );
    for threads in [2usize, 8] {
        let report = profiled_pipeline_report(threads);
        assert_eq!(
            base_json,
            report.to_json(),
            "ProfileReport JSON diverged at {threads} threads"
        );
        assert_eq!(
            base_folded_flops,
            report.folded(CostDimension::Flops),
            "folded FLOP stacks diverged at {threads} threads"
        );
        assert_eq!(
            base_folded_items,
            report.folded(CostDimension::Items),
            "folded item stacks diverged at {threads} threads"
        );
    }
}

#[test]
fn pipeline_stage_items_match_pipeline_report() {
    let profiler = Profiler::shared();
    let mut infra = Cyberinfrastructure::builder().seed(7).build();
    let (topic, store, annotations) = infra.pipeline_stores();
    let report = CityDataPipeline::new(7, 400, 80)
        .runner(topic, store, annotations)
        .telemetry(profiler.handle())
        .run()
        .expect("generated pipeline data is always valid");
    let profile = profiler.report();
    let items = |name: &str| {
        profile
            .kernel(name)
            .unwrap_or_else(|| panic!("kernel {name} missing"))
            .work
            .items
    };
    assert_eq!(items("pipeline/ingest"), report.ingested as u64);
    assert_eq!(items("pipeline/store"), report.stored as u64);
    assert_eq!(items("pipeline/annotate"), report.annotated as u64);
}

#[test]
fn kernel_self_costs_sum_exactly_to_total() {
    let profile = profiled_pipeline_report(2);
    let summed = profile
        .kernels
        .iter()
        .fold(WorkDelta::default(), |acc, k| acc + k.work);
    assert_eq!(
        summed, profile.total,
        "per-kernel work must sum exactly to the report total"
    );
    let total_calls: u64 = profile.kernels.iter().map(|k| k.calls).sum();
    assert_eq!(total_calls, profile.total_calls);
}

#[test]
fn kmeans_work_is_thread_invariant() {
    let points: Vec<Vec<f64>> = (0..300)
        .map(|i| vec![(i % 17) as f64, (i % 23) as f64])
        .collect();
    let reports: Vec<String> = THREAD_COUNTS
        .iter()
        .map(|&t| {
            let profiler = Profiler::shared();
            let ctx = ExecCtx::serial()
                .with_par(ScparConfig::with_threads(t))
                .with_telemetry(profiler.handle());
            kmeans_ctx(&points, 3, 20, 9, &ctx);
            profiler.report().to_json()
        })
        .collect();
    assert_eq!(reports[0], reports[1]);
    assert_eq!(reports[0], reports[2]);
}

#[test]
fn matmul_profile_is_isa_invariant() {
    use smartcity::neural::tensor::Tensor;
    let a = Tensor::from_vec(vec![40, 24], fill(3, 40 * 24)).unwrap();
    let b = Tensor::from_vec(vec![24, 32], fill(4, 24 * 32)).unwrap();
    let reports: Vec<(String, Vec<u32>)> =
        [smartcity::simd::Isa::Scalar, smartcity::simd::Isa::active()]
            .iter()
            .map(|&isa| {
                let profiler = Profiler::shared();
                let ctx = ExecCtx::serial()
                    .with_telemetry(profiler.handle())
                    .with_isa(isa);
                let out = a.matmul_ctx(&b, &ctx).unwrap();
                (
                    profiler.report().to_json(),
                    out.data().iter().map(|v| v.to_bits()).collect(),
                )
            })
            .collect();
    assert_eq!(
        reports[0].0, reports[1].0,
        "work accounting must not depend on the SIMD backend"
    );
    assert_eq!(
        reports[0].1, reports[1].1,
        "scalar and SIMD matmul must agree bit-for-bit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Recorded matmul FLOPs equal the closed form `2·m·n·k` at any
    /// thread count, and the per-panel deltas sum identically.
    #[test]
    fn matmul_flops_match_closed_form(
        m in 1usize..48,
        k in 1usize..32,
        n in 1usize..40,
        seed in any::<u64>(),
        thread_idx in 0usize..3,
    ) {
        let threads = THREAD_COUNTS[thread_idx];
        use smartcity::neural::tensor::{Tensor, KERNEL_MATMUL};
        let a = Tensor::from_vec(vec![m, k], fill(seed, m * k)).unwrap();
        let b = Tensor::from_vec(vec![k, n], fill(seed ^ 0x5eed, k * n)).unwrap();
        let profiler = Profiler::shared();
        let ctx = ExecCtx::serial()
            .with_par(ScparConfig::with_threads(threads))
            .with_telemetry(profiler.handle());
        a.matmul_ctx(&b, &ctx).unwrap();
        let report = profiler.report();
        let kernel = report.kernel(KERNEL_MATMUL).expect("matmul kernel recorded");
        prop_assert_eq!(
            kernel.work.flops,
            2 * (m as u64) * (n as u64) * (k as u64),
            "matmul FLOPs must equal 2*m*n*k"
        );
    }
}
