//! Integration: the full Fig. 1 + Fig. 4 stack — infrastructure facade,
//! streaming ingestion, NoSQL storage, distributed mining, DFS archival, and
//! visualization export, all in one flow.

use smartcity::core::infrastructure::Cyberinfrastructure;
use smartcity::core::pipeline::CityDataPipeline;
use smartcity::geo::GeoPoint;

#[test]
fn four_layer_flow_end_to_end() {
    let mut infra = Cyberinfrastructure::builder().seed(100).build();

    // Data layer sanity: the paper's camera fleet.
    assert!(infra.cameras().len() > 200);
    assert_eq!(infra.cameras().cities().len(), 9);

    // Hardware layer: archive video from the three cameras nearest downtown.
    let downtown = GeoPoint::new(30.4515, -91.1871);
    let cams: Vec<_> = infra
        .cameras()
        .nearest(downtown, 3)
        .iter()
        .map(|c| c.id)
        .collect();
    for (i, cam) in cams.iter().enumerate() {
        infra
            .archive_video_segment(*cam, i as u64, &vec![i as u8; 100_000])
            .expect("archive");
    }
    assert_eq!(infra.health_report().dfs_files, 3);

    // Software layer: pipeline run into the infrastructure's own stores.
    let pipeline = CityDataPipeline::new(100, 300, 60);
    let (topic, store, annotations) = infra.pipeline_stores();
    let report = pipeline
        .runner(topic, store, annotations)
        .run()
        .expect("generated pipeline data is always valid");
    assert_eq!(report.ingested, 360);
    assert_eq!(report.stored, 360);
    assert_eq!(report.hotspots.len(), 3);
    assert!(report.geojson["features"].as_array().unwrap().len() == 360);

    // Health report reflects everything.
    let h = infra.health_report();
    assert_eq!(h.raw_events, 360);
    assert_eq!(h.incident_docs, 360);

    // Annotations landed in the wide-column store and survive a flush.
    infra.annotations_mut().flush();
    assert!(infra
        .annotations()
        .get("counts#CrimeIncident", "stats", "count")
        .is_some());

    // Hardware layer resilience: two failures, archives still readable.
    infra.dfs_mut().kill_node(0).unwrap();
    infra.dfs_mut().kill_node(1).unwrap();
    for (i, cam) in cams.iter().enumerate() {
        let path = format!("/videos/{cam}/seg-{i:06}.bin");
        assert_eq!(infra.dfs().read(&path).unwrap().len(), 100_000);
    }

    // Re-replication heals the under-replicated blocks.
    let created = infra.dfs_mut().re_replicate();
    assert!(created > 0);
    assert_eq!(infra.dfs().stats().under_replicated, 0);
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let run = |seed: u64| {
        let mut infra = Cyberinfrastructure::builder().seed(seed).build();
        let pipeline = CityDataPipeline::new(seed, 150, 30);
        let (topic, store, annotations) = infra.pipeline_stores();
        pipeline
            .runner(topic, store, annotations)
            .run()
            .expect("generated pipeline data is always valid")
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.hotspots, b.hotspots);
    assert_eq!(a.dashboard, b.dashboard);
    let c = run(8);
    assert_ne!(a.hotspots, c.hotspots, "different seeds differ");
}
