//! Determinism of the Metropolis closed loop (E19).
//!
//! The macro-benchmark's entire value rests on one promise: identical
//! seeds produce byte-identical scaling traces — same decisions at the
//! same windows, same report, same metrics export — at any
//! `SCPAR_THREADS` setting and on any SIMD ISA. The loop applies its
//! own pool size through `ExecCtx`, so thread count is a pure
//! performance knob; this suite replays the day and byte-compares every
//! derived artifact, then pins the seed-42 trace and Prometheus export
//! as checked-in golden snapshots. The CI matrix runs this same suite
//! at `SCPAR_THREADS` ∈ {1, 8} × `SCSIMD_FORCE` ∈ {scalar, native};
//! each cell compares against the same committed bytes, which is the
//! cross-thread, cross-ISA proof.
//!
//! Regenerate after an intentional behaviour change with:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test --test metropolis_determinism
//! ```

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use smartcity::metro::{MetroConfig, MetroReport, MetroSim, PopulationConfig};
use smartcity::telemetry::{export::prometheus_text, Telemetry};

/// The E19 quick-mode configuration: full-city plan, sampled execution.
fn city(seed: u64) -> MetroConfig {
    MetroConfig {
        seed,
        population: PopulationConfig {
            users: 1_000_000,
            windows: 24,
            seed,
            ..PopulationConfig::default()
        },
        sample_total: 4_000,
        ..MetroConfig::default()
    }
}

/// A small fast city for the seed-sweep property.
fn town(seed: u64) -> MetroConfig {
    MetroConfig {
        seed,
        population: PopulationConfig {
            users: 50_000,
            windows: 24,
            seed,
            ..PopulationConfig::default()
        },
        sample_total: 1_000,
        ..MetroConfig::default()
    }
}

/// Renders the report as the canonical trace text: headline, one line
/// per window, then the decision log. Any behaviour drift lands here.
fn render(r: &MetroReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "users={} daily={} demand={} sampled={} answered={} unanswered={}\n\
         peak_rps={:.6} mean_rps={:.6} p50_ms={:.3} p99_ms={:.3} shed={:.6}\n\
         loop: +{} -{} shards, {} pool resizes, {} shed toggles, final {}x{}, recovery {:.3}s\n\
         ingest: {}/{}/{} (delivered/dup/lost)  dfs: {} blocks, {} lost\n",
        r.users,
        r.daily_queries,
        r.total_demand,
        r.sampled_requests,
        r.answered,
        r.unanswered,
        r.peak_rps,
        r.mean_rps,
        r.p50_ms,
        r.p99_ms,
        r.shed_fraction,
        r.shards_added,
        r.shards_removed,
        r.pool_resizes,
        r.shed_actions,
        r.final_shards,
        r.final_pool,
        r.recovery_s,
        r.delivered,
        r.duplicates,
        r.lost,
        r.dfs.blocks,
        r.dfs.lost,
    ));
    for w in &r.windows {
        out.push_str(&format!(
            "w{:02} demand={} sampled={} good={} bad={} util={:.6} shards={} pool={}\n",
            w.window, w.demand, w.sampled, w.good, w.bad, w.utilization, w.shards, w.pool
        ));
    }
    out.push_str("decisions:\n");
    out.push_str(&r.decision_log());
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `got` against the checked-in snapshot, with a
/// line-resolution report on mismatch. `GOLDEN_UPDATE=1` rewrites the
/// snapshot instead.
fn assert_matches_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, got).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {path:?} ({e}); run GOLDEN_UPDATE=1 cargo test")
    });
    if got == want {
        return;
    }
    let line = got
        .lines()
        .zip(want.lines())
        .position(|(g, w)| g != w)
        .map(|i| i + 1)
        .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
    let g = got.lines().nth(line - 1).unwrap_or("<eof>");
    let w = want.lines().nth(line - 1).unwrap_or("<eof>");
    panic!(
        "{name} diverged from its golden snapshot at line {line}:\n  got:  {g}\n  want: {w}\n\
         ({} vs {} bytes total; GOLDEN_UPDATE=1 regenerates if intentional)",
        got.len(),
        want.len()
    );
}

#[test]
fn replaying_the_same_seed_is_byte_identical() {
    let first = MetroSim::new(city(42)).run();
    let second = MetroSim::new(city(42)).run();
    assert_eq!(
        first.decision_log(),
        second.decision_log(),
        "scaling-decision logs diverged between identical replays"
    );
    assert_eq!(render(&first), render(&second), "trace text diverged");
    assert_eq!(first, second, "full reports diverged");
}

#[test]
fn seed42_scaling_trace_matches_golden_snapshot() {
    let report = MetroSim::new(city(42)).run();
    assert_matches_golden("metropolis_trace_seed42.log", &render(&report));
}

#[test]
fn seed42_prometheus_export_matches_golden_snapshot() {
    let telemetry = Telemetry::shared();
    MetroSim::new(city(42))
        .with_telemetry(telemetry.handle())
        .run();
    let text = prometheus_text(telemetry.registry());
    assert!(!text.is_empty(), "the day must emit metrics");
    assert_matches_golden("metropolis_metrics_seed42.prom", &text);
}

#[test]
fn telemetry_recording_does_not_perturb_the_loop() {
    let silent = MetroSim::new(city(42)).run();
    let telemetry = Telemetry::shared();
    let observed = MetroSim::new(city(42))
        .with_telemetry(telemetry.handle())
        .run();
    assert_eq!(
        silent, observed,
        "attaching telemetry changed the closed-loop outcome"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any seed: replay is byte-identical and the sample is fully
    /// accounted for (answered + unanswered == executed).
    #[test]
    fn every_seed_replays_identically(seed in 0u64..10_000) {
        let a = MetroSim::new(town(seed)).run();
        let b = MetroSim::new(town(seed)).run();
        prop_assert_eq!(render(&a), render(&b));
        prop_assert_eq!(a.answered + a.unanswered, a.sampled_requests);
        prop_assert_eq!(
            a.sampled_requests,
            a.windows.iter().map(|w| w.sampled).sum::<u64>()
        );
    }
}
