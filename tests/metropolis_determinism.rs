//! Determinism of the Metropolis closed loop (E19).
//!
//! The macro-benchmark's entire value rests on one promise: identical
//! seeds produce byte-identical scaling traces — same decisions at the
//! same windows, same report, same metrics export — at any
//! `SCPAR_THREADS` setting and on any SIMD ISA. The loop applies its
//! own pool size through `ExecCtx`, so thread count is a pure
//! performance knob; this suite replays the day and byte-compares every
//! derived artifact, then pins the seed-42 trace and Prometheus export
//! as checked-in golden snapshots. The CI matrix runs this same suite
//! at `SCPAR_THREADS` ∈ {1, 8} × `SCSIMD_FORCE` ∈ {scalar, native};
//! each cell compares against the same committed bytes, which is the
//! cross-thread, cross-ISA proof.
//!
//! Regenerate after an intentional behaviour change with:
//!
//! ```sh
//! GOLDEN_UPDATE=1 cargo test --test metropolis_determinism
//! ```

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use smartcity::metro::{MetroConfig, MetroReport, MetroSim, PopulationConfig};
use smartcity::observe::burn_over_series;
use smartcity::telemetry::{export::prometheus_text, Telemetry};
use smartcity::tsdb::SeriesId;

/// The E19 quick-mode configuration: full-city plan, sampled execution.
fn city(seed: u64) -> MetroConfig {
    MetroConfig {
        seed,
        population: PopulationConfig {
            users: 1_000_000,
            windows: 24,
            seed,
            ..PopulationConfig::default()
        },
        sample_total: 4_000,
        ..MetroConfig::default()
    }
}

/// A small fast city for the seed-sweep property.
fn town(seed: u64) -> MetroConfig {
    MetroConfig {
        seed,
        population: PopulationConfig {
            users: 50_000,
            windows: 24,
            seed,
            ..PopulationConfig::default()
        },
        sample_total: 1_000,
        ..MetroConfig::default()
    }
}

/// Renders the report as the canonical trace text: headline, one line
/// per window, then the decision log. Any behaviour drift lands here.
fn render(r: &MetroReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "users={} daily={} demand={} sampled={} answered={} unanswered={}\n\
         peak_rps={:.6} mean_rps={:.6} p50_ms={:.3} p99_ms={:.3} shed={:.6}\n\
         loop: +{} -{} shards, {} pool resizes, {} shed toggles, final {}x{}, recovery {:.3}s\n\
         ingest: {}/{}/{} (delivered/dup/lost)  dfs: {} blocks, {} lost\n",
        r.users,
        r.daily_queries,
        r.total_demand,
        r.sampled_requests,
        r.answered,
        r.unanswered,
        r.peak_rps,
        r.mean_rps,
        r.p50_ms,
        r.p99_ms,
        r.shed_fraction,
        r.shards_added,
        r.shards_removed,
        r.pool_resizes,
        r.shed_actions,
        r.final_shards,
        r.final_pool,
        r.recovery_s,
        r.delivered,
        r.duplicates,
        r.lost,
        r.dfs.blocks,
        r.dfs.lost,
    ));
    for w in &r.windows {
        out.push_str(&format!(
            "w{:02} demand={} sampled={} good={} bad={} util={:.6} shards={} pool={}\n",
            w.window, w.demand, w.sampled, w.good, w.bad, w.utilization, w.shards, w.pool
        ));
    }
    out.push_str("decisions:\n");
    out.push_str(&r.decision_log());
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Byte-compares `got` against the checked-in snapshot, with a
/// line-resolution report on mismatch. `GOLDEN_UPDATE=1` rewrites the
/// snapshot instead.
fn assert_matches_golden(name: &str, got: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, got).unwrap();
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {path:?} ({e}); run GOLDEN_UPDATE=1 cargo test")
    });
    if got == want {
        return;
    }
    let line = got
        .lines()
        .zip(want.lines())
        .position(|(g, w)| g != w)
        .map(|i| i + 1)
        .unwrap_or_else(|| got.lines().count().min(want.lines().count()) + 1);
    let g = got.lines().nth(line - 1).unwrap_or("<eof>");
    let w = want.lines().nth(line - 1).unwrap_or("<eof>");
    panic!(
        "{name} diverged from its golden snapshot at line {line}:\n  got:  {g}\n  want: {w}\n\
         ({} vs {} bytes total; GOLDEN_UPDATE=1 regenerates if intentional)",
        got.len(),
        want.len()
    );
}

#[test]
fn replaying_the_same_seed_is_byte_identical() {
    let first = MetroSim::new(city(42)).run();
    let second = MetroSim::new(city(42)).run();
    assert_eq!(
        first.decision_log(),
        second.decision_log(),
        "scaling-decision logs diverged between identical replays"
    );
    assert_eq!(render(&first), render(&second), "trace text diverged");
    assert_eq!(first, second, "full reports diverged");
}

#[test]
fn seed42_scaling_trace_matches_golden_snapshot() {
    let report = MetroSim::new(city(42)).run();
    assert_matches_golden("metropolis_trace_seed42.log", &render(&report));
}

#[test]
fn seed42_prometheus_export_matches_golden_snapshot() {
    let telemetry = Telemetry::shared();
    MetroSim::new(city(42))
        .with_telemetry(telemetry.handle())
        .run();
    let text = prometheus_text(telemetry.registry());
    assert!(!text.is_empty(), "the day must emit metrics");
    assert_matches_golden("metropolis_metrics_seed42.prom", &text);
}

#[test]
fn seed42_flight_artifact_matches_golden_snapshot() {
    let telemetry = Telemetry::shared();
    let (report, flight) = MetroSim::new(city(42))
        .with_recorder(&telemetry)
        .run_with_flight();
    let silent = MetroSim::new(city(42)).run();
    assert_eq!(report, silent, "attaching the recorder changed the outcome");
    assert_matches_golden("flight_seed42.tsdb.json", &flight.render());
}

/// Replays `cfg`, checks the batch SLO burn engine over the stored
/// series against the gauges the incremental `BurnMeter` recorded in
/// the loop — bit for bit, edge for edge — and returns how many windows
/// saw non-zero bad traffic and how often the alert fired.
fn assert_burn_equivalence(cfg: MetroConfig) -> (usize, usize) {
    let sim = MetroSim::new(cfg.clone());
    let boundaries: Vec<_> = (0..sim.population().windows())
        .map(|w| sim.population().window_end(w))
        .collect();
    let (report, flight) = sim.run_with_flight();
    let db = &flight.tsdb;

    let signals = burn_over_series(
        db,
        &cfg.autoscale.slo,
        &SeriesId::new("metro_good_total"),
        &SeriesId::new("metro_bad_total"),
        &boundaries,
    );
    let short = db.samples(&SeriesId::new("metro:burn_short"));
    let long = db.samples(&SeriesId::new("metro:burn_long"));
    let fired = db.samples(&SeriesId::new("metro:burn_fired"));
    assert_eq!(signals.len(), boundaries.len());
    assert_eq!(short.len(), boundaries.len());
    for (i, (at, sig)) in signals.iter().enumerate() {
        assert_eq!(at.as_micros(), short[i].0, "window {i} close time");
        assert_eq!(
            sig.burn_short.to_bits(),
            short[i].1.to_bits(),
            "window {i} short burn"
        );
        assert_eq!(
            sig.burn_long.to_bits(),
            long[i].1.to_bits(),
            "window {i} long burn"
        );
        assert_eq!(
            if sig.fired { 1.0f64 } else { 0.0 }.to_bits(),
            fired[i].1.to_bits(),
            "window {i} fired edge"
        );
    }
    let bad_windows = report.windows.iter().filter(|w| w.bad > 0).count();
    let fires = fired.iter().filter(|&&(_, v)| v == 1.0).count();
    (bad_windows, fires)
}

/// The SLO burn engine evaluated in batch over the stored series must
/// reproduce the incremental `BurnMeter`'s verdicts edge for edge — the
/// flight artifact is an audit trail for the autoscaler, not an
/// approximation of it. The seed-42 city absorbs its faults without
/// shedding (all-zero burn), so a capacity-capped variant exercises the
/// non-trivial side: real sheds, real burn, a fired edge.
#[test]
fn series_burn_verdicts_match_the_recorded_meter_bitwise() {
    let (_, city_fires) = assert_burn_equivalence(city(42));
    assert_eq!(city_fires, 0, "seed-42 city absorbs its faults cleanly");

    let mut cramped = town(42);
    cramped.population.users = 200_000;
    cramped.sample_total = 2_000;
    cramped.autoscale.max_shards = cramped.autoscale.min_shards;
    cramped.autoscale.max_pool = cramped.autoscale.min_pool;
    cramped.fault_plan = Some(
        smartcity::fault::FaultPlan::empty()
            .with_event(
                simclock::SimTime::from_secs(6 * 3600),
                smartcity::fault::FaultKind::NodeCrash { node: 0 },
            )
            .with_event(
                simclock::SimTime::from_secs(9 * 3600),
                smartcity::fault::FaultKind::NodeRestart { node: 0 },
            ),
    );
    let (bad_windows, fires) = assert_burn_equivalence(cramped);
    assert!(
        bad_windows > 0,
        "the capacity-capped town must shed under peak load"
    );
    assert!(fires > 0, "shedding must trip the burn alert");
}

#[test]
fn telemetry_recording_does_not_perturb_the_loop() {
    let silent = MetroSim::new(city(42)).run();
    let telemetry = Telemetry::shared();
    let observed = MetroSim::new(city(42))
        .with_telemetry(telemetry.handle())
        .run();
    assert_eq!(
        silent, observed,
        "attaching telemetry changed the closed-loop outcome"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any seed: replay is byte-identical and the sample is fully
    /// accounted for (answered + unanswered == executed).
    #[test]
    fn every_seed_replays_identically(seed in 0u64..10_000) {
        let a = MetroSim::new(town(seed)).run();
        let b = MetroSim::new(town(seed)).run();
        prop_assert_eq!(render(&a), render(&b));
        prop_assert_eq!(a.answered + a.unanswered, a.sampled_requests);
        prop_assert_eq!(
            a.sampled_requests,
            a.windows.iter().map(|w| w.sampled).sum::<u64>()
        );
    }
}
