//! Serving-layer equivalence proofs (scserve).
//!
//! The serving tier adds sharding, caching, micro-batching, and admission
//! control between consumers and the storage/inference backends — and
//! promises that none of it changes any answer. These tests pin that
//! promise down in its strongest form:
//!
//! 1. `Server::query(f)` returns exactly `Collection::find(f)` — cold
//!    cache, warm cache, after invalidating writes, and after TTL expiry.
//! 2. Micro-batched inference is **bit-identical** to single-row
//!    `Sequential::predict_ctx` at batch sizes 1 / 7 / 32 and worker
//!    counts 1 / 2 / 8.
//! 3. A randomized put/get/query/remove interleaving against a
//!    flat reference model never observes a divergent answer.

use proptest::prelude::*;
use smartcity::neural::exec::ExecCtx;
use smartcity::neural::layers::{Dense, Relu};
use smartcity::neural::net::Sequential;
use smartcity::neural::tensor::Tensor;
use smartcity::nosql::document::{Collection, Doc, Filter};
use smartcity::par::ScparConfig;
use smartcity::serve::{BatchConfig, CacheConfig, InferSubmit, Outcome, ServeConfig, Server};
use smartcity::simclock::{SimDuration, SimTime};

fn doc(kind: &str, v: i64) -> Doc {
    Doc::object([
        ("kind", Doc::Str(kind.into())),
        ("v", Doc::I64(v)),
        ("reading", Doc::F64(v as f64 * 1.5)),
    ])
}

/// Sorted debug renderings — an order- and id-insensitive multiset view.
fn multiset(docs: Vec<Doc>) -> Vec<String> {
    let mut out: Vec<String> = docs.into_iter().map(|d| format!("{d:?}")).collect();
    out.sort();
    out
}

fn reference_find(reference: &Collection, filter: &Filter) -> Vec<String> {
    multiset(
        reference
            .find(filter)
            .expect("reference filters are valid")
            .into_iter()
            .map(|(_, d)| d.clone())
            .collect(),
    )
}

fn served_rows(server: &mut Server, filter: &Filter, now: SimTime) -> (Vec<String>, Outcome<()>) {
    let served = server.query(filter, now).expect("filters are valid");
    let tag = match &served.outcome {
        Outcome::Fresh(_) => Outcome::Fresh(()),
        Outcome::Cached(_) => Outcome::Cached(()),
        Outcome::Stale(_) => Outcome::Stale(()),
        Outcome::Degraded(_) => Outcome::Degraded(()),
        Outcome::Shed => Outcome::Shed,
    };
    let rows = served.outcome.value().cloned().unwrap_or_default();
    (multiset(rows.into_iter().map(|(_, d)| d).collect()), tag)
}

/// serve(q) == collection.find(q) across every cache state: cold, warm
/// (cached), invalidated-by-write, and TTL-expired.
#[test]
fn query_equals_direct_find_in_all_cache_states() {
    let ttl = SimDuration::from_secs(10);
    let mut server = Server::new(ServeConfig {
        query_cache: CacheConfig {
            ttl,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    });
    let mut reference = Collection::new("reference");

    for i in 0..40 {
        let kind = ["traffic", "air", "camera"][i % 3];
        let d = doc(kind, i as i64);
        server
            .put(&format!("k-{i:03}"), d.clone(), SimTime::ZERO)
            .unwrap();
        reference.insert(d).unwrap();
    }
    let filters = [
        Filter::Eq("kind".into(), Doc::Str("air".into())),
        Filter::Range("v".into(), 5.0, 25.0),
        Filter::Exists("reading".into()),
        Filter::Eq("kind".into(), Doc::Str("nope".into())),
    ];

    for (i, filter) in filters.iter().enumerate() {
        let t = SimTime::from_millis(1 + i as u64);
        // Cold.
        let (rows, tag) = served_rows(&mut server, filter, t);
        assert_eq!(tag, Outcome::Fresh(()));
        assert_eq!(rows, reference_find(&reference, filter));
        // Warm: the cached answer must be the same bytes.
        let (rows, tag) = served_rows(&mut server, filter, t);
        assert_eq!(tag, Outcome::Cached(()));
        assert_eq!(rows, reference_find(&reference, filter));
    }

    // A write invalidates every cached answer; re-queries must equal the
    // updated reference, not the stale cache.
    let d = doc("air", 999);
    server
        .put("k-999", d.clone(), SimTime::from_millis(50))
        .unwrap();
    reference.insert(d).unwrap();
    for (i, filter) in filters.iter().enumerate() {
        let t = SimTime::from_millis(60 + i as u64);
        let (rows, tag) = served_rows(&mut server, filter, t);
        assert_eq!(tag, Outcome::Fresh(()), "writes must invalidate");
        assert_eq!(rows, reference_find(&reference, filter));
    }

    // TTL expiry: long after the cache went cold the answers still match.
    let late = SimTime::from_millis(100) + ttl + ttl;
    for filter in &filters {
        let (rows, tag) = served_rows(&mut server, filter, late);
        assert_eq!(tag, Outcome::Fresh(()), "expired entries must refetch");
        assert_eq!(rows, reference_find(&reference, filter));
    }
}

/// Micro-batched inference is bit-identical to per-row prediction for
/// batch sizes 1 / 7 / 32 under 1 / 2 / 8 worker threads.
#[test]
fn batched_inference_is_bit_identical_to_single_row() {
    const DIM: usize = 6;
    let model = || {
        Sequential::new()
            .with(Dense::new(DIM, 16, 21))
            .with(Relu::new())
            .with(Dense::new(16, 3, 22))
    };
    // 32 distinct deterministic rows.
    let rows: Vec<Vec<f32>> = (0..32)
        .map(|i| {
            (0..DIM)
                .map(|j| ((i * DIM + j) as f32 * 0.37).sin())
                .collect()
        })
        .collect();
    // Ground truth: one row at a time, serial.
    let serial = ExecCtx::serial();
    let reference = model();
    let expected: Vec<Vec<f32>> = rows
        .iter()
        .map(|r| {
            reference
                .predict_ctx(&Tensor::from_vec(vec![1, DIM], r.clone()).unwrap(), &serial)
                .data()
                .to_vec()
        })
        .collect();

    for max_batch in [1usize, 7, 32] {
        for threads in [1usize, 2, 8] {
            let par = if threads == 1 {
                ScparConfig::serial()
            } else {
                ScparConfig::with_threads(threads)
            };
            let mut server = Server::new(ServeConfig {
                batch: BatchConfig {
                    max_batch,
                    max_delay: SimDuration::from_millis(4),
                },
                ..ServeConfig::default()
            })
            .with_model(model())
            .with_ctx(ExecCtx::serial().with_par(par));

            let mut outputs: Vec<Option<Vec<f32>>> = vec![None; rows.len()];
            let mut tickets = Vec::new();
            for (i, row) in rows.iter().enumerate() {
                let t = SimTime::from_millis(i as u64);
                match server.infer(row.clone(), t) {
                    InferSubmit::Pending(req) => tickets.push((req, i)),
                    InferSubmit::Cached { output, .. } => outputs[i] = Some(output),
                    other => panic!("unexpected admission outcome: {other:?}"),
                }
                for done in server.tick(t) {
                    let &(_, idx) = tickets
                        .iter()
                        .find(|(r, _)| *r == done.req)
                        .expect("completion matches a ticket");
                    outputs[idx] = Some(done.output);
                }
            }
            for done in server.drain(SimTime::from_secs(1)) {
                let &(_, idx) = tickets
                    .iter()
                    .find(|(r, _)| *r == done.req)
                    .expect("completion matches a ticket");
                outputs[idx] = Some(done.output);
            }

            for (i, out) in outputs.iter().enumerate() {
                let out = out
                    .as_ref()
                    .unwrap_or_else(|| panic!("row {i} never completed"));
                let bits_equal = out.len() == expected[i].len()
                    && out
                        .iter()
                        .zip(&expected[i])
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(
                    bits_equal,
                    "row {i} diverged at max_batch={max_batch} threads={threads}"
                );
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Put(usize, i64),
    Remove(usize),
    Get(usize),
    Query(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..24, -100i64..100).prop_map(|(k, v)| Op::Put(k, v)),
        (0usize..24).prop_map(Op::Remove),
        (0usize..24).prop_map(Op::Get),
        (0usize..3).prop_map(Op::Query),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary put/remove/get/query interleavings: the served answer
    /// always equals a flat (unsharded, uncached) reference model.
    #[test]
    fn random_interleavings_never_diverge(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut server = Server::new(ServeConfig::default());
        let mut model: std::collections::BTreeMap<String, Doc> = Default::default();
        let kinds = ["traffic", "air", "camera"];

        for (step, op) in ops.into_iter().enumerate() {
            let now = SimTime::from_millis(step as u64);
            match op {
                Op::Put(k, v) => {
                    let key = format!("k-{k:02}");
                    let d = doc(kinds[k % 3], v);
                    server.put(&key, d.clone(), now).unwrap();
                    model.insert(key, d);
                }
                Op::Remove(k) => {
                    let key = format!("k-{k:02}");
                    let removed = server.remove_key(&key, now);
                    prop_assert_eq!(removed, model.remove(&key).is_some());
                }
                Op::Get(k) => {
                    let key = format!("k-{k:02}");
                    let served = server.get(&key, now).unwrap();
                    let got = served.outcome.value().cloned().flatten();
                    prop_assert_eq!(got.as_ref(), model.get(&key), "get({}) diverged", key);
                }
                Op::Query(f) => {
                    let filter = Filter::Eq("kind".into(), Doc::Str(kinds[f].into()));
                    let served = server.query(&filter, now).unwrap();
                    let rows = served.outcome.value().cloned().unwrap_or_default();
                    let got = multiset(rows.into_iter().map(|(_, d)| d).collect());
                    let want = multiset(
                        model
                            .values()
                            .filter(|d| d.path("kind").and_then(|x| x.as_str()) == Some(kinds[f]))
                            .cloned()
                            .collect(),
                    );
                    prop_assert_eq!(got, want, "query({}) diverged", kinds[f]);
                }
            }
        }
    }
}
