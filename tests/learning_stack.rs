#![allow(clippy::needless_range_loop)]

//! Integration: the deep-learning methodologies of §III working on the
//! synthetic data layer — spatial (CNN), temporal (LSTM), and multi-modal
//! (fusion AE + CCA) analyses each reach above-chance quality.

use scdata::actions::ClipGenerator;
use scdata::vehicles::VehicleCatalog;
use scdata::video::FrameGenerator;
use simclock::SeededRng;
use smartcity::core::apps::actions::ActionRecognizer;
use smartcity::core::apps::vehicle::VehicleClassifier;
use smartcity::neural::autoencoder::FusionAutoencoder;
use smartcity::neural::cca::Cca;
use smartcity::neural::optim::Adam;
use smartcity::neural::tensor::Tensor;

#[test]
fn spatial_cnn_learns_vehicle_classes() {
    let classes = 5;
    let catalog = VehicleCatalog::generate(classes, 11);
    let mut gen = FrameGenerator::new(catalog, 16, 16, 12).noise(0.02);
    let (frames, labels) = gen.dataset(classes, 12);
    let mut clf = VehicleClassifier::new(classes, 16, 0.0, 13); // all-local
    clf.train(&frames, &labels, 50, 0.01);
    let (acc, _) = clf.evaluate(&frames, &labels);
    assert!(
        acc > 0.6,
        "accuracy {acc} (chance {})",
        1.0 / classes as f64
    );
}

#[test]
fn temporal_lstm_beats_chance_on_actions() {
    let mut gen = ClipGenerator::new(16, 16, 8, 14);
    let (clips, labels) = gen.dataset(5);
    let mut rec = ActionRecognizer::new(16, 8, 6, f32::INFINITY, 15);
    rec.train(&clips, &labels, 50);
    let (acc, _) = rec.evaluate(&clips, &labels);
    assert!(acc > 0.4, "accuracy {acc} (chance 0.167)");
}

/// Synthetic gunshot events observed through two modalities (§III-C): an
/// audio energy profile and a video flash profile, both driven by a shared
/// latent "event intensity".
fn gunshot_modalities(n: usize, seed: u64) -> (Tensor, Tensor, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let (da, dv) = (6, 10);
    let mut audio = Vec::new();
    let mut video = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let is_gunshot = i % 2 == 0;
        let intensity: f64 = if is_gunshot {
            rng.range_f64(0.7, 1.0)
        } else {
            rng.range_f64(0.0, 0.3)
        };
        for j in 0..da {
            let base = if j < 2 { intensity } else { 0.2 };
            audio.push((base + rng.gaussian(0.0, 0.05)).clamp(0.0, 1.0) as f32);
        }
        for j in 0..dv {
            let base = if j % 3 == 0 { intensity } else { 0.3 };
            video.push((base + rng.gaussian(0.0, 0.05)).clamp(0.0, 1.0) as f32);
        }
        labels.push(usize::from(is_gunshot));
    }
    (
        Tensor::from_vec(vec![n, da], audio).unwrap(),
        Tensor::from_vec(vec![n, dv], video).unwrap(),
        labels,
    )
}

#[test]
fn multimodal_cca_finds_shared_gunshot_signal() {
    let (audio, video, _) = gunshot_modalities(200, 16);
    let cca = Cca::fit(&audio, &video, 2, 1e-4).unwrap();
    assert!(
        cca.correlations()[0] > 0.8,
        "shared intensity must dominate: {:?}",
        cca.correlations()
    );
}

#[test]
fn fusion_autoencoder_latent_separates_events() {
    let (audio, video, labels) = gunshot_modalities(120, 17);
    let mut fae = FusionAutoencoder::new(6, 5, 10, 6, 3, 18);
    let mut opt = Adam::new(0.01);
    for _ in 0..200 {
        fae.train_step(&audio, &video, &mut opt);
    }
    // The fused latent's centroid distance between classes exceeds the
    // within-class spread — linearly separable enough for a detector.
    let z = fae.fuse(&audio, &video);
    let k = z.cols();
    let mut centroids = [vec![0.0f64; k], vec![0.0f64; k]];
    let mut counts = [0usize; 2];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for j in 0..k {
            centroids[l][j] += z.at(i, j) as f64;
        }
    }
    for (c, count) in centroids.iter_mut().zip(counts) {
        for v in c.iter_mut() {
            *v /= count as f64;
        }
    }
    let between: f64 = centroids[0]
        .iter()
        .zip(&centroids[1])
        .map(|(a, b)| (a - b) * (a - b))
        .sum::<f64>()
        .sqrt();
    assert!(between > 0.1, "class centroids too close: {between}");

    // Nearest-centroid classification in the fused space beats chance well.
    let mut correct = 0;
    for (i, &l) in labels.iter().enumerate() {
        let dist = |c: &[f64]| -> f64 { (0..k).map(|j| (z.at(i, j) as f64 - c[j]).powi(2)).sum() };
        let pred = usize::from(dist(&centroids[1]) < dist(&centroids[0]));
        if pred == l {
            correct += 1;
        }
    }
    let acc = correct as f64 / labels.len() as f64;
    assert!(acc > 0.85, "fused-latent accuracy {acc}");
}

#[test]
fn fused_latent_tolerates_missing_modality() {
    let (audio, video, _) = gunshot_modalities(80, 19);
    let mut fae = FusionAutoencoder::new(6, 5, 10, 6, 3, 20);
    let mut opt = Adam::new(0.01);
    for _ in 0..150 {
        fae.train_step(&audio, &video, &mut opt);
    }
    // Audio-only inference still produces a finite, informative latent.
    let z = fae.fuse_a_only(&audio);
    assert_eq!(z.shape(), &[80, 3]);
    assert!(z.data().iter().all(|v| v.is_finite()));
    assert!(z.norm_sq() > 0.0);
}
