//! Determinism of the observability layer (E18).
//!
//! Traces are derived, never sampled: identical seeds must produce
//! byte-identical span trees, critical paths, flamegraph text, and SLO
//! alert reports at any `SCPAR_THREADS` setting. This suite replays an
//! E17-style serving workload and a faulted fog run at 1, 2, and 8
//! worker threads and byte-compares every derived artifact, then checks
//! the structural invariants the ISSUE pins: complete span trees (no
//! orphans), critical-path segments summing exactly to the recorded
//! request latency, and a p99 exemplar naming a real trace.

use smartcity::fault::{FaultPlan, FaultSpec};
use smartcity::fog::{FogSimulator, Placement, Topology, Workload};
use smartcity::neural::exec::ExecCtx;
use smartcity::neural::layers::{Dense, Relu};
use smartcity::neural::net::Sequential;
use smartcity::observe::{
    chrome_trace, critical_path, evaluate, folded_stacks, SloRule, TraceAnalysis,
};
use smartcity::par::ScparConfig;
use smartcity::serve::{ServeConfig, Server, WorkloadConfig, WorkloadGen};
use smartcity::telemetry::Telemetry;

const SEED: u64 = 42;

/// Runs the serving workload and a faulted fog sweep into one recorder
/// with `threads` workers, returning the recorder.
fn record_stack(threads: usize) -> std::sync::Arc<Telemetry> {
    let telemetry = Telemetry::shared();

    let model = Sequential::new()
        .with(Dense::new(8, 16, SEED.wrapping_add(2)))
        .with(Relu::new())
        .with(Dense::new(16, 4, SEED.wrapping_add(3)));
    let mut server = Server::new(ServeConfig::default())
        .with_model(model)
        .with_ctx(ExecCtx::serial().with_par(ScparConfig::with_threads(threads)))
        .with_telemetry(telemetry.handle())
        .with_trace_seed(SEED);
    WorkloadGen::new(WorkloadConfig {
        seed: SEED,
        requests: 400,
        ..WorkloadConfig::default()
    })
    .run(&mut server);

    let sim = FogSimulator::new(Topology::four_tier(4, 2, 1));
    let w = Workload::with_escalation(120, 100_000, 10.0, 0.3, SEED);
    let faults = FaultPlan::generate(
        &FaultSpec::new(simclock::SimDuration::from_secs(12), 4),
        SEED,
    );
    sim.runner(&w)
        .placement(Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        })
        .faults(&faults)
        .telemetry(telemetry.handle())
        .trace_seed(SEED)
        .run();

    telemetry
}

/// Every derived artifact as one comparable bundle of strings.
fn derived_artifacts(t: &Telemetry) -> (String, String, String, String) {
    let analysis = TraceAnalysis::new(t);
    let chrome = serde_json::to_string(&chrome_trace(&analysis.forest)).unwrap();
    let folded = folded_stacks(&analysis.forest);
    let paths: String = analysis
        .forest
        .traces
        .iter()
        .filter_map(critical_path)
        .map(|p| format!("{}\n", p.render()))
        .collect();
    let rules = [
        SloRule::availability("serve_availability", 0.99),
        SloRule::latency("serve_latency", 0.99, 0.05),
        SloRule::loss("fog_jobs", 0.99),
    ];
    let streams = vec![
        analysis.availability("request/"),
        analysis.latency("request/", 0.05),
        analysis.availability("job/"),
    ];
    let report = evaluate(&rules, &streams);
    let alerts = serde_json::to_string(&report.to_json_full()).unwrap();
    (chrome, folded, paths, alerts)
}

#[test]
fn derived_artifacts_are_thread_count_independent() {
    let (chrome1, folded1, paths1, alerts1) = derived_artifacts(&record_stack(1));
    for threads in [2, 8] {
        let (chrome, folded, paths, alerts) = derived_artifacts(&record_stack(threads));
        assert_eq!(chrome1, chrome, "{threads}-thread Chrome trace diverged");
        assert_eq!(folded1, folded, "{threads}-thread flamegraph diverged");
        assert_eq!(paths1, paths, "{threads}-thread critical paths diverged");
        assert_eq!(alerts1, alerts, "{threads}-thread alert report diverged");
    }
}

#[test]
fn every_request_resolves_to_a_complete_span_tree() {
    let t = record_stack(1);
    let analysis = TraceAnalysis::new(&t);
    assert!(!analysis.forest.traces.is_empty());
    // Only infrastructure spans (fault outage windows) may sit outside a
    // trace; every request- or job-scoped span must carry causal context.
    for s in &analysis.forest.unattributed {
        assert_eq!(
            s.target, "scfault",
            "span {}/{} lacks causal context",
            s.target, s.name
        );
    }
    for tree in &analysis.forest.traces {
        assert!(
            tree.is_complete(),
            "trace {} has orphan spans or multiple roots",
            tree.trace.as_hex()
        );
        assert!(tree.orphans.is_empty());
    }
}

#[test]
fn critical_path_durations_sum_to_recorded_latency() {
    let t = record_stack(1);
    let analysis = TraceAnalysis::new(&t);
    let mut checked = 0;
    for tree in &analysis.forest.traces {
        let root = tree.root().expect("complete trees have a single root");
        let path = critical_path(tree).expect("complete trees have a path");
        assert_eq!(
            path.total().as_micros(),
            root.record
                .end
                .saturating_since(root.record.start)
                .as_micros(),
            "trace {} critical path does not partition the root interval",
            tree.trace.as_hex()
        );
        checked += 1;
    }
    assert!(checked >= 400, "expected a path per request and fog job");
}

#[test]
fn p99_exemplar_names_a_real_trace() {
    let t = record_stack(1);
    let analysis = TraceAnalysis::new(&t);
    let exemplars = analysis.exemplar_paths("request/");
    let p99 = exemplars
        .iter()
        .find(|(ex, _)| ex.label == "p99")
        .expect("p99 exemplar reported");
    assert!(
        analysis.forest.get(p99.0.trace).is_some(),
        "p99 exemplar trace id resolves to a recorded trace"
    );
    assert!(p99.1.is_some(), "p99 exemplar has a critical path");
}
