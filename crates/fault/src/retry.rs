//! Retry with capped exponential backoff, and sim-time timeouts.

use simclock::{SeededRng, SimDuration, SimTime};

/// Capped exponential backoff with deterministic jitter.
///
/// `delay(k)` for retry `k` (1-based) is
/// `min(base · multiplier^(k-1), cap)` scaled by a jitter factor drawn
/// uniformly from `[1 − jitter, 1 + jitter]` out of the caller's
/// [`SeededRng`] — so the whole backoff schedule is a pure function of the
/// seed, and identical seeds retry at identical sim-times.
///
/// # Examples
///
/// ```
/// use scfault::RetryPolicy;
/// use simclock::{SeededRng, SimDuration};
///
/// let policy = RetryPolicy::new(5, SimDuration::from_millis(10));
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// // Same seed ⇒ the same jittered backoff schedule, delay by delay.
/// for attempt in 1..policy.max_attempts {
///     assert_eq!(policy.delay(attempt, &mut a), policy.delay(attempt, &mut b));
/// }
/// // Delays grow exponentially but never exceed the cap (plus jitter).
/// let late = policy.delay(60, &mut a);
/// assert!(late.as_secs_f64() <= policy.cap.as_secs_f64() * (1.0 + policy.jitter));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `max_attempts − 1` retries).
    pub max_attempts: u32,
    /// Delay before the first retry, pre-jitter.
    pub base: SimDuration,
    /// Upper bound on the pre-jitter delay.
    pub cap: SimDuration,
    /// Exponential growth factor between retries.
    pub multiplier: f64,
    /// Jitter half-width as a fraction of the delay (`0.1` ⇒ ±10 %).
    pub jitter: f64,
}

impl RetryPolicy {
    /// A policy with `max_attempts` total attempts starting at `base`,
    /// doubling each retry, capped at 30 s, with ±10 % jitter.
    pub fn new(max_attempts: u32, base: SimDuration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base,
            cap: SimDuration::from_secs(30),
            multiplier: 2.0,
            jitter: 0.1,
        }
    }

    /// Replaces the delay cap.
    pub fn with_cap(mut self, cap: SimDuration) -> Self {
        self.cap = cap;
        self
    }

    /// Replaces the growth factor.
    pub fn with_multiplier(mut self, multiplier: f64) -> Self {
        self.multiplier = multiplier.max(1.0);
        self
    }

    /// Replaces the jitter fraction (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// The jittered delay before retry `attempt` (1-based; attempt 0 is the
    /// initial try and has no delay).
    pub fn delay(&self, attempt: u32, rng: &mut SeededRng) -> SimDuration {
        if attempt == 0 {
            return SimDuration::ZERO;
        }
        let raw = self.base.as_secs_f64() * self.multiplier.powi(attempt as i32 - 1);
        let capped = raw.min(self.cap.as_secs_f64());
        let factor = 1.0 - self.jitter + 2.0 * self.jitter * rng.next_f64();
        SimDuration::from_secs_f64(capped * factor)
    }

    /// The full retry schedule (delays before retries `1..max_attempts`)
    /// drawn from a fresh RNG seeded with `seed` — handy when backoff times
    /// must be known up front (e.g. scheduling probes in an event queue).
    pub fn schedule(&self, seed: u64) -> Vec<SimDuration> {
        let mut rng = SeededRng::new(seed ^ 0x5E7B_ACC0);
        (1..self.max_attempts)
            .map(|k| self.delay(k, &mut rng))
            .collect()
    }

    /// Drives `op` until it succeeds or attempts are exhausted, accumulating
    /// the sim-time spent backing off. `op` receives the 0-based attempt
    /// index.
    pub fn run<T, E>(
        &self,
        rng: &mut SeededRng,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> RetryOutcome<T, E> {
        let mut backoff = SimDuration::ZERO;
        let mut last = None;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                backoff += self.delay(attempt, rng);
            }
            match op(attempt) {
                Ok(v) => {
                    return RetryOutcome {
                        result: Ok(v),
                        attempts: attempt + 1,
                        backoff,
                    }
                }
                Err(e) => last = Some(e),
            }
        }
        RetryOutcome {
            result: Err(last.expect("max_attempts >= 1 so op ran at least once")),
            attempts: self.max_attempts,
            backoff,
        }
    }
}

/// What happened across a retried operation.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryOutcome<T, E> {
    /// The final success, or the last error once attempts ran out.
    pub result: Result<T, E>,
    /// Attempts actually made (≥ 1).
    pub attempts: u32,
    /// Total sim-time spent waiting between attempts.
    pub backoff: SimDuration,
}

/// A sim-time deadline policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timeout {
    /// Allowed duration before the operation is abandoned.
    pub limit: SimDuration,
}

impl Timeout {
    /// A timeout of `limit`.
    pub fn new(limit: SimDuration) -> Self {
        Timeout { limit }
    }

    /// The absolute deadline for an operation starting at `start`.
    pub fn deadline(&self, start: SimTime) -> SimTime {
        start + self.limit
    }

    /// Whether an operation started at `start` has expired by `now`.
    pub fn expired(&self, start: SimTime, now: SimTime) -> bool {
        now >= self.deadline(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_then_cap() {
        let p = RetryPolicy::new(10, SimDuration::from_millis(100))
            .with_jitter(0.0)
            .with_cap(SimDuration::from_secs(1));
        let mut rng = SeededRng::new(1);
        assert_eq!(p.delay(1, &mut rng), SimDuration::from_millis(100));
        assert_eq!(p.delay(2, &mut rng), SimDuration::from_millis(200));
        assert_eq!(p.delay(3, &mut rng), SimDuration::from_millis(400));
        assert_eq!(p.delay(9, &mut rng), SimDuration::from_secs(1), "capped");
    }

    #[test]
    fn jitter_stays_in_band_and_is_seeded() {
        let p = RetryPolicy::new(8, SimDuration::from_millis(100));
        let mut a = SeededRng::new(9);
        let mut b = SeededRng::new(9);
        for k in 1..8 {
            let da = p.delay(k, &mut a);
            assert_eq!(da, p.delay(k, &mut b), "same seed, same delay");
            let nominal = 0.1 * 2f64.powi(k as i32 - 1);
            let s = da.as_secs_f64();
            assert!(
                s >= nominal * 0.9 - 1e-9 && s <= nominal * 1.1 + 1e-9,
                "{s}"
            );
        }
    }

    #[test]
    fn schedule_has_max_attempts_minus_one_entries() {
        let p = RetryPolicy::new(5, SimDuration::from_millis(10));
        assert_eq!(p.schedule(3).len(), 4);
        assert_eq!(p.schedule(3), p.schedule(3));
        assert_ne!(p.schedule(3), p.schedule(4));
    }

    #[test]
    fn run_retries_until_success() {
        let p = RetryPolicy::new(5, SimDuration::from_millis(10)).with_jitter(0.0);
        let mut rng = SeededRng::new(0);
        let out = p.run::<_, ()>(
            &mut rng,
            |attempt| if attempt < 2 { Err(()) } else { Ok(attempt) },
        );
        assert_eq!(out.result, Ok(2));
        assert_eq!(out.attempts, 3);
        assert_eq!(out.backoff, SimDuration::from_millis(30), "10 + 20");
    }

    #[test]
    fn run_exhausts_attempts() {
        let p = RetryPolicy::new(3, SimDuration::from_millis(1));
        let mut rng = SeededRng::new(0);
        let out = p.run::<(), _>(&mut rng, |_| Err("down"));
        assert_eq!(out.result, Err("down"));
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn timeout_deadline() {
        let t = Timeout::new(SimDuration::from_secs(2));
        let start = SimTime::from_secs(10);
        assert_eq!(t.deadline(start), SimTime::from_secs(12));
        assert!(!t.expired(start, SimTime::from_secs(11)));
        assert!(t.expired(start, SimTime::from_secs(12)));
    }
}
