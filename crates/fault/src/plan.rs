//! Seed-driven, timed fault schedules.
//!
//! A [`FaultPlan`] is the single source of truth for *what goes wrong and
//! when* in a run: an immutable, time-sorted list of [`FaultEvent`]s
//! generated from a [`FaultSpec`] and a seed. Layers never roll dice while
//! they execute — they read the plan (or a precomputed view like
//! [`OutageWindows`]), which is why identical seeds give byte-identical
//! failure behaviour at any thread count.

use std::collections::{BTreeMap, BTreeSet};

use simclock::{SeededRng, SimDuration, SimTime};

/// Sentinel instant for "never recovers": an unmatched [`FaultKind::NodeCrash`]
/// keeps its target down until this far-future time.
pub const FOREVER: SimTime = SimTime::from_micros(u64::MAX);

/// One injectable fault. Targets are plain `u32` ids so the same plan can
/// drive fog nodes, DFS datanodes, or stream brokers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Crash-stop of `node`: it accepts no new work until a matching
    /// [`FaultKind::NodeRestart`] (or forever, if none follows).
    NodeCrash {
        /// Target node id.
        node: u32,
    },
    /// Restart of a previously crashed `node`.
    NodeRestart {
        /// Target node id.
        node: u32,
    },
    /// The uplink of `node` drops all traffic for `duration`.
    LinkPartition {
        /// Node whose uplink is severed.
        node: u32,
        /// How long the partition lasts.
        duration: SimDuration,
    },
    /// The uplink of `node` multiplies its latency by `factor` for
    /// `duration` (congestion, routing flaps).
    LinkLatencySpike {
        /// Node whose uplink degrades.
        node: u32,
        /// Latency multiplier (≥ 1.0).
        factor: f64,
        /// How long the spike lasts.
        duration: SimDuration,
    },
    /// The `seq`-th message send is lost in flight (no ack, nothing stored).
    MessageDrop {
        /// Zero-based send sequence number the fault applies to.
        seq: u64,
    },
    /// The `seq`-th message send is stored but its ack is lost, so an
    /// at-least-once producer will resend and create a duplicate.
    MessageDuplicate {
        /// Zero-based send sequence number the fault applies to.
        seq: u64,
    },
    /// One replica of `block` on `node` is silently corrupted on disk.
    BlockCorrupt {
        /// Node holding the replica.
        node: u32,
        /// Block id (layer-specific meaning).
        block: u64,
    },
}

impl FaultKind {
    /// Short stable name for telemetry event labels.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::NodeCrash { .. } => "node_crash",
            FaultKind::NodeRestart { .. } => "node_restart",
            FaultKind::LinkPartition { .. } => "link_partition",
            FaultKind::LinkLatencySpike { .. } => "link_latency_spike",
            FaultKind::MessageDrop { .. } => "message_drop",
            FaultKind::MessageDuplicate { .. } => "message_duplicate",
            FaultKind::BlockCorrupt { .. } => "block_corrupt",
        }
    }
}

/// One timed fault: *inject `kind` at sim-time `at`*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: SimTime,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Tunable generator parameters for [`FaultPlan::generate`]. Counts are
/// *expected* event counts over the horizon; [`FaultSpec::intensity`] scales
/// them all at once, which is how the E16 sweep turns one knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Time window faults are drawn from (`[0, horizon)`).
    pub horizon: SimDuration,
    /// Number of target nodes (ids `0..nodes`).
    pub nodes: u32,
    /// Expected crash/restart pairs.
    pub crashes: f64,
    /// Mean node outage before the restart (exponentially distributed).
    pub mean_outage: SimDuration,
    /// Expected link partitions.
    pub partitions: f64,
    /// Mean partition length (exponentially distributed).
    pub mean_partition: SimDuration,
    /// Expected latency spikes.
    pub latency_spikes: f64,
    /// Latency multiplier applied during a spike.
    pub spike_factor: f64,
    /// Mean spike length (exponentially distributed).
    pub mean_spike: SimDuration,
    /// Expected in-flight message faults (half drops, half lost acks).
    pub message_faults: f64,
    /// Sequence-number space message faults are drawn from.
    pub message_seq_space: u64,
    /// Expected silent block corruptions.
    pub corruptions: f64,
    /// Block-id space corruptions are drawn from.
    pub blocks: u64,
}

impl FaultSpec {
    /// A mild baseline over `horizon` and `nodes`: one crash, one partition,
    /// one spike, a couple of message faults, one corruption.
    pub fn new(horizon: SimDuration, nodes: u32) -> Self {
        FaultSpec {
            horizon,
            nodes,
            crashes: 1.0,
            mean_outage: SimDuration::from_secs_f64(horizon.as_secs_f64() * 0.1),
            partitions: 1.0,
            mean_partition: SimDuration::from_secs_f64(horizon.as_secs_f64() * 0.05),
            latency_spikes: 1.0,
            spike_factor: 5.0,
            mean_spike: SimDuration::from_secs_f64(horizon.as_secs_f64() * 0.05),
            message_faults: 2.0,
            message_seq_space: 1000,
            corruptions: 1.0,
            blocks: 64,
        }
    }

    /// Scales every expected event count by `x` (durations are unchanged).
    /// `intensity(0.0)` yields an empty plan; `intensity(2.0)` doubles the
    /// fault pressure.
    pub fn intensity(mut self, x: f64) -> Self {
        let x = x.max(0.0);
        self.crashes *= x;
        self.partitions *= x;
        self.latency_spikes *= x;
        self.message_faults *= x;
        self.corruptions *= x;
        self
    }
}

/// An immutable, time-sorted schedule of [`FaultEvent`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    seed: u64,
}

impl FaultPlan {
    /// A plan with no faults (the healthy baseline).
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Generates a plan from `spec` with the fault-domain RNG seeded by
    /// `seed`. The same `(spec, seed)` always yields the same schedule —
    /// checked by the determinism property tests.
    pub fn generate(spec: &FaultSpec, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed ^ 0xFA01_7101);
        let mut events = Vec::new();
        let horizon_us = spec.horizon.as_micros().max(1);
        let draw_at = |rng: &mut SeededRng| SimTime::from_micros(rng.range_u64(0, horizon_us));
        let exp_len = |rng: &mut SeededRng, mean: SimDuration| {
            let mean_s = mean.as_secs_f64().max(1e-6);
            SimDuration::from_secs_f64(rng.exponential(1.0 / mean_s).max(1e-3))
        };

        for _ in 0..spec.crashes.round() as usize {
            if spec.nodes == 0 {
                break;
            }
            let node = rng.range_u64(0, spec.nodes as u64) as u32;
            let at = draw_at(&mut rng);
            let outage = exp_len(&mut rng, spec.mean_outage);
            events.push(FaultEvent {
                at,
                kind: FaultKind::NodeCrash { node },
            });
            events.push(FaultEvent {
                at: at + outage,
                kind: FaultKind::NodeRestart { node },
            });
        }
        for _ in 0..spec.partitions.round() as usize {
            if spec.nodes == 0 {
                break;
            }
            let node = rng.range_u64(0, spec.nodes as u64) as u32;
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::LinkPartition {
                    node,
                    duration: exp_len(&mut rng, spec.mean_partition),
                },
            });
        }
        for _ in 0..spec.latency_spikes.round() as usize {
            if spec.nodes == 0 {
                break;
            }
            let node = rng.range_u64(0, spec.nodes as u64) as u32;
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::LinkLatencySpike {
                    node,
                    factor: spec.spike_factor.max(1.0),
                    duration: exp_len(&mut rng, spec.mean_spike),
                },
            });
        }
        for i in 0..spec.message_faults.round() as usize {
            if spec.message_seq_space == 0 {
                break;
            }
            let seq = rng.range_u64(0, spec.message_seq_space);
            let kind = if i % 2 == 0 {
                FaultKind::MessageDrop { seq }
            } else {
                FaultKind::MessageDuplicate { seq }
            };
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind,
            });
        }
        for _ in 0..spec.corruptions.round() as usize {
            if spec.nodes == 0 || spec.blocks == 0 {
                break;
            }
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                kind: FaultKind::BlockCorrupt {
                    node: rng.range_u64(0, spec.nodes as u64) as u32,
                    block: rng.range_u64(0, spec.blocks),
                },
            });
        }

        events.sort_by_key(|e| e.at); // stable: generation order breaks ties
        FaultPlan { events, seed }
    }

    /// Adds a hand-placed event, keeping the schedule time-sorted.
    pub fn with_event(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// The time-sorted schedule.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The seed the plan was generated from (0 for hand-built plans).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// FNV-1a digest of the full schedule — a cheap identity for
    /// "same seed ⇒ same plan" assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{:?}", self.events).bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

fn merge_windows(mut windows: Vec<(SimTime, SimTime)>) -> Vec<(SimTime, SimTime)> {
    windows.sort_by_key(|w| w.0);
    let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(windows.len());
    for (s, e) in windows {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Per-target down-time windows, precomputed from a plan so the hot path
/// answers "is this node up at `t`?" without scanning the schedule.
#[derive(Debug, Clone, Default)]
pub struct OutageWindows {
    windows: BTreeMap<u32, Vec<(SimTime, SimTime)>>,
}

impl OutageWindows {
    /// Windows from [`FaultKind::NodeCrash`]/[`FaultKind::NodeRestart`]
    /// pairs. A crash with no later restart stays down until [`FOREVER`].
    pub fn node_crashes(plan: &FaultPlan) -> Self {
        let mut raw: BTreeMap<u32, Vec<(SimTime, SimTime)>> = BTreeMap::new();
        let mut open: BTreeMap<u32, SimTime> = BTreeMap::new();
        for e in plan.events() {
            match e.kind {
                FaultKind::NodeCrash { node } => {
                    open.entry(node).or_insert(e.at);
                }
                FaultKind::NodeRestart { node } => {
                    if let Some(start) = open.remove(&node) {
                        raw.entry(node).or_default().push((start, e.at));
                    }
                }
                _ => {}
            }
        }
        for (node, start) in open {
            raw.entry(node).or_default().push((start, FOREVER));
        }
        OutageWindows {
            windows: raw
                .into_iter()
                .map(|(n, w)| (n, merge_windows(w)))
                .collect(),
        }
    }

    /// Windows from [`FaultKind::LinkPartition`] events (explicit durations,
    /// overlaps merged). Keyed by the node whose uplink is down.
    pub fn link_partitions(plan: &FaultPlan) -> Self {
        let mut raw: BTreeMap<u32, Vec<(SimTime, SimTime)>> = BTreeMap::new();
        for e in plan.events() {
            if let FaultKind::LinkPartition { node, duration } = e.kind {
                raw.entry(node).or_default().push((e.at, e.at + duration));
            }
        }
        OutageWindows {
            windows: raw
                .into_iter()
                .map(|(n, w)| (n, merge_windows(w)))
                .collect(),
        }
    }

    /// If `target` is down at `at`, the end of the enclosing window
    /// ([`FOREVER`] for unrecovered crashes); `None` when up.
    pub fn down_until(&self, target: u32, at: SimTime) -> Option<SimTime> {
        self.windows.get(&target).and_then(|ws| {
            ws.iter()
                .find(|(s, e)| *s <= at && at < *e)
                .map(|&(_, e)| e)
        })
    }

    /// Whether `target` is down at `at`.
    pub fn is_down(&self, target: u32, at: SimTime) -> bool {
        self.down_until(target, at).is_some()
    }

    /// All windows for `target`, time-sorted and non-overlapping.
    pub fn windows_for(&self, target: u32) -> &[(SimTime, SimTime)] {
        self.windows.get(&target).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Targets with at least one window, ascending.
    pub fn targets(&self) -> impl Iterator<Item = u32> + '_ {
        self.windows.keys().copied()
    }

    /// Whether no target ever goes down.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Per-target latency-spike windows with their multipliers.
#[derive(Debug, Clone, Default)]
pub struct LatencySpikes {
    windows: BTreeMap<u32, Vec<(SimTime, SimTime, f64)>>,
}

impl LatencySpikes {
    /// Collects [`FaultKind::LinkLatencySpike`] events from a plan.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let mut windows: BTreeMap<u32, Vec<(SimTime, SimTime, f64)>> = BTreeMap::new();
        for e in plan.events() {
            if let FaultKind::LinkLatencySpike {
                node,
                factor,
                duration,
            } = e.kind
            {
                windows
                    .entry(node)
                    .or_default()
                    .push((e.at, e.at + duration, factor.max(1.0)));
            }
        }
        LatencySpikes { windows }
    }

    /// Latency multiplier for `target`'s uplink at `at` (the max of
    /// overlapping spikes; `1.0` when healthy).
    pub fn factor_at(&self, target: u32, at: SimTime) -> f64 {
        self.windows
            .get(&target)
            .map(|ws| {
                ws.iter()
                    .filter(|(s, e, _)| *s <= at && at < *e)
                    .map(|&(_, _, f)| f)
                    .fold(1.0, f64::max)
            })
            .unwrap_or(1.0)
    }

    /// Whether the plan spikes no link.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Sequence-indexed message faults, precomputed for O(log n) lookup per send.
#[derive(Debug, Clone, Default)]
pub struct MessageFaults {
    drops: BTreeSet<u64>,
    dups: BTreeSet<u64>,
}

impl MessageFaults {
    /// Collects [`FaultKind::MessageDrop`]/[`FaultKind::MessageDuplicate`]
    /// events from a plan.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let mut f = MessageFaults::default();
        for e in plan.events() {
            match e.kind {
                FaultKind::MessageDrop { seq } => {
                    f.drops.insert(seq);
                }
                FaultKind::MessageDuplicate { seq } => {
                    f.dups.insert(seq);
                }
                _ => {}
            }
        }
        f
    }

    /// Whether send `seq` is lost in flight.
    pub fn is_dropped(&self, seq: u64) -> bool {
        self.drops.contains(&seq)
    }

    /// Whether send `seq` is stored but its ack is lost.
    pub fn is_ack_lost(&self, seq: u64) -> bool {
        self.dups.contains(&seq)
    }

    /// `(drops, lost acks)` counts.
    pub fn counts(&self) -> (usize, usize) {
        (self.drops.len(), self.dups.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FaultSpec {
        FaultSpec {
            crashes: 3.0,
            partitions: 3.0,
            latency_spikes: 2.0,
            message_faults: 4.0,
            corruptions: 2.0,
            ..FaultSpec::new(SimDuration::from_secs(100), 8)
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let a = FaultPlan::generate(&spec(), 42);
        let b = FaultPlan::generate(&spec(), 42);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = FaultPlan::generate(&spec(), 43);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn events_time_sorted() {
        let p = FaultPlan::generate(&spec(), 7);
        assert!(p.events().windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!p.is_empty());
    }

    #[test]
    fn intensity_zero_is_empty() {
        let p = FaultPlan::generate(&spec().intensity(0.0), 7);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn intensity_scales_event_count() {
        let low = FaultPlan::generate(&spec(), 7);
        let high = FaultPlan::generate(&spec().intensity(3.0), 7);
        assert!(high.len() > low.len());
    }

    #[test]
    fn crash_windows_pair_with_restarts() {
        let p = FaultPlan::empty()
            .with_event(SimTime::from_secs(10), FaultKind::NodeCrash { node: 1 })
            .with_event(SimTime::from_secs(20), FaultKind::NodeRestart { node: 1 })
            .with_event(SimTime::from_secs(30), FaultKind::NodeCrash { node: 2 });
        let w = OutageWindows::node_crashes(&p);
        assert!(!w.is_down(1, SimTime::from_secs(5)));
        assert_eq!(
            w.down_until(1, SimTime::from_secs(15)),
            Some(SimTime::from_secs(20))
        );
        assert!(!w.is_down(1, SimTime::from_secs(20)), "restart heals");
        assert_eq!(w.down_until(2, SimTime::from_secs(99)), Some(FOREVER));
        assert_eq!(w.targets().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn partition_windows_merge_overlaps() {
        let p = FaultPlan::empty()
            .with_event(
                SimTime::from_secs(10),
                FaultKind::LinkPartition {
                    node: 3,
                    duration: SimDuration::from_secs(10),
                },
            )
            .with_event(
                SimTime::from_secs(15),
                FaultKind::LinkPartition {
                    node: 3,
                    duration: SimDuration::from_secs(10),
                },
            );
        let w = OutageWindows::link_partitions(&p);
        assert_eq!(
            w.windows_for(3),
            &[(SimTime::from_secs(10), SimTime::from_secs(25))]
        );
    }

    #[test]
    fn spike_factor_defaults_to_one() {
        let p = FaultPlan::empty().with_event(
            SimTime::from_secs(5),
            FaultKind::LinkLatencySpike {
                node: 0,
                factor: 4.0,
                duration: SimDuration::from_secs(2),
            },
        );
        let s = LatencySpikes::from_plan(&p);
        assert_eq!(s.factor_at(0, SimTime::from_secs(6)), 4.0);
        assert_eq!(s.factor_at(0, SimTime::from_secs(8)), 1.0);
        assert_eq!(s.factor_at(9, SimTime::from_secs(6)), 1.0);
    }

    #[test]
    fn message_faults_indexed_by_seq() {
        let p = FaultPlan::empty()
            .with_event(SimTime::ZERO, FaultKind::MessageDrop { seq: 4 })
            .with_event(SimTime::ZERO, FaultKind::MessageDuplicate { seq: 9 });
        let f = MessageFaults::from_plan(&p);
        assert!(f.is_dropped(4));
        assert!(!f.is_dropped(9));
        assert!(f.is_ack_lost(9));
        assert_eq!(f.counts(), (1, 1));
    }
}
