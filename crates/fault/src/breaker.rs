//! A sim-time circuit breaker.

use simclock::{SimDuration, SimTime};

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// Requests are rejected until the reset window elapses.
    Open,
    /// One probe request is allowed; success closes, failure re-opens.
    HalfOpen,
}

/// Classic three-state circuit breaker over sim-time: `failure_threshold`
/// consecutive failures trip it open, and after `reset_after` of sim-time a
/// single half-open probe decides whether to close again.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    reset_after: SimDuration,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: SimTime,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `failure_threshold` consecutive
    /// failures and probing again `reset_after` later.
    pub fn new(failure_threshold: u32, reset_after: SimDuration) -> Self {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            reset_after,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            trips: 0,
        }
    }

    /// Whether a request may proceed at `now`. An open breaker transitions
    /// to half-open (and admits the probe) once `reset_after` has elapsed.
    pub fn allow(&mut self, now: SimTime) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now >= self.opened_at + self.reset_after {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful request: closes the breaker and clears the
    /// failure streak.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failed request at `now`; may trip the breaker open.
    pub fn record_failure(&mut self, now: SimTime) {
        self.consecutive_failures += 1;
        let trip = match self.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => self.consecutive_failures >= self.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.opened_at = now;
            self.trips += 1;
        }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_secs(10));
        let t = SimTime::from_secs(1);
        assert!(b.allow(t));
        b.record_failure(t);
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(t);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(SimTime::from_secs(5)));
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(10));
        b.record_failure(SimTime::from_secs(1));
        assert!(!b.allow(SimTime::from_secs(2)));
        assert!(b.allow(SimTime::from_secs(11)), "reset window elapsed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_reopens_on_failure() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_secs(10));
        b.record_failure(SimTime::from_secs(0));
        assert!(b.allow(SimTime::from_secs(10)));
        b.record_failure(SimTime::from_secs(10));
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        assert!(!b.allow(SimTime::from_secs(19)));
        assert!(b.allow(SimTime::from_secs(20)));
    }
}
