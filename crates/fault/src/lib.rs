//! # scfault — deterministic fault injection and resilience policies
//!
//! The paper's four-tier fog model (§II-B1) and federated cloud only earn
//! the word *distributed* if the system keeps working while nodes crash,
//! links partition, messages vanish, and disks rot. This crate supplies the
//! failure side of that argument as a first-class, reproducible input:
//!
//! - [`FaultPlan`]: a seed-driven, time-sorted schedule of [`FaultEvent`]s
//!   (node crash/restart, link partition, latency spike, message
//!   drop/duplication, block corruption), generated from a [`FaultSpec`]
//!   whose single [`FaultSpec::intensity`] knob drives the E16 sweep.
//!   Precomputed views ([`OutageWindows`], [`LatencySpikes`],
//!   [`MessageFaults`]) answer hot-path queries without scanning.
//! - Resilience policies the layers share: [`RetryPolicy`] (capped
//!   exponential backoff with seed-deterministic jitter), [`Timeout`], and
//!   [`CircuitBreaker`].
//!
//! **Determinism contract.** Faults are *data, not dice*: a plan is fixed
//! before the run starts, every retry delay is a pure function of a seed,
//! and consumers only read precomputed windows. Identical seeds therefore
//! produce byte-identical fault schedules, reports, and telemetry exports
//! at any `SCPAR_THREADS` — the property the determinism suite checks.
//!
//! Consumers: `scfog` re-routes/re-queues jobs around plan outages, `scdfs`
//! drives datanode churn and corruption scrubbing from a plan, and
//! `scstream` wraps a topic in a fault-gated broker with retrying
//! producers. See the DESIGN.md "Fault model" section for the taxonomy and
//! per-layer recovery guarantees.
//!
//! # Examples
//!
//! ```
//! use scfault::{FaultPlan, FaultSpec, OutageWindows};
//! use simclock::SimDuration;
//!
//! let spec = FaultSpec::new(SimDuration::from_secs(60), 4).intensity(2.0);
//! let plan = FaultPlan::generate(&spec, 42);
//! assert_eq!(plan, FaultPlan::generate(&spec, 42), "same seed, same plan");
//! let outages = OutageWindows::node_crashes(&plan);
//! for node in outages.targets() {
//!     assert!(!outages.windows_for(node).is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod plan;
mod retry;

pub use breaker::{BreakerState, CircuitBreaker};
pub use plan::{
    FaultEvent, FaultKind, FaultPlan, FaultSpec, LatencySpikes, MessageFaults, OutageWindows,
    FOREVER,
};
pub use retry::{RetryOutcome, RetryPolicy, Timeout};

use sctelemetry::TelemetryHandle;

/// Counter: fault events actually applied by a layer executing a plan.
pub const METRIC_INJECTED: &str = "scfault_injected_total";

/// Records one applied fault into telemetry: bumps [`METRIC_INJECTED`] and
/// emits a sim-time event named after the fault kind. Layers call this at
/// the moment they apply an event, so traces show faults interleaved with
/// the work they disturb.
pub fn record_injection(t: &TelemetryHandle, event: &FaultEvent) {
    if !t.is_enabled() {
        return;
    }
    t.counter_inc(METRIC_INJECTED, "fault events injected into a run");
    t.event(
        "scfault",
        event.kind.name(),
        event.at,
        &format!("{:?}", event.kind),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimTime;

    #[test]
    fn record_injection_counts_and_traces() {
        let t = sctelemetry::Telemetry::shared();
        let e = FaultEvent {
            at: SimTime::from_secs(3),
            kind: FaultKind::NodeCrash { node: 7 },
        };
        record_injection(&t.handle(), &e);
        record_injection(&t.handle(), &e);
        let c = t.registry().get(METRIC_INJECTED).unwrap();
        assert_eq!(c.as_counter().unwrap().get(), 2);
        assert_eq!(t.trace_len(), 2);
    }

    #[test]
    fn disabled_handle_is_a_noop() {
        let e = FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::MessageDrop { seq: 1 },
        };
        record_injection(&TelemetryHandle::disabled(), &e);
    }
}
