//! Property tests: fault schedules are a pure function of (spec, seed).

use proptest::prelude::*;
use scfault::{FaultPlan, FaultSpec, LatencySpikes, MessageFaults, OutageWindows, RetryPolicy};
use simclock::{SeededRng, SimDuration};

fn spec(intensity: f64) -> FaultSpec {
    FaultSpec {
        crashes: 2.0,
        partitions: 2.0,
        latency_spikes: 2.0,
        message_faults: 3.0,
        corruptions: 2.0,
        ..FaultSpec::new(SimDuration::from_secs(120), 6)
    }
    .intensity(intensity)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn same_seed_same_schedule(seed in any::<u64>()) {
        let a = FaultPlan::generate(&spec(1.5), seed);
        let b = FaultPlan::generate(&spec(1.5), seed);
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn schedule_is_time_sorted(seed in any::<u64>()) {
        let p = FaultPlan::generate(&spec(2.0), seed);
        prop_assert!(p.events().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn derived_views_are_consistent(seed in any::<u64>()) {
        let p = FaultPlan::generate(&spec(2.0), seed);
        let crashes = OutageWindows::node_crashes(&p);
        for node in crashes.targets() {
            for &(s, e) in crashes.windows_for(node) {
                prop_assert!(s < e);
                prop_assert!(crashes.is_down(node, s));
                prop_assert!(!crashes.is_down(node, e), "window end is healed");
            }
        }
        let spikes = LatencySpikes::from_plan(&p);
        for ev in p.events() {
            if let scfault::FaultKind::LinkLatencySpike { node, factor, .. } = ev.kind {
                prop_assert!(spikes.factor_at(node, ev.at) >= factor.max(1.0));
            }
        }
        let (drops, dups) = MessageFaults::from_plan(&p).counts();
        prop_assert!(drops + dups <= p.len());
    }

    #[test]
    fn retry_schedule_is_seeded(seed in any::<u64>(), base_ms in 1u64..100) {
        let policy = RetryPolicy::new(6, SimDuration::from_millis(base_ms));
        prop_assert_eq!(policy.schedule(seed), policy.schedule(seed));
        let mut a = SeededRng::new(seed);
        let mut b = SeededRng::new(seed);
        for k in 1..6 {
            prop_assert_eq!(policy.delay(k, &mut a), policy.delay(k, &mut b));
        }
    }
}
