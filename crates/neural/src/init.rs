//! Weight initializers.

use simclock::SeededRng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suits tanh/sigmoid layers.
pub fn xavier_uniform(
    shape: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut SeededRng,
) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    random_uniform(shape, -a, a, rng)
}

/// He/Kaiming uniform initialization: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
/// Suits ReLU layers (used by all conv/residual blocks here).
pub fn he_uniform(shape: Vec<usize>, fan_in: usize, rng: &mut SeededRng) -> Tensor {
    let a = (6.0 / fan_in.max(1) as f64).sqrt();
    random_uniform(shape, -a, a, rng)
}

/// Uniform initialization over `[lo, hi)`.
pub fn random_uniform(shape: Vec<usize>, lo: f64, hi: f64, rng: &mut SeededRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.range_f64(lo, hi) as f32).collect();
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

/// Standard normal initialization scaled by `std_dev`.
pub fn random_normal(shape: Vec<usize>, std_dev: f64, rng: &mut SeededRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n)
        .map(|_| (rng.next_gaussian() * std_dev) as f32)
        .collect();
    Tensor::from_vec(shape, data).expect("length matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_bounds() {
        let mut rng = SeededRng::new(1);
        let t = xavier_uniform(vec![64, 64], 64, 64, &mut rng);
        let a = (6.0f64 / 128.0).sqrt() as f32;
        assert!(t.data().iter().all(|&x| x > -a && x < a));
    }

    #[test]
    fn he_bounds_wider_than_xavier() {
        let mut rng = SeededRng::new(2);
        let he = he_uniform(vec![1000], 64, &mut rng);
        let he_max = he.data().iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let a = (6.0f64 / 64.0).sqrt() as f32;
        assert!(
            he_max < a && he_max > a * 0.8,
            "should nearly fill the range"
        );
    }

    #[test]
    fn normal_mean_near_zero() {
        let mut rng = SeededRng::new(3);
        let t = random_normal(vec![10_000], 0.5, &mut rng);
        assert!(t.mean().abs() < 0.02);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = SeededRng::new(4);
        let mut b = SeededRng::new(4);
        assert_eq!(
            he_uniform(vec![8, 8], 8, &mut a),
            he_uniform(vec![8, 8], 8, &mut b)
        );
    }
}
