//! Deep autoencoders and multi-modal fusion (paper §III-C).
//!
//! The paper's multi-modal methodology fuses "information of multiple modals,
//! such as video (image data) and sound (audio data) for gun shots" using
//! "fusion based on deep auto-encoders". [`Autoencoder`] is a plain deep AE;
//! [`FusionAutoencoder`] encodes each modality separately, concatenates the
//! latent codes through a shared fusion layer, and reconstructs both
//! modalities — the classic Ngiam et al. bimodal architecture the paper cites.

use crate::layers::{Dense, Layer, Relu, Sigmoid};
use crate::loss::{Loss, LossTarget, MeanSquaredError};
use crate::net::Sequential;
use crate::optim::Optimizer;
use crate::tensor::Tensor;

/// A deep autoencoder: `input → encoder → latent → decoder → reconstruction`.
///
/// # Examples
///
/// ```
/// use scneural::autoencoder::Autoencoder;
/// use scneural::tensor::Tensor;
///
/// let mut ae = Autoencoder::new(8, &[6], 3, 42);
/// let x = Tensor::ones(vec![2, 8]);
/// assert_eq!(ae.encode(&x).shape(), &[2, 3]);
/// assert_eq!(ae.reconstruct(&x).shape(), &[2, 8]);
/// ```
#[derive(Debug)]
pub struct Autoencoder {
    encoder: Sequential,
    decoder: Sequential,
    latent: usize,
}

impl Autoencoder {
    /// Builds a symmetric AE: `input → hidden... → latent → reversed
    /// hidden... → input`, with ReLU between layers and a sigmoid output
    /// (inputs are expected in `[0, 1]`).
    pub fn new(input: usize, hidden: &[usize], latent: usize, seed: u64) -> Self {
        let mut encoder = Sequential::new();
        let mut dims = vec![input];
        dims.extend_from_slice(hidden);
        dims.push(latent);
        for (i, w) in dims.windows(2).enumerate() {
            encoder.push(Box::new(Dense::new(
                w[0],
                w[1],
                seed.wrapping_add(i as u64),
            )));
            if i + 2 < dims.len() {
                encoder.push(Box::new(Relu::new()));
            }
        }
        let mut decoder = Sequential::new();
        let rev: Vec<usize> = dims.iter().rev().copied().collect();
        for (i, w) in rev.windows(2).enumerate() {
            decoder.push(Box::new(Dense::new(
                w[0],
                w[1],
                seed.wrapping_add(100 + i as u64),
            )));
            if i + 2 < rev.len() {
                decoder.push(Box::new(Relu::new()));
            } else {
                decoder.push(Box::new(Sigmoid::new()));
            }
        }
        Autoencoder {
            encoder,
            decoder,
            latent,
        }
    }

    /// Latent code width.
    pub fn latent_size(&self) -> usize {
        self.latent
    }

    /// Encodes input to latent codes.
    pub fn encode(&mut self, input: &Tensor) -> Tensor {
        self.encoder.predict(input)
    }

    /// Full reconstruction pass.
    pub fn reconstruct(&mut self, input: &Tensor) -> Tensor {
        let z = self.encoder.predict(input);
        self.decoder.predict(&z)
    }

    /// Mean squared reconstruction error on a batch.
    pub fn reconstruction_error(&mut self, input: &Tensor) -> f32 {
        let r = self.reconstruct(input);
        r.sub(input).expect("same shape").norm_sq() / input.len() as f32
    }

    /// One training step minimizing reconstruction MSE. Returns the loss.
    pub fn train_step(&mut self, input: &Tensor, optimizer: &mut dyn Optimizer) -> f32 {
        let z = self.encoder.forward(input, true);
        let out = self.decoder.forward(&z, true);
        let mut mse = MeanSquaredError::new();
        let (loss, grad) = mse.forward(&out, &LossTarget::Values(input));
        let g_latent = self.decoder.backward(&grad);
        self.encoder.backward(&g_latent);
        let mut params = self.encoder.params_mut();
        params.extend(self.decoder.params_mut());
        optimizer.step(params);
        loss
    }
}

/// A bimodal fusion autoencoder: two modality encoders meeting in a shared
/// latent, decoded back to both modalities.
///
/// The fused latent can be used directly as a joint representation for
/// downstream classifiers (see the E12 experiment), including when one
/// modality is missing at inference time (zero-filled).
#[derive(Debug)]
pub struct FusionAutoencoder {
    encoder_a: Sequential,
    encoder_b: Sequential,
    fusion: Sequential,
    defusion: Sequential,
    decoder_a: Sequential,
    decoder_b: Sequential,
    dim_b: usize,
    code_a: usize,
    latent: usize,
}

impl FusionAutoencoder {
    /// Builds a fusion AE for modalities of width `dim_a`/`dim_b`, each with
    /// its own pre-fusion code width, joined into a shared `latent`.
    pub fn new(
        dim_a: usize,
        code_a: usize,
        dim_b: usize,
        code_b: usize,
        latent: usize,
        seed: u64,
    ) -> Self {
        let enc = |d_in: usize, d_out: usize, s: u64| {
            Sequential::new()
                .with(Dense::new(d_in, d_out, s))
                .with(Relu::new())
        };
        FusionAutoencoder {
            encoder_a: enc(dim_a, code_a, seed),
            encoder_b: enc(dim_b, code_b, seed.wrapping_add(1)),
            fusion: Sequential::new()
                .with(Dense::new(code_a + code_b, latent, seed.wrapping_add(2)))
                .with(Relu::new()),
            defusion: Sequential::new()
                .with(Dense::new(latent, code_a + code_b, seed.wrapping_add(3)))
                .with(Relu::new()),
            decoder_a: Sequential::new()
                .with(Dense::new(code_a, dim_a, seed.wrapping_add(4)))
                .with(Sigmoid::new()),
            decoder_b: Sequential::new()
                .with(Dense::new(code_b, dim_b, seed.wrapping_add(5)))
                .with(Sigmoid::new()),
            dim_b,
            code_a,
            latent,
        }
    }

    /// Shared latent width.
    pub fn latent_size(&self) -> usize {
        self.latent
    }

    /// Fused latent code for a pair of modality batches.
    ///
    /// # Panics
    ///
    /// Panics if the two batches have different row counts.
    pub fn fuse(&mut self, a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.rows(), b.rows(), "modalities must align by row");
        let za = self.encoder_a.predict(a);
        let zb = self.encoder_b.predict(b);
        let joint = Tensor::hstack(&[za, zb]).expect("same rows");
        self.fusion.predict(&joint)
    }

    /// Fused latent when only modality A is observed (B zero-filled) —
    /// exercises the cross-modal robustness the fusion is trained for.
    pub fn fuse_a_only(&mut self, a: &Tensor) -> Tensor {
        let zeros = Tensor::zeros(vec![a.rows(), self.dim_b]);
        self.fuse(a, &zeros)
    }

    /// Reconstructs both modalities from a pair of inputs.
    pub fn reconstruct(&mut self, a: &Tensor, b: &Tensor) -> (Tensor, Tensor) {
        let z = self.fuse(a, b);
        let codes = self.defusion.predict(&z);
        let (ca, cb) = codes.hsplit(self.code_a);
        (self.decoder_a.predict(&ca), self.decoder_b.predict(&cb))
    }

    /// One joint reconstruction training step. Returns the summed MSE of both
    /// modality reconstructions.
    pub fn train_step(&mut self, a: &Tensor, b: &Tensor, optimizer: &mut dyn Optimizer) -> f32 {
        let za = self.encoder_a.forward(a, true);
        let zb = self.encoder_b.forward(b, true);
        let joint = Tensor::hstack(&[za, zb]).expect("same rows");
        let z = self.fusion.forward(&joint, true);
        let codes = self.defusion.forward(&z, true);
        let (ca, cb) = codes.hsplit(self.code_a);
        let out_a = self.decoder_a.forward(&ca, true);
        let out_b = self.decoder_b.forward(&cb, true);

        let mut mse = MeanSquaredError::new();
        let (loss_a, grad_a) = mse.forward(&out_a, &LossTarget::Values(a));
        let (loss_b, grad_b) = mse.forward(&out_b, &LossTarget::Values(b));

        let g_ca = self.decoder_a.backward(&grad_a);
        let g_cb = self.decoder_b.backward(&grad_b);
        let g_codes = Tensor::hstack(&[g_ca, g_cb]).expect("same rows");
        let g_z = self.defusion.backward(&g_codes);
        let g_joint = self.fusion.backward(&g_z);
        let (g_za, g_zb) = g_joint.hsplit(self.code_a);
        self.encoder_a.backward(&g_za);
        self.encoder_b.backward(&g_zb);

        let mut params = self.encoder_a.params_mut();
        params.extend(self.encoder_b.params_mut());
        params.extend(self.fusion.params_mut());
        params.extend(self.defusion.params_mut());
        params.extend(self.decoder_a.params_mut());
        params.extend(self.decoder_b.params_mut());
        optimizer.step(params);
        loss_a + loss_b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use simclock::SeededRng;

    fn structured_batch(n: usize, d: usize, seed: u64) -> Tensor {
        // Low-rank structure: each row is one of two prototype patterns plus
        // noise, so a small latent suffices.
        let mut rng = SeededRng::new(seed);
        let mut data = Vec::with_capacity(n * d);
        for i in 0..n {
            let proto = i % 2;
            for j in 0..d {
                let base = if (j + proto) % 2 == 0 { 0.9 } else { 0.1 };
                data.push((base + rng.gaussian(0.0, 0.02)).clamp(0.0, 1.0) as f32);
            }
        }
        Tensor::from_vec(vec![n, d], data).unwrap()
    }

    #[test]
    fn autoencoder_shapes() {
        let mut ae = Autoencoder::new(10, &[8, 6], 2, 1);
        let x = Tensor::ones(vec![3, 10]);
        assert_eq!(ae.encode(&x).shape(), &[3, 2]);
        assert_eq!(ae.reconstruct(&x).shape(), &[3, 10]);
        assert_eq!(ae.latent_size(), 2);
    }

    #[test]
    fn autoencoder_learns_reconstruction() {
        let x = structured_batch(32, 8, 2);
        let mut ae = Autoencoder::new(8, &[6], 2, 3);
        let mut opt = Adam::new(0.01);
        let e0 = ae.reconstruction_error(&x);
        for _ in 0..300 {
            ae.train_step(&x, &mut opt);
        }
        let e1 = ae.reconstruction_error(&x);
        assert!(e1 < e0 * 0.3, "error {e0} -> {e1}");
    }

    #[test]
    fn fusion_shapes() {
        let mut fae = FusionAutoencoder::new(6, 4, 10, 5, 3, 4);
        let a = Tensor::ones(vec![2, 6]);
        let b = Tensor::ones(vec![2, 10]);
        assert_eq!(fae.fuse(&a, &b).shape(), &[2, 3]);
        let (ra, rb) = fae.reconstruct(&a, &b);
        assert_eq!(ra.shape(), &[2, 6]);
        assert_eq!(rb.shape(), &[2, 10]);
    }

    #[test]
    fn fusion_learns_joint_reconstruction() {
        // Correlated modalities: B is a noisy projection of A's pattern.
        let a = structured_batch(24, 6, 5);
        let b = structured_batch(24, 10, 5); // same prototype sequence (i % 2)
        let mut fae = FusionAutoencoder::new(6, 5, 10, 6, 4, 6);
        let mut opt = Adam::new(0.01);
        let l0 = fae.train_step(&a, &b, &mut opt);
        let mut l1 = l0;
        for _ in 0..250 {
            l1 = fae.train_step(&a, &b, &mut opt);
        }
        assert!(l1 < l0 * 0.3, "loss {l0} -> {l1}");
    }

    #[test]
    fn fuse_a_only_runs() {
        let mut fae = FusionAutoencoder::new(4, 3, 5, 3, 2, 7);
        let a = Tensor::ones(vec![3, 4]);
        assert_eq!(fae.fuse_a_only(&a).shape(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "align by row")]
    fn fuse_rejects_mismatched_batches() {
        let mut fae = FusionAutoencoder::new(4, 3, 5, 3, 2, 8);
        let _ = fae.fuse(&Tensor::ones(vec![2, 4]), &Tensor::ones(vec![3, 5]));
    }
}
