//! Convolutional and pooling layers over `[batch, channels, height, width]`
//! tensors, implemented via im2col.

use sctelemetry::WorkDelta;
use simclock::SeededRng;

use crate::init;
use crate::layers::{Layer, Param};
use crate::tensor::Tensor;

fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    (input + 2 * pad - kernel) / stride + 1
}

/// Lowers image patches into a `[n*oh*ow, c*kh*kw]` matrix.
#[allow(clippy::too_many_arguments)]
fn im2col(
    input: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) -> Tensor {
    let shape = input.shape();
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    let mut cols = vec![0.0f32; n * oh * ow * c * kh * kw];
    let row_len = c * kh * kw;
    let data = input.data();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (b * oh + oy) * ow + ox;
                let base = row * row_len;
                for ch in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue; // zero padding
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let src = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                            let dst = base + (ch * kh + ky) * kw + kx;
                            cols[dst] = data[src];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![n * oh * ow, row_len], cols).expect("size computed above")
}

/// Scatters column gradients back into image space (adjoint of [`im2col`]).
#[allow(clippy::too_many_arguments)]
fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) -> Tensor {
    let mut out = vec![0.0f32; n * c * h * w];
    let row_len = c * kh * kw;
    let data = cols.data();
    for b in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (b * oh + oy) * ow + ox;
                let base = row * row_len;
                for ch in 0..c {
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let dst = ((b * c + ch) * h + iy as usize) * w + ix as usize;
                            let src = base + (ch * kh + ky) * kw + kx;
                            out[dst] += data[src];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(vec![n, c, h, w], out).expect("size computed above")
}

/// 2-D convolution.
///
/// Input `[n, in_channels, h, w]`, output `[n, out_channels, oh, ow]`.
///
/// # Examples
///
/// ```
/// use scneural::layers::{Conv2d, Layer};
/// use scneural::tensor::Tensor;
///
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, 42); // 3→8 channels, 3x3, same-size
/// let x = Tensor::zeros(vec![2, 3, 16, 16]);
/// let y = conv.forward(&x, false);
/// assert_eq!(y.shape(), &[2, 8, 16, 16]);
/// ```
#[derive(Debug)]
pub struct Conv2d {
    weight: Param, // [c*kh*kw, f]
    bias: Param,   // [1, f]
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    cache: Option<ConvCache>,
}

#[derive(Debug)]
struct ConvCache {
    cols: Tensor,
    input_shape: Vec<usize>,
    oh: usize,
    ow: usize,
}

impl Conv2d {
    /// Creates a convolution with a square `kernel`, `stride`, and `pad`,
    /// He-initialized from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        assert!(
            kernel > 0 && stride > 0,
            "kernel and stride must be positive"
        );
        let mut rng = SeededRng::new(seed);
        let fan_in = in_channels * kernel * kernel;
        Conv2d {
            weight: Param::new(init::he_uniform(
                vec![fan_in, out_channels],
                fan_in,
                &mut rng,
            )),
            bias: Param::new(Tensor::zeros(vec![1, out_channels])),
            in_channels,
            out_channels,
            kernel,
            stride,
            pad,
            cache: None,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Spatial output size for the given input size.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_dim(h, self.kernel, self.stride, self.pad),
            conv_out_dim(w, self.kernel, self.stride, self.pad),
        )
    }

    /// The pure forward computation shared by `forward` (which stores the
    /// cache) and `infer` (which discards it).
    fn forward_impl(&self, input: &Tensor) -> (Tensor, ConvCache) {
        let shape = input.shape().to_vec();
        assert_eq!(shape.len(), 4, "Conv2d expects [n, c, h, w], got {shape:?}");
        assert_eq!(shape[1], self.in_channels, "channel mismatch");
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let (oh, ow) = self.output_hw(h, w);
        let cols = im2col(
            input,
            self.kernel,
            self.kernel,
            self.stride,
            self.pad,
            oh,
            ow,
        );
        // [n*oh*ow, f]
        let out2d = cols
            .matmul(&self.weight.value)
            .expect("im2col width equals weight height")
            .add_row_broadcast(&self.bias.value);
        // Rearrange [n*oh*ow, f] to [n, f, oh, ow].
        let f = self.out_channels;
        let mut out = vec![0.0f32; n * f * oh * ow];
        let src = out2d.data();
        for b in 0..n {
            for y in 0..oh {
                for x in 0..ow {
                    let row = (b * oh + y) * ow + x;
                    for ch in 0..f {
                        out[((b * f + ch) * oh + y) * ow + x] = src[row * f + ch];
                    }
                }
            }
        }
        let out = Tensor::from_vec(vec![n, f, oh, ow], out).expect("size computed above");
        let cache = ConvCache {
            cols,
            input_shape: shape,
            oh,
            ow,
        };
        (out, cache)
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (out, cache) = self.forward_impl(input);
        self.cache = Some(cache);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.forward_impl(input).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let [n, c, h, w] = cache.input_shape[..] else {
            unreachable!("shape checked")
        };
        let (oh, ow) = (cache.oh, cache.ow);
        let f = self.out_channels;
        // Rearrange grad [n, f, oh, ow] into [n*oh*ow, f].
        let mut g2d = vec![0.0f32; n * oh * ow * f];
        let gd = grad_out.data();
        for b in 0..n {
            for ch in 0..f {
                for y in 0..oh {
                    for x in 0..ow {
                        let row = (b * oh + y) * ow + x;
                        g2d[row * f + ch] = gd[((b * f + ch) * oh + y) * ow + x];
                    }
                }
            }
        }
        let g2d = Tensor::from_vec(vec![n * oh * ow, f], g2d).expect("size computed above");
        let dw = cache
            .cols
            .transpose()
            .matmul(&g2d)
            .expect("shapes from forward");
        self.weight.grad.add_assign(&dw);
        self.bias.grad.add_assign(&g2d.sum_rows());
        let dcols = g2d
            .matmul(&self.weight.value.transpose())
            .expect("shapes from forward");
        col2im(
            &dcols,
            n,
            c,
            h,
            w,
            self.kernel,
            self.kernel,
            self.stride,
            self.pad,
            oh,
            ow,
        )
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "Conv2d"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Each output element is a fan-in-sized multiply-add reduction
        // (fan-in = c·k²) plus a bias add. The im2col lowering writes and
        // re-reads a fan-in-sized patch row per output pixel.
        let rows = input.shape().first().copied().unwrap_or(0) as u64;
        let fan_in = (self.in_channels * self.kernel * self.kernel) as u64;
        let out_elems = output.len() as u64;
        let col_elems = out_elems / (self.out_channels as u64).max(1) * fan_in;
        WorkDelta::flops(out_elems * (2 * fan_in + 1))
            .with_bytes(4 * (input.len() as u64 + 2 * col_elems + out_elems))
            .with_items(rows)
    }
}

/// 2-D max pooling with a square window.
#[derive(Debug)]
pub struct MaxPool2d {
    size: usize,
    stride: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>, // (input shape, argmax flat indices)
}

impl MaxPool2d {
    /// Creates a pool with the given window `size` and `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `stride` is zero.
    pub fn new(size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "size and stride must be positive");
        MaxPool2d {
            size,
            stride,
            cache: None,
        }
    }

    /// The pure forward computation shared by `forward` and `infer`.
    fn forward_impl(&self, input: &Tensor) -> (Tensor, (Vec<usize>, Vec<usize>)) {
        let shape = input.shape().to_vec();
        assert_eq!(shape.len(), 4, "MaxPool2d expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = conv_out_dim(h, self.size, self.stride, 0);
        let ow = conv_out_dim(w, self.size, self.stride, 0);
        let mut out = vec![f32::NEG_INFINITY; n * c * oh * ow];
        let mut arg = vec![0usize; n * c * oh * ow];
        let data = input.data();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let o_idx = ((b * c + ch) * oh + oy) * ow + ox;
                        for ky in 0..self.size {
                            for kx in 0..self.size {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                if iy < h && ix < w {
                                    let i_idx = ((b * c + ch) * h + iy) * w + ix;
                                    if data[i_idx] > out[o_idx] {
                                        out[o_idx] = data[i_idx];
                                        arg[o_idx] = i_idx;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let out = Tensor::from_vec(vec![n, c, oh, ow], out).expect("size computed above");
        (out, (shape, arg))
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (out, cache) = self.forward_impl(input);
        self.cache = Some(cache);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.forward_impl(input).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (shape, arg) = self.cache.as_ref().expect("backward before forward");
        let mut grad_in = Tensor::zeros(shape.clone());
        let gi = grad_in.data_mut();
        for (o_idx, &i_idx) in arg.iter().enumerate() {
            gi[i_idx] += grad_out.data()[o_idx];
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "MaxPool2d"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // One comparison per window element per output pixel.
        let rows = input.shape().first().copied().unwrap_or(0) as u64;
        WorkDelta::flops(output.len() as u64 * (self.size * self.size) as u64)
            .with_bytes(4 * (input.len() + output.len()) as u64)
            .with_items(rows)
    }
}

/// 2-D average pooling with a square window.
#[derive(Debug)]
pub struct AvgPool2d {
    size: usize,
    stride: usize,
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates a pool with the given window `size` and `stride`.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `stride` is zero.
    pub fn new(size: usize, stride: usize) -> Self {
        assert!(size > 0 && stride > 0, "size and stride must be positive");
        AvgPool2d {
            size,
            stride,
            input_shape: None,
        }
    }

    /// The pure forward computation shared by `forward` and `infer`.
    fn forward_impl(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        let shape = input.shape().to_vec();
        assert_eq!(shape.len(), 4, "AvgPool2d expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = conv_out_dim(h, self.size, self.stride, 0);
        let ow = conv_out_dim(w, self.size, self.stride, 0);
        let area = (self.size * self.size) as f32;
        let mut out = vec![0.0f32; n * c * oh * ow];
        let data = input.data();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut sum = 0.0;
                        for ky in 0..self.size {
                            for kx in 0..self.size {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                if iy < h && ix < w {
                                    sum += data[((b * c + ch) * h + iy) * w + ix];
                                }
                            }
                        }
                        out[((b * c + ch) * oh + oy) * ow + ox] = sum / area;
                    }
                }
            }
        }
        let out = Tensor::from_vec(vec![n, c, oh, ow], out).expect("size computed above");
        (out, shape)
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (out, shape) = self.forward_impl(input);
        self.input_shape = Some(shape);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.forward_impl(input).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.input_shape.clone().expect("backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let gs = grad_out.shape().to_vec();
        let (oh, ow) = (gs[2], gs[3]);
        let area = (self.size * self.size) as f32;
        let mut grad_in = Tensor::zeros(shape);
        let gi = grad_in.data_mut();
        for b in 0..n {
            for ch in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.data()[((b * c + ch) * oh + oy) * ow + ox] / area;
                        for ky in 0..self.size {
                            for kx in 0..self.size {
                                let iy = oy * self.stride + ky;
                                let ix = ox * self.stride + kx;
                                if iy < h && ix < w {
                                    gi[((b * c + ch) * h + iy) * w + ix] += g;
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "AvgPool2d"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Window-sized sum plus one divide per output pixel.
        let rows = input.shape().first().copied().unwrap_or(0) as u64;
        WorkDelta::flops(output.len() as u64 * ((self.size * self.size) as u64 + 1))
            .with_bytes(4 * (input.len() + output.len()) as u64)
            .with_items(rows)
    }
}

/// Global average pooling: `[n, c, h, w]` → `[n, c]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The pure forward computation shared by `forward` and `infer`.
    fn forward_impl(&self, input: &Tensor) -> (Tensor, Vec<usize>) {
        let shape = input.shape().to_vec();
        assert_eq!(shape.len(), 4, "GlobalAvgPool expects [n, c, h, w]");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let area = (h * w) as f32;
        let mut out = vec![0.0f32; n * c];
        for b in 0..n {
            for ch in 0..c {
                let start = ((b * c + ch) * h) * w;
                out[b * c + ch] = input.data()[start..start + h * w].iter().sum::<f32>() / area;
            }
        }
        let out = Tensor::from_vec(vec![n, c], out).expect("size computed above");
        (out, shape)
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (out, shape) = self.forward_impl(input);
        self.input_shape = Some(shape);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.forward_impl(input).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.input_shape.clone().expect("backward before forward");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let area = (h * w) as f32;
        let mut grad_in = Tensor::zeros(shape);
        let gi = grad_in.data_mut();
        for b in 0..n {
            for ch in 0..c {
                let g = grad_out.data()[b * c + ch] / area;
                let start = ((b * c + ch) * h) * w;
                for v in &mut gi[start..start + h * w] {
                    *v += g;
                }
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "GlobalAvgPool"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Every input element enters one running sum; one divide per output.
        let rows = input.shape().first().copied().unwrap_or(0) as u64;
        WorkDelta::flops((input.len() + output.len()) as u64)
            .with_bytes(4 * (input.len() + output.len()) as u64)
            .with_items(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape() {
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, 1);
        let x = Tensor::ones(vec![1, 1, 5, 5]);
        let y = conv.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 3, 3]);
    }

    #[test]
    fn conv_same_padding_preserves_size() {
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, 2);
        let x = Tensor::ones(vec![2, 3, 8, 8]);
        assert_eq!(conv.forward(&x, true).shape(), &[2, 4, 8, 8]);
    }

    #[test]
    fn conv_stride_two_halves() {
        let mut conv = Conv2d::new(1, 1, 3, 2, 1, 3);
        let x = Tensor::ones(vec![1, 1, 8, 8]);
        assert_eq!(conv.forward(&x, true).shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn conv_known_values() {
        // 1x1 input channel, 2x2 kernel of ones, no padding: output = window sums.
        let mut conv = Conv2d::new(1, 1, 2, 1, 0, 4);
        conv.params_mut()[0].value = Tensor::ones(vec![4, 1]);
        conv.params_mut()[1].value = Tensor::zeros(vec![1, 1]);
        let x =
            Tensor::from_vec(vec![1, 1, 3, 3], vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]).unwrap();
        let y = conv.forward(&x, true);
        assert_eq!(y.data(), &[12., 16., 24., 28.]);
    }

    #[test]
    fn conv_gradient_check_input() {
        let x0 = Tensor::from_vec(
            vec![1, 1, 4, 4],
            (0..16).map(|i| (i as f32 - 8.0) / 8.0).collect(),
        )
        .unwrap();
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, 5);
        let y = conv.forward(&x0, true);
        let grad_in = conv.backward(&Tensor::ones(y.shape().to_vec()));

        let eps = 1e-2;
        for idx in [0, 5, 10, 15] {
            let mut cp = Conv2d::new(1, 2, 3, 1, 1, 5);
            let mut xp = x0.clone();
            xp.data_mut()[idx] += eps;
            let fp = cp.forward(&xp, true).sum();
            let mut cm = Conv2d::new(1, 2, 3, 1, 1, 5);
            let mut xm = x0.clone();
            xm.data_mut()[idx] -= eps;
            let fm = cm.forward(&xm, true).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grad_in.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "idx {idx}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn conv_gradient_check_weights() {
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            (0..16).map(|i| (i as f32) / 16.0).collect(),
        )
        .unwrap();
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, 6);
        let y = conv.forward(&x, true);
        conv.backward(&Tensor::ones(y.shape().to_vec()));
        let analytic = conv.params()[0].grad.clone();

        let eps = 1e-2;
        for idx in 0..9 {
            let mut cp = Conv2d::new(1, 1, 3, 1, 0, 6);
            cp.params_mut()[0].value.data_mut()[idx] += eps;
            let fp = cp.forward(&x, true).sum();
            let mut cm = Conv2d::new(1, 1, 3, 1, 0, 6);
            cm.params_mut()[0].value.data_mut()[idx] -= eps;
            let fm = cm.forward(&x, true).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 1e-2,
                "w[{idx}]: numeric {num} analytic {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn maxpool_picks_max_and_routes_gradient() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1., 2., 5., 3., //
                4., 0., 1., 2., //
                7., 1., 0., 0., //
                2., 8., 1., 6.,
            ],
        )
        .unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[4., 5., 8., 6.]);
        let g = pool.backward(&Tensor::ones(vec![1, 1, 2, 2]));
        // Gradient goes only to the max positions.
        assert_eq!(g.data()[4], 1.0); // value 4
        assert_eq!(g.data()[2], 1.0); // value 5
        assert_eq!(g.data()[13], 1.0); // value 8
        assert_eq!(g.data()[15], 1.0); // value 6
        assert_eq!(g.sum(), 4.0);
    }

    #[test]
    fn avgpool_averages() {
        let mut pool = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 3., 5., 7.]).unwrap();
        let y = pool.forward(&x, true);
        assert_eq!(y.data(), &[4.0]);
        let g = pool.backward(&Tensor::ones(vec![1, 1, 1, 1]));
        assert_eq!(g.data(), &[0.25; 4]);
    }

    #[test]
    fn global_avgpool_shape_and_grad() {
        let mut pool = GlobalAvgPool::new();
        let x = Tensor::ones(vec![2, 3, 4, 4]);
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[2, 3]);
        assert!((y.at(0, 0) - 1.0).abs() < 1e-6);
        let g = pool.backward(&Tensor::ones(vec![2, 3]));
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
        assert!((g.data()[0] - 1.0 / 16.0).abs() < 1e-6);
    }

    #[test]
    fn im2col_col2im_adjoint() {
        // <im2col(x), y> == <x, col2im(y)> — the adjoint property that makes
        // conv backward correct.
        let x = Tensor::from_vec(vec![1, 2, 3, 3], (0..18).map(|i| i as f32).collect()).unwrap();
        let oh = conv_out_dim(3, 2, 1, 0);
        let ow = oh;
        let cols = im2col(&x, 2, 2, 1, 0, oh, ow);
        let y = Tensor::from_vec(
            cols.shape().to_vec(),
            (0..cols.len()).map(|i| ((i * 7) % 5) as f32).collect(),
        )
        .unwrap();
        let lhs: f32 = cols.mul(&y).unwrap().sum();
        let back = col2im(&y, 1, 2, 3, 3, 2, 2, 1, 0, oh, ow);
        let rhs: f32 = x.mul(&back).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }
}
