//! Fully connected layers, activations, and regularizers.

use simclock::SeededRng;

use sctelemetry::WorkDelta;

use crate::init;
use crate::layers::{softmax_rows, Layer, Param};
use crate::tensor::Tensor;

/// Bytes moved by a layer that streams its input once and writes its
/// output once (`f32` elements). Row-linear by construction.
fn stream_bytes(input: &Tensor, output: &Tensor) -> u64 {
    4 * (input.len() + output.len()) as u64
}

/// A fully connected (affine) layer: `y = x W + b`.
///
/// Input `[batch, in_features]`, output `[batch, out_features]`.
///
/// # Examples
///
/// ```
/// use scneural::layers::{Dense, Layer};
/// use scneural::tensor::Tensor;
///
/// let mut d = Dense::new(3, 2, 42);
/// let x = Tensor::ones(vec![4, 3]);
/// let y = d.forward(&x, false);
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a layer with He-uniform weights derived from `seed`.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        Dense {
            weight: Param::new(init::he_uniform(
                vec![in_features, out_features],
                in_features,
                &mut rng,
            )),
            bias: Param::new(Tensor::zeros(vec![1, out_features])),
            cached_input: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.shape()[0]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.shape()[1]
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.cached_input = Some(input.clone());
        input
            .matmul(&self.weight.value)
            .expect("dense input width must equal in_features")
            .add_row_broadcast(&self.bias.value)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input
            .matmul(&self.weight.value)
            .expect("dense input width must equal in_features")
            .add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.cached_input.as_ref().expect("backward before forward");
        let dw = input
            .transpose()
            .matmul(grad_out)
            .expect("shape checked in forward");
        self.weight.grad.add_assign(&dw);
        self.bias.grad.add_assign(&grad_out.sum_rows());
        grad_out
            .matmul(&self.weight.value.transpose())
            .expect("shape checked in forward")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Per row: a k×n multiply-add matmul row (2kn) plus the bias add (n).
        let rows = input.rows() as u64;
        let (k, n) = (self.in_features() as u64, self.out_features() as u64);
        WorkDelta::flops(rows * (2 * k + 1) * n)
            .with_bytes(stream_bytes(input, output))
            .with_items(rows)
    }
}

/// Applies an in-place scsimd slice kernel to a copy of `input`, on the
/// process-wide ISA (bit-identical on every backend).
fn vec_apply(input: &Tensor, op: fn(&mut [f32], scsimd::Isa)) -> Tensor {
    let mut out = input.clone();
    op(out.data_mut(), scsimd::Isa::active());
    out
}

/// Rectified linear activation.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
        vec_apply(input, scsimd::relu_f32)
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        vec_apply(input, scsimd::relu_f32)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.as_ref().expect("backward before forward");
        let data = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(grad_out.shape().to_vec(), data).expect("same length")
    }

    fn name(&self) -> &'static str {
        "Relu"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // One max per element.
        WorkDelta::flops(input.len() as u64)
            .with_bytes(stream_bytes(input, output))
            .with_items(input.shape().first().copied().unwrap_or(0) as u64)
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = vec_apply(input, scsimd::sigmoid_f32);
        self.output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        vec_apply(input, scsimd::sigmoid_f32)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward before forward");
        let deriv = out.map(|y| y * (1.0 - y));
        grad_out.mul(&deriv).expect("same shape")
    }

    fn name(&self) -> &'static str {
        "Sigmoid"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // exp, add, divide, negate: four ops per element.
        WorkDelta::flops(4 * input.len() as u64)
            .with_bytes(stream_bytes(input, output))
            .with_items(input.shape().first().copied().unwrap_or(0) as u64)
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = vec_apply(input, scsimd::tanh_f32);
        self.output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        vec_apply(input, scsimd::tanh_f32)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let out = self.output.as_ref().expect("backward before forward");
        let deriv = out.map(|y| 1.0 - y * y);
        grad_out.mul(&deriv).expect("same shape")
    }

    fn name(&self) -> &'static str {
        "Tanh"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Counted like sigmoid: four ops per element.
        WorkDelta::flops(4 * input.len() as u64)
            .with_bytes(stream_bytes(input, output))
            .with_items(input.shape().first().copied().unwrap_or(0) as u64)
    }
}

/// Row-wise softmax as a standalone inference layer.
///
/// For training, prefer [`crate::loss::SoftmaxCrossEntropy`], which fuses the
/// softmax into the loss gradient; this layer's backward pass implements the
/// full Jacobian product and is provided for completeness.
#[derive(Debug, Default)]
pub struct Softmax {
    output: Option<Tensor>,
}

impl Softmax {
    /// Creates a softmax layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Softmax {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let out = softmax_rows(input);
        self.output = Some(out.clone());
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        softmax_rows(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.output.as_ref().expect("backward before forward");
        let (r, c) = (y.rows(), y.cols());
        let mut out = Tensor::zeros(vec![r, c]);
        for i in 0..r {
            // dx_j = y_j * (g_j - Σ_k g_k y_k)
            let dot: f32 = (0..c).map(|k| grad_out.at(i, k) * y.at(i, k)).sum();
            for j in 0..c {
                out.set(i, j, y.at(i, j) * (grad_out.at(i, j) - dot));
            }
        }
        out
    }

    fn name(&self) -> &'static str {
        "Softmax"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Per element: max scan, subtract+exp, sum, divide.
        WorkDelta::flops(4 * input.len() as u64)
            .with_bytes(stream_bytes(input, output))
            .with_items(input.rows() as u64)
    }
}

/// Flattens `[batch, ...]` input to `[batch, features]`, remembering the
/// original shape for the backward pass.
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape().to_vec();
        assert!(!shape.is_empty(), "flatten needs a batched input");
        let batch = shape[0];
        let features: usize = shape[1..].iter().product();
        self.input_shape = Some(shape);
        input
            .reshape(vec![batch, features])
            .expect("same element count")
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert!(!shape.is_empty(), "flatten needs a batched input");
        let batch = shape[0];
        let features: usize = shape[1..].iter().product();
        input
            .reshape(vec![batch, features])
            .expect("same element count")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.input_shape.clone().expect("backward before forward");
        grad_out.reshape(shape).expect("same element count")
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Pure reshape: data moves, nothing is computed.
        WorkDelta::bytes(stream_bytes(input, output))
            .with_items(input.shape().first().copied().unwrap_or(0) as u64)
    }
}

/// Inverted dropout: at train time, zeroes each activation with probability
/// `p` and scales survivors by `1/(1-p)`; identity at inference.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: SeededRng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        Dropout {
            p,
            rng: SeededRng::new(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..input.len())
            .map(|_| {
                if self.rng.chance(self.p as f64) {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect();
        let data = input
            .data()
            .iter()
            .zip(&mask)
            .map(|(&x, &m)| x * m)
            .collect();
        self.mask = Some(mask);
        Tensor::from_vec(input.shape().to_vec(), data).expect("same length")
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        input.clone()
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                let data = grad_out
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Tensor::from_vec(grad_out.shape().to_vec(), data).expect("same length")
            }
        }
    }

    fn name(&self) -> &'static str {
        "Dropout"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Inference-mode dropout is the identity: a copy, no arithmetic.
        WorkDelta::bytes(stream_bytes(input, output))
            .with_items(input.shape().first().copied().unwrap_or(0) as u64)
    }
}

/// Batch normalization over the feature dimension of `[batch, features]`
/// input, with learned scale/shift and running statistics for inference.
#[derive(Debug)]
pub struct BatchNorm1d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    normalized: Tensor,
    std_inv: Vec<f32>,
}

impl BatchNorm1d {
    /// Creates a batch-norm layer over `features` features.
    pub fn new(features: usize) -> Self {
        BatchNorm1d {
            gamma: Param::new(Tensor::ones(vec![1, features])),
            beta: Param::new(Tensor::zeros(vec![1, features])),
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Inference-mode normalization with the running statistics; shared by
    /// `forward(_, false)` and `infer` so both produce identical bits.
    fn infer_out(&self, input: &Tensor) -> Tensor {
        let (n, d) = (input.rows(), input.cols());
        let mut out = Tensor::zeros(vec![n, d]);
        for i in 0..n {
            for j in 0..d {
                let xn = (input.at(i, j) - self.running_mean[j])
                    / (self.running_var[j] + self.eps).sqrt();
                out.set(
                    i,
                    j,
                    self.gamma.value.at(0, j) * xn + self.beta.value.at(0, j),
                );
            }
        }
        out
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let (n, d) = (input.rows(), input.cols());
        let mut out = Tensor::zeros(vec![n, d]);
        if train {
            let mut mean = vec![0.0f32; d];
            let mut var = vec![0.0f32; d];
            for j in 0..d {
                for i in 0..n {
                    mean[j] += input.at(i, j);
                }
                mean[j] /= n as f32;
            }
            for j in 0..d {
                for i in 0..n {
                    let diff = input.at(i, j) - mean[j];
                    var[j] += diff * diff;
                }
                var[j] /= n as f32;
            }
            let std_inv: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut normalized = Tensor::zeros(vec![n, d]);
            for i in 0..n {
                for j in 0..d {
                    let xn = (input.at(i, j) - mean[j]) * std_inv[j];
                    normalized.set(i, j, xn);
                    out.set(
                        i,
                        j,
                        self.gamma.value.at(0, j) * xn + self.beta.value.at(0, j),
                    );
                }
            }
            for j in 0..d {
                self.running_mean[j] =
                    (1.0 - self.momentum) * self.running_mean[j] + self.momentum * mean[j];
                self.running_var[j] =
                    (1.0 - self.momentum) * self.running_var[j] + self.momentum * var[j];
            }
            self.cache = Some(BnCache {
                normalized,
                std_inv,
            });
        } else {
            out = self.infer_out(input);
            self.cache = None;
        }
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.infer_out(input)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("backward requires a training forward pass");
        let (n, d) = (grad_out.rows(), grad_out.cols());
        let nf = n as f32;
        let mut grad_in = Tensor::zeros(vec![n, d]);
        for j in 0..d {
            let gamma = self.gamma.value.at(0, j);
            let mut sum_g = 0.0;
            let mut sum_gx = 0.0;
            for i in 0..n {
                let g = grad_out.at(i, j);
                sum_g += g;
                sum_gx += g * cache.normalized.at(i, j);
            }
            self.gamma.grad.data_mut()[j] += sum_gx;
            self.beta.grad.data_mut()[j] += sum_g;
            for i in 0..n {
                let g = grad_out.at(i, j);
                let xn = cache.normalized.at(i, j);
                let dx = gamma * cache.std_inv[j] / nf * (nf * g - sum_g - xn * sum_gx);
                grad_in.set(i, j, dx);
            }
        }
        grad_in
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn name(&self) -> &'static str {
        "BatchNorm1d"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Per element: subtract mean, sqrt(var+eps), divide, scale, shift.
        WorkDelta::flops(5 * input.len() as u64)
            .with_bytes(stream_bytes(input, output))
            .with_items(input.rows() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a dense layer.
    #[test]
    fn dense_gradient_check() {
        let mut layer = Dense::new(3, 2, 7);
        let x = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.8, 1.0, 0.3, -0.7]).unwrap();
        // Loss = sum(output); dL/dy = ones.
        let y = layer.forward(&x, true);
        let grad_out = Tensor::ones(y.shape().to_vec());
        let grad_in = layer.backward(&grad_out);

        // Numerical dL/dx.
        let eps = 1e-3;
        for idx in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let mut l2 = Dense::new(3, 2, 7);
            let fp = l2.forward(&xp, true).sum();
            let fm = l2.forward(&xm, true).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grad_in.data()[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "idx {idx}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn dense_weight_gradient_check() {
        let x = Tensor::from_vec(vec![2, 3], vec![0.5, -0.2, 0.8, 1.0, 0.3, -0.7]).unwrap();
        let mut layer = Dense::new(3, 2, 9);
        let y = layer.forward(&x, true);
        layer.backward(&Tensor::ones(y.shape().to_vec()));
        let analytic = layer.params()[0].grad.clone();

        let eps = 1e-3;
        let n_w = analytic.len();
        for idx in 0..n_w {
            let mut lp = Dense::new(3, 2, 9);
            lp.params_mut()[0].value.data_mut()[idx] += eps;
            let fp = lp.forward(&x, true).sum();
            let mut lm = Dense::new(3, 2, 9);
            lm.params_mut()[0].value.data_mut()[idx] -= eps;
            let fm = lm.forward(&x, true).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 1e-2,
                "w[{idx}]: numeric {num} vs analytic {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn relu_masks_negative() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![1, 4], vec![-1., 2., -3., 4.]).unwrap();
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0., 2., 0., 4.]);
        let g = r.backward(&Tensor::ones(vec![1, 4]));
        assert_eq!(g.data(), &[0., 1., 0., 1.]);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![1, 3], vec![-10., 0., 10.]).unwrap();
        let y = s.forward(&x, true);
        assert!(y.at(0, 0) < 0.001 && (y.at(0, 1) - 0.5).abs() < 1e-6 && y.at(0, 2) > 0.999);
        let g = s.backward(&Tensor::ones(vec![1, 3]));
        // Max derivative at 0 is 0.25.
        assert!((g.at(0, 1) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![1, 2], vec![0.3, -0.9]).unwrap();
        t.forward(&x, true);
        let g = t.backward(&Tensor::ones(vec![1, 2]));
        for idx in 0..2 {
            let eps = 1e-3;
            let num = ((x.data()[idx] + eps).tanh() - (x.data()[idx] - eps).tanh()) / (2.0 * eps);
            assert!((g.data()[idx] - num).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_layer_backward_matches_jacobian() {
        let mut s = Softmax::new();
        let x = Tensor::from_vec(vec![1, 3], vec![0.2, -0.1, 0.5]).unwrap();
        s.forward(&x, true);
        let grad_out = Tensor::from_vec(vec![1, 3], vec![1.0, 0.0, 0.0]).unwrap();
        let g = s.backward(&grad_out);
        // Numerical check on first logit component.
        let eps = 1e-3;
        for idx in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fp = softmax_rows(&xp).at(0, 0);
            let fm = softmax_rows(&xm).at(0, 0);
            let num = (fp - fm) / (2.0 * eps);
            assert!((g.data()[idx] - num).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 4, 4]);
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 48]);
        let g = f.backward(&Tensor::ones(vec![2, 48]));
        assert_eq!(g.shape(), &[2, 3, 4, 4]);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(vec![4, 4]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_train_preserves_expectation() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(vec![100, 100]);
        let y = d.forward(&x, true);
        // E[y] = 1; tolerate sampling noise.
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
        // Some elements dropped, survivors scaled to 2.
        assert!(y.data().contains(&0.0));
        assert!(y.data().iter().any(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::ones(vec![10, 10]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(vec![10, 10]));
        assert_eq!(y.data(), g.data(), "identical mask and scale");
    }

    #[test]
    fn batchnorm_normalizes_in_train() {
        let mut bn = BatchNorm1d::new(2);
        let x = Tensor::from_vec(vec![4, 2], vec![1., 10., 2., 20., 3., 30., 4., 40.]).unwrap();
        let y = bn.forward(&x, true);
        // Each column ~ zero mean, unit variance.
        for j in 0..2 {
            let col: Vec<f32> = (0..4).map(|i| y.at(i, j)).collect();
            let mean: f32 = col.iter().sum::<f32>() / 4.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn batchnorm_inference_uses_running_stats() {
        let mut bn = BatchNorm1d::new(1);
        let x = Tensor::from_vec(vec![4, 1], vec![1., 2., 3., 4.]).unwrap();
        for _ in 0..50 {
            bn.forward(&x, true);
        }
        let y = bn.forward(&x, false);
        // Running stats converge to batch stats, so output ≈ normalized input.
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn batchnorm_gradient_shapes() {
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        bn.forward(&x, true);
        let g = bn.backward(&Tensor::ones(vec![2, 3]));
        assert_eq!(g.shape(), &[2, 3]);
        assert_eq!(bn.params()[0].grad.shape(), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn relu_backward_requires_forward() {
        let mut r = Relu::new();
        let _ = r.backward(&Tensor::ones(vec![1, 1]));
    }
}
