//! Neural network layers with explicit forward/backward passes.

mod conv;
mod dense;

pub use conv::{AvgPool2d, Conv2d, GlobalAvgPool, MaxPool2d};
pub use dense::{BatchNorm1d, Dense, Dropout, Flatten, Relu, Sigmoid, Softmax, Tanh};

use sctelemetry::WorkDelta;

use crate::tensor::Tensor;

/// A trainable parameter: a value tensor and its accumulated gradient.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient of the loss with respect to `value`, filled by `backward`.
    pub grad: Tensor,
}

impl Param {
    /// Wraps an initial value with a zeroed gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().to_vec());
        Param { value, grad }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }
}

/// A differentiable layer.
///
/// Layers are stateful: `forward` caches whatever activations `backward`
/// needs, and `backward` must be called with the gradient of the loss with
/// respect to the layer's most recent output. Trainable layers expose their
/// parameters through [`Layer::params_mut`], which optimizers consume.
/// [`Layer::infer`] is the pure counterpart of `forward`: it computes the
/// same inference-mode output without touching any cached state, which is
/// what lets `scpar` run batch chunks through one shared network
/// concurrently (the trait is `Sync` for exactly that reason).
///
/// The trait is object-safe; networks are `Vec<Box<dyn Layer>>`.
pub trait Layer: std::fmt::Debug + Send + Sync {
    /// Computes the layer output for `input`. `train` enables training-only
    /// behaviour (dropout masks, batch-norm statistics updates).
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Inference-mode forward pass without mutation: numerically identical
    /// to `forward(input, false)` but caches nothing, so a shared `&self`
    /// can serve many batch chunks in parallel. Row-independent layers must
    /// produce bit-identical outputs for any row subset, which is what makes
    /// chunked batch inference byte-stable across thread counts.
    fn infer(&self, input: &Tensor) -> Tensor;

    /// Propagates `grad_out` (dL/d-output) backwards, accumulating parameter
    /// gradients and returning dL/d-input.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to trainable parameters (empty for stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to trainable parameters (empty for stateless layers).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// A short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Exact work model of one inference pass mapping `input` to `output`
    /// (the profiling cost attributed to kernel `neural/layer/<name>` by
    /// [`crate::net::Sequential`]).
    ///
    /// **Contract: the delta must be strictly linear in the batch row
    /// count, with no per-call constant term.** Chunked parallel inference
    /// ([`crate::net::Sequential::predict_ctx`]) runs `infer` once per
    /// fixed-size row chunk, so only row-linear models make the summed
    /// work independent of how the batch was split — which is what keeps
    /// `ProfileReport`s byte-identical across `SCPAR_THREADS`.
    ///
    /// The default charges two FLOPs per trainable parameter per row (one
    /// multiply-add each) plus one FLOP per output element, and counts the
    /// input/output streams as bytes moved. Layers with cheaper or more
    /// expensive structure override it with their exact formula.
    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        let rows = input.shape().first().copied().unwrap_or(0) as u64;
        let params: u64 = self.params().iter().map(|p| p.value.len() as u64).sum();
        WorkDelta::flops(rows * 2 * params + output.len() as u64)
            .with_bytes(4 * (input.len() + output.len()) as u64)
            .with_items(rows)
    }
}

/// Row-wise numerically stable softmax (helper shared by the loss and the
/// early-exit confidence policies), vectorized via
/// [`scsimd::softmax_rows_f32`] on the process-wide ISA. Bit-identical on
/// every backend: the normalizing sum is element-ordered everywhere.
///
/// # Panics
///
/// Panics if `logits` is not 2-D.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let c = logits.cols(); // asserts 2-D
    let mut out = logits.clone();
    scsimd::softmax_rows_f32(out.data_mut(), c, scsimd::Isa::active());
    out
}

/// Shannon entropy (nats) of each row of a probability tensor.
///
/// # Panics
///
/// Panics if `probs` is not 2-D.
pub fn entropy_rows(probs: &Tensor) -> Vec<f32> {
    let (r, c) = (probs.rows(), probs.cols());
    (0..r)
        .map(|i| {
            let mut h = 0.0;
            for j in 0..c {
                let p = probs.at(i, j);
                if p > 1e-12 {
                    h -= p * p.ln();
                }
            }
            h
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]).unwrap();
        let s = softmax_rows(&t);
        for i in 0..2 {
            let sum: f32 = (0..3).map(|j| s.at(i, j)).sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let t = Tensor::from_vec(vec![1, 2], vec![1000.0, 0.0]).unwrap();
        let s = softmax_rows(&t);
        assert!((s.at(0, 0) - 1.0).abs() < 1e-6);
        assert!(s.data().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn entropy_extremes() {
        let certain = Tensor::from_vec(vec![1, 4], vec![1.0, 0.0, 0.0, 0.0]).unwrap();
        assert!(entropy_rows(&certain)[0] < 1e-6);
        let uniform = Tensor::from_vec(vec![1, 4], vec![0.25; 4]).unwrap();
        assert!((entropy_rows(&uniform)[0] - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::ones(vec![2, 2]));
        p.grad = Tensor::ones(vec![2, 2]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
