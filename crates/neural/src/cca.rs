//! Canonical correlation analysis (paper §III-C).
//!
//! The paper lists CCA as its second multi-modal analysis: finding pairs of
//! linear projections of two views that are maximally correlated. Implemented
//! classically via whitening + eigendecomposition:
//! `T = Σxx^{-1/2} Σxy Σyy^{-1/2}`, whose singular values are the canonical
//! correlations. Since [`crate::linalg`] ships a symmetric eigensolver, the
//! singular values of `T` are obtained from the eigenvalues of `T Tᵀ`.

use crate::linalg::{inv_sqrt_sym, jacobi_eigen, Mat};
use crate::tensor::Tensor;

/// A fitted CCA model.
#[derive(Debug, Clone)]
pub struct Cca {
    correlations: Vec<f64>,
    wx: Mat,
    wy: Mat,
    mean_x: Vec<f64>,
    mean_y: Vec<f64>,
}

/// Errors from CCA fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcaError {
    /// Fewer than two samples, or views with different sample counts.
    BadInput(String),
}

impl std::fmt::Display for CcaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CcaError::BadInput(msg) => write!(f, "invalid CCA input: {msg}"),
        }
    }
}

impl std::error::Error for CcaError {}

fn center(x: &Tensor) -> (Mat, Vec<f64>) {
    let (n, d) = (x.rows(), x.cols());
    let mut mean = vec![0.0f64; d];
    for i in 0..n {
        for j in 0..d {
            mean[j] += x.at(i, j) as f64;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let mut out = Mat::zeros(n, d);
    for i in 0..n {
        for j in 0..d {
            out[(i, j)] = x.at(i, j) as f64 - mean[j];
        }
    }
    (out, mean)
}

impl Cca {
    /// Fits CCA on two views (`[n, dx]` and `[n, dy]`) with ridge
    /// regularization `reg` on the auto-covariances, keeping `components`
    /// canonical pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CcaError::BadInput`] if the views disagree on `n`, have
    /// fewer than 2 samples, or `components` exceeds `min(dx, dy)`.
    pub fn fit(x: &Tensor, y: &Tensor, components: usize, reg: f64) -> Result<Cca, CcaError> {
        let n = x.rows();
        if y.rows() != n {
            return Err(CcaError::BadInput(format!(
                "views have {n} and {} samples",
                y.rows()
            )));
        }
        if n < 2 {
            return Err(CcaError::BadInput("need at least 2 samples".into()));
        }
        let (dx, dy) = (x.cols(), y.cols());
        if components == 0 || components > dx.min(dy) {
            return Err(CcaError::BadInput(format!(
                "components {components} out of range for dims {dx}x{dy}"
            )));
        }

        let (xc, mean_x) = center(x);
        let (yc, mean_y) = center(y);
        let scale = 1.0 / (n as f64 - 1.0);
        let sxx = xc.transpose().matmul(&xc).scale(scale).add_ridge(reg);
        let syy = yc.transpose().matmul(&yc).scale(scale).add_ridge(reg);
        let sxy = xc.transpose().matmul(&yc).scale(scale);

        let sxx_inv_sqrt = inv_sqrt_sym(&sxx, 1e-10);
        let syy_inv_sqrt = inv_sqrt_sym(&syy, 1e-10);
        let t = sxx_inv_sqrt.matmul(&sxy).matmul(&syy_inv_sqrt); // dx × dy

        // Singular values/vectors of T via the symmetric T Tᵀ (dx × dx).
        let ttt = t.matmul(&t.transpose());
        let (eigvals, u) = jacobi_eigen(&ttt);
        let correlations: Vec<f64> = eigvals
            .iter()
            .take(components)
            .map(|&l| l.max(0.0).sqrt().min(1.0))
            .collect();

        // Left canonical directions in whitened space are columns of U; map
        // back: Wx = Sxx^{-1/2} U_k. Right: Wy = Syy^{-1/2} Tᵀ U_k / σ.
        let mut u_k = Mat::zeros(dx, components);
        for c in 0..components {
            for r in 0..dx {
                u_k[(r, c)] = u[(r, c)];
            }
        }
        let wx = sxx_inv_sqrt.matmul(&u_k);
        let mut v_k = t.transpose().matmul(&u_k); // dy × k
        for c in 0..components {
            let sigma = correlations[c].max(1e-10);
            for r in 0..dy {
                v_k[(r, c)] /= sigma;
            }
        }
        let wy = syy_inv_sqrt.matmul(&v_k);

        Ok(Cca {
            correlations,
            wx,
            wy,
            mean_x,
            mean_y,
        })
    }

    /// The canonical correlations, strongest first, each in `[0, 1]`.
    pub fn correlations(&self) -> &[f64] {
        &self.correlations
    }

    /// Number of canonical pairs kept.
    pub fn components(&self) -> usize {
        self.correlations.len()
    }

    /// Projects the X view onto the canonical directions: `[n, dx]` → `[n, k]`.
    pub fn transform_x(&self, x: &Tensor) -> Tensor {
        project(x, &self.mean_x, &self.wx)
    }

    /// Projects the Y view onto the canonical directions: `[n, dy]` → `[n, k]`.
    pub fn transform_y(&self, y: &Tensor) -> Tensor {
        project(y, &self.mean_y, &self.wy)
    }
}

fn project(x: &Tensor, mean: &[f64], w: &Mat) -> Tensor {
    let (n, d) = (x.rows(), x.cols());
    assert_eq!(d, w.rows(), "dimension mismatch with fitted model");
    let k = w.cols();
    let mut out = Tensor::zeros(vec![n, k]);
    for i in 0..n {
        for c in 0..k {
            let mut s = 0.0f64;
            for j in 0..d {
                s += (x.at(i, j) as f64 - mean[j]) * w[(j, c)];
            }
            out.set(i, c, s as f32);
        }
    }
    out
}

/// Pearson correlation between two equal-length slices (helper for tests and
/// experiments).
pub fn pearson(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must align");
    let n = a.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let ma = a.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb = b.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x as f64 - ma;
        let dy = y as f64 - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SeededRng;

    /// Two views sharing a latent signal in their first coordinate.
    fn correlated_views(n: usize, seed: u64, noise: f64) -> (Tensor, Tensor) {
        let mut rng = SeededRng::new(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let z = rng.next_gaussian();
            xs.push((z + rng.gaussian(0.0, noise)) as f32);
            xs.push(rng.next_gaussian() as f32);
            xs.push(rng.next_gaussian() as f32);
            ys.push((-z + rng.gaussian(0.0, noise)) as f32);
            ys.push(rng.next_gaussian() as f32);
        }
        (
            Tensor::from_vec(vec![n, 3], xs).unwrap(),
            Tensor::from_vec(vec![n, 2], ys).unwrap(),
        )
    }

    #[test]
    fn recovers_shared_signal() {
        let (x, y) = correlated_views(400, 1, 0.1);
        let cca = Cca::fit(&x, &y, 2, 1e-6).unwrap();
        assert!(
            cca.correlations()[0] > 0.9,
            "top correlation {}",
            cca.correlations()[0]
        );
        assert!(
            cca.correlations()[1] < 0.4,
            "second correlation {}",
            cca.correlations()[1]
        );
    }

    #[test]
    fn correlations_in_unit_interval_and_sorted() {
        let (x, y) = correlated_views(200, 2, 0.5);
        let cca = Cca::fit(&x, &y, 2, 1e-4).unwrap();
        let c = cca.correlations();
        assert!(c.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(c[0] >= c[1]);
    }

    #[test]
    fn projections_are_correlated() {
        let (x, y) = correlated_views(300, 3, 0.1);
        let cca = Cca::fit(&x, &y, 1, 1e-6).unwrap();
        let px = cca.transform_x(&x);
        let py = cca.transform_y(&y);
        let r = pearson(px.data(), py.data()).abs();
        assert!(r > 0.85, "projected correlation {r}");
    }

    #[test]
    fn independent_views_low_correlation() {
        let mut rng = SeededRng::new(4);
        let n = 300;
        let x = Tensor::from_vec(
            vec![n, 2],
            (0..n * 2).map(|_| rng.next_gaussian() as f32).collect(),
        )
        .unwrap();
        let y = Tensor::from_vec(
            vec![n, 2],
            (0..n * 2).map(|_| rng.next_gaussian() as f32).collect(),
        )
        .unwrap();
        let cca = Cca::fit(&x, &y, 1, 1e-4).unwrap();
        assert!(
            cca.correlations()[0] < 0.35,
            "got {}",
            cca.correlations()[0]
        );
    }

    #[test]
    fn rejects_mismatched_samples() {
        let x = Tensor::zeros(vec![5, 2]);
        let y = Tensor::zeros(vec![6, 2]);
        assert!(Cca::fit(&x, &y, 1, 1e-4).is_err());
    }

    #[test]
    fn rejects_too_many_components() {
        let x = Tensor::zeros(vec![5, 2]);
        let y = Tensor::zeros(vec![5, 3]);
        assert!(Cca::fit(&x, &y, 3, 1e-4).is_err());
    }

    #[test]
    fn pearson_perfect() {
        assert!((pearson(&[1., 2., 3.], &[2., 4., 6.]) - 1.0).abs() < 1e-9);
        assert!((pearson(&[1., 2., 3.], &[-1., -2., -3.]) + 1.0).abs() < 1e-9);
        assert_eq!(pearson(&[1., 1., 1.], &[1., 2., 3.]), 0.0);
    }
}
