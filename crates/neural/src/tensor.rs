//! A row-major, dynamically shaped `f32` tensor.

use std::fmt;

/// Work-accounting kernel name of [`Tensor::matmul_ctx`].
pub const KERNEL_MATMUL: &str = "neural/matmul";

/// Errors produced by tensor construction and shape operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Data length does not match the product of the requested shape.
    ShapeDataMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Actual number of elements supplied.
        len: usize,
    },
    /// Two tensors have incompatible shapes for the attempted operation.
    ShapeMismatch {
        /// Left-hand shape.
        left: Vec<usize>,
        /// Right-hand shape.
        right: Vec<usize>,
    },
    /// The requested reshape changes the element count.
    BadReshape {
        /// Current shape.
        from: Vec<usize>,
        /// Requested shape.
        to: Vec<usize>,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, len } => {
                write!(
                    f,
                    "shape {shape:?} requires {} elements, got {len}",
                    shape.iter().product::<usize>()
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "incompatible shapes {left:?} and {right:?}")
            }
            TensorError::BadReshape { from, to } => {
                write!(f, "cannot reshape {from:?} into {to:?}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major `f32` tensor with a dynamic shape.
///
/// Shapes follow the usual deep-learning conventions: 2-D activations are
/// `[batch, features]` and 4-D image activations are
/// `[batch, channels, height, width]`.
///
/// # Examples
///
/// ```
/// use scneural::tensor::Tensor;
///
/// let a = Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.])?;
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c.data(), a.data());
/// # Ok::<(), scneural::tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Output rows per panel in [`Tensor::matmul_ctx`]. Fixed by the input
    /// shape alone so parallel products are bit-identical for any thread
    /// count.
    pub const MATMUL_PANEL_ROWS: usize = 32;

    /// Creates a tensor from a shape and backing data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] if `data.len()` differs from
    /// the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor of zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones.
    pub fn ones(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![1.0; n],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// The `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(vec![n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the backing data (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing data (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its backing data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows, treating the tensor as 2-D `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn rows(&self) -> usize {
        assert_eq!(
            self.shape.len(),
            2,
            "rows() requires a 2-D tensor, got {:?}",
            self.shape
        );
        self.shape[0]
    }

    /// Number of columns, treating the tensor as 2-D `[rows, cols]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn cols(&self) -> usize {
        assert_eq!(
            self.shape.len(),
            2,
            "cols() requires a 2-D tensor, got {:?}",
            self.shape
        );
        self.shape[1]
    }

    /// Element at a 2-D position.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or not 2-D.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        let cols = self.cols();
        self.data[r * cols + c]
    }

    /// Sets the element at a 2-D position.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or not 2-D.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        let cols = self.cols();
        self.data[r * cols + c] = v;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::BadReshape`] if the element counts differ.
    pub fn reshape(&self, shape: Vec<usize>) -> Result<Tensor, TensorError> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(TensorError::BadReshape {
                from: self.shape.clone(),
                to: shape,
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Matrix multiplication of two 2-D tensors (serial, vectorized via
    /// the process-wide [`scsimd::Isa::active`] backend).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] unless `self` is `[m, k]` and
    /// `other` is `[k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_impl(
            other,
            &scpar::ScparConfig::serial(),
            scsimd::Isa::active(),
            Self::MATMUL_PANEL_ROWS,
        )
    }

    /// Matrix multiplication under an [`ExecCtx`](crate::exec::ExecCtx):
    /// row panels fanned out on the `scpar` pool, each panel computed by a
    /// vectorized scsimd kernel, with work attributed to [`KERNEL_MATMUL`]
    /// when the context's telemetry is enabled.
    ///
    /// The output rows are partitioned into row panels — by default
    /// [`Tensor::MATMUL_PANEL_ROWS`] tall, or the tuned `panel_rows` when
    /// the context's [`sctune::Tuner`] has a table entry for this shape.
    /// Either way the panel height is a function of the inputs and the
    /// table alone (never of runtime state), and the scsimd strict profile
    /// pins the per-element IEEE-754 operation sequence (ascending-`k`
    /// multiply-adds with zero-skip) on every backend — so the result is
    /// bit-identical to the serial scalar product for any
    /// `scpar::ScparConfig`, any ISA, **and any table entry**: a panel
    /// boundary never changes which multiply-adds a row performs, only
    /// which scpar task performs them.
    ///
    /// Work accounting matches the historical `matmul_rec` and stays
    /// pinned to the *nominal* [`Tensor::MATMUL_PANEL_ROWS`] panels even
    /// when execution runs tuned: per-panel deltas whose boundaries depend
    /// only on the input shape, nominal FLOPs (`2·rows·k·n` per panel)
    /// regardless of the zero-skip fast path, one `b`-row miss per panel
    /// plus a hit for each reuse. Recorded telemetry is therefore
    /// byte-identical whether tuning is on or off.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] under the same conditions as
    /// [`Tensor::matmul`].
    pub fn matmul_ctx(
        &self,
        other: &Tensor,
        ctx: &crate::exec::ExecCtx,
    ) -> Result<Tensor, TensorError> {
        let _activity = sctelemetry::ActivityScope::enter(KERNEL_MATMUL);
        let panel_rows = if self.shape.len() == 2 && other.shape.len() == 2 {
            ctx.tuner().matmul_f32_panel_rows(
                self.shape[0],
                self.shape[1],
                other.shape[1],
                ctx.par().threads(),
                ctx.isa().name(),
                Self::MATMUL_PANEL_ROWS,
            )
        } else {
            Self::MATMUL_PANEL_ROWS
        };
        let out = self.matmul_impl(other, ctx.par(), ctx.isa(), panel_rows)?;
        if ctx.telemetry().is_enabled() {
            let (m, k, n) = (
                self.shape[0] as u64,
                self.shape[1] as u64,
                other.shape[1] as u64,
            );
            let panel = Self::MATMUL_PANEL_ROWS as u64;
            let mut row = 0u64;
            while row < m {
                let rows = (m - row).min(panel);
                ctx.telemetry()
                    .work(KERNEL_MATMUL, Self::panel_work(rows, k, n));
                row += rows;
            }
        }
        Ok(out)
    }

    /// Deprecated alias for [`Tensor::matmul_ctx`] with telemetry disabled.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] under the same conditions as
    /// [`Tensor::matmul`].
    #[deprecated(since = "0.2.0", note = "use `matmul_ctx(other, &ExecCtx)` instead")]
    pub fn matmul_with(
        &self,
        other: &Tensor,
        cfg: &scpar::ScparConfig,
    ) -> Result<Tensor, TensorError> {
        self.matmul_ctx(other, &crate::exec::ExecCtx::serial().with_par(*cfg))
    }

    /// Deprecated alias for [`Tensor::matmul_ctx`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] under the same conditions as
    /// [`Tensor::matmul`].
    #[deprecated(since = "0.2.0", note = "use `matmul_ctx(other, &ExecCtx)` instead")]
    pub fn matmul_rec(
        &self,
        other: &Tensor,
        cfg: &scpar::ScparConfig,
        telemetry: &sctelemetry::TelemetryHandle,
    ) -> Result<Tensor, TensorError> {
        self.matmul_ctx(
            other,
            &crate::exec::ExecCtx::serial()
                .with_par(*cfg)
                .with_telemetry(telemetry.clone()),
        )
    }

    /// Shared implementation: shape checks, serial-vs-panel fan-out, and
    /// the scsimd kernel dispatch. `panel_rows` is the execution schedule
    /// only (each output row is an independent ascending-`k` dot-product
    /// sweep), so the result is bit-identical for every `cfg`/`isa` *and*
    /// every positive `panel_rows`.
    fn matmul_impl(
        &self,
        other: &Tensor,
        cfg: &scpar::ScparConfig,
        isa: scsimd::Isa,
        panel_rows: usize,
    ) -> Result<Tensor, TensorError> {
        if self.shape.len() != 2 || other.shape.len() != 2 || self.shape[1] != other.shape[0] {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let panel_rows = panel_rows.max(1);
        let (m, k, n) = (self.shape[0], self.shape[1], other.shape[1]);
        if !cfg.is_parallel() || m <= panel_rows || k == 0 {
            let mut out = vec![0.0f32; m * n];
            if k > 0 {
                scsimd::matmul_panel_f32(&self.data, &other.data, k, n, &mut out, isa);
            }
            return Ok(Tensor {
                shape: vec![m, n],
                data: out,
            });
        }
        let chunk_elems = panel_rows * k;
        let panels = scpar::par_map_chunks(cfg, &self.data, chunk_elems, |_ci, a_panel| {
            let rows = a_panel.len() / k;
            let mut out = vec![0.0f32; rows * n];
            scsimd::matmul_panel_f32(a_panel, &other.data, k, n, &mut out, isa);
            out
        });
        let mut data = Vec::with_capacity(m * n);
        for panel in panels {
            data.extend_from_slice(&panel);
        }
        Ok(Tensor {
            shape: vec![m, n],
            data,
        })
    }

    /// Work of one `rows × k` panel times a `k × n` matrix: nominal
    /// multiply-add FLOPs, streamed bytes (panel in, `b` once, panel out),
    /// and the panel-reuse cache model.
    fn panel_work(rows: u64, k: u64, n: u64) -> sctelemetry::WorkDelta {
        sctelemetry::WorkDelta::flops(2 * rows * k * n)
            .with_bytes(4 * (rows * k + k * n + rows * n))
            .with_cache(rows.saturating_sub(1) * k, k)
            .with_items(rows)
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor {
            shape: vec![c, r],
            data: out,
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                left: self.shape.clone(),
                right: other.shape.clone(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Multiplies every element by `s`, returning a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| x * s).collect(),
        }
    }

    /// Applies `f` element-wise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (r, c) = (self.rows(), self.cols());
        assert!(c > 0, "argmax over zero columns");
        (0..r)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Extracts row `i` of a 2-D tensor as a `[1, cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds or not 2-D.
    pub fn row(&self, i: usize) -> Tensor {
        let c = self.cols();
        Tensor {
            shape: vec![1, c],
            data: self.data[i * c..(i + 1) * c].to_vec(),
        }
    }

    /// Stacks 2-D tensors with identical column counts vertically.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if column counts differ.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn vstack(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        assert!(!parts.is_empty(), "vstack of zero tensors");
        let cols = parts[0].cols();
        let mut data = Vec::new();
        let mut rows = 0;
        for p in parts {
            if p.cols() != cols {
                return Err(TensorError::ShapeMismatch {
                    left: parts[0].shape.clone(),
                    right: p.shape.clone(),
                });
            }
            rows += p.rows();
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor {
            shape: vec![rows, cols],
            data,
        })
    }

    /// Concatenates 2-D tensors with identical row counts horizontally.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if row counts differ.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn hstack(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        assert!(!parts.is_empty(), "hstack of zero tensors");
        let rows = parts[0].rows();
        for p in parts {
            if p.rows() != rows {
                return Err(TensorError::ShapeMismatch {
                    left: parts[0].shape.clone(),
                    right: p.shape.clone(),
                });
            }
        }
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut data = Vec::with_capacity(rows * total_cols);
        for r in 0..rows {
            for p in parts {
                let c = p.cols();
                data.extend_from_slice(&p.data[r * c..(r + 1) * c]);
            }
        }
        Ok(Tensor {
            shape: vec![rows, total_cols],
            data,
        })
    }

    /// Splits a 2-D tensor horizontally at column `at`, returning
    /// `(left, right)`.
    ///
    /// # Panics
    ///
    /// Panics if `at > cols` or the tensor is not 2-D.
    pub fn hsplit(&self, at: usize) -> (Tensor, Tensor) {
        let (r, c) = (self.rows(), self.cols());
        assert!(at <= c, "split column {at} beyond {c}");
        let mut left = Vec::with_capacity(r * at);
        let mut right = Vec::with_capacity(r * (c - at));
        for i in 0..r {
            left.extend_from_slice(&self.data[i * c..i * c + at]);
            right.extend_from_slice(&self.data[i * c + at..(i + 1) * c]);
        }
        (
            Tensor {
                shape: vec![r, at],
                data: left,
            },
            Tensor {
                shape: vec![r, c - at],
                data: right,
            },
        )
    }

    /// Sums over rows, producing a `[1, cols]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn sum_rows(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0f32; c];
        for i in 0..r {
            for j in 0..c {
                out[j] += self.data[i * c + j];
            }
        }
        Tensor {
            shape: vec![1, c],
            data: out,
        }
    }

    /// Adds a `[1, cols]` bias row to every row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        assert_eq!(bias.shape(), &[1, c], "bias must be [1, {c}]");
        let mut data = self.data.clone();
        for i in 0..r {
            for j in 0..c {
                data[i * c + j] += bias.data[j];
            }
        }
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t22() -> Tensor {
        Tensor::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).unwrap()
    }

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![2, 3], vec![0.0; 5]).is_err());
        assert!(Tensor::from_vec(vec![2, 3], vec![0.0; 6]).is_ok());
    }

    #[test]
    fn matmul_identity() {
        let a = t22();
        let i = Tensor::eye(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_shape_error() {
        let a = t22();
        let b = Tensor::zeros(vec![3, 2]);
        assert!(matches!(
            a.matmul(&b),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), &[3, 2]);
        assert_eq!(a.transpose().at(0, 1), 4.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = t22();
        let b = Tensor::ones(vec![2, 2]);
        assert_eq!(a.add(&b).unwrap().data(), &[2., 3., 4., 5.]);
        assert_eq!(a.sub(&b).unwrap().data(), &[0., 1., 2., 3.]);
        assert_eq!(a.mul(&a).unwrap().data(), &[1., 4., 9., 16.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn reductions() {
        let a = t22();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_rows().data(), &[4., 6.]);
        assert_eq!(a.norm_sq(), 30.0);
    }

    #[test]
    fn argmax_rows_picks_max() {
        let a = Tensor::from_vec(vec![2, 3], vec![0.1, 0.9, 0.0, 5.0, -1.0, 2.0]).unwrap();
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = a.reshape(vec![3, 2]).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn stack_and_split() {
        let a = t22();
        let b = Tensor::zeros(vec![1, 2]);
        let v = Tensor::vstack(&[a.clone(), b]).unwrap();
        assert_eq!(v.shape(), &[3, 2]);

        let h = Tensor::hstack(&[a.clone(), a.clone()]).unwrap();
        assert_eq!(h.shape(), &[2, 4]);
        assert_eq!(h.data(), &[1., 2., 1., 2., 3., 4., 3., 4.]);

        let (l, r) = h.hsplit(2);
        assert_eq!(l, a);
        assert_eq!(r, a);
    }

    #[test]
    fn broadcast_bias() {
        let a = t22();
        let bias = Tensor::from_vec(vec![1, 2], vec![10., 20.]).unwrap();
        assert_eq!(a.add_row_broadcast(&bias).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn row_extraction() {
        let a = t22();
        assert_eq!(a.row(1).data(), &[3., 4.]);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", t22()).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(vec![0])).is_empty());
    }

    #[test]
    fn error_display() {
        let e = TensorError::BadReshape {
            from: vec![2],
            to: vec![3],
        };
        assert!(e.to_string().contains("reshape"));
    }
}
