//! Model parameter serialization.
//!
//! Saves and restores the trainable parameters of any [`Layer`] (typically a
//! [`crate::net::Sequential`]) to a compact little-endian byte format:
//!
//! ```text
//! magic "SCNN" | u32 param_count | per param: u32 rank, u32 dims..., f32 data...
//! ```
//!
//! The architecture itself is *not* stored — the caller rebuilds the same
//! network (same seeds/hyper-parameters) and loads weights into it, the same
//! model-deployment flow an edge device in the paper's hardware layer uses to
//! receive models trained on analysis servers.

use crate::layers::Layer;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"SCNN";

/// Errors from weight deserialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Not an `SCNN` blob or truncated header.
    BadMagic,
    /// Blob ended prematurely.
    Truncated,
    /// Blob parameter count/shape disagrees with the target network.
    ArchitectureMismatch(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::BadMagic => write!(f, "not a scneural weight blob"),
            LoadError::Truncated => write!(f, "weight blob is truncated"),
            LoadError::ArchitectureMismatch(m) => write!(f, "architecture mismatch: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Serializes all trainable parameters of `layer` into a byte vector.
pub fn save_params(layer: &dyn Layer) -> Vec<u8> {
    let params = layer.params();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        let shape = p.value.shape();
        out.extend_from_slice(&(shape.len() as u32).to_le_bytes());
        for &d in shape {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in p.value.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

/// Restores parameters saved by [`save_params`] into `layer`.
///
/// # Errors
///
/// Returns a [`LoadError`] if the blob is malformed or its shapes do not
/// match the target network's parameters in order.
pub fn load_params(layer: &mut dyn Layer, bytes: &[u8]) -> Result<(), LoadError> {
    let mut cursor = 0usize;
    let take = |cursor: &mut usize, n: usize| -> Result<&[u8], LoadError> {
        if *cursor + n > bytes.len() {
            return Err(LoadError::Truncated);
        }
        let s = &bytes[*cursor..*cursor + n];
        *cursor += n;
        Ok(s)
    };
    if take(&mut cursor, 4)? != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let count = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
    let mut params = layer.params_mut();
    if params.len() != count {
        return Err(LoadError::ArchitectureMismatch(format!(
            "blob has {count} params, network has {}",
            params.len()
        )));
    }
    for p in params.iter_mut() {
        let rank = u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(
                u32::from_le_bytes(take(&mut cursor, 4)?.try_into().expect("4 bytes")) as usize,
            );
        }
        if shape != p.value.shape() {
            return Err(LoadError::ArchitectureMismatch(format!(
                "expected shape {:?}, blob has {shape:?}",
                p.value.shape()
            )));
        }
        let n: usize = shape.iter().product();
        let raw = take(&mut cursor, n * 4)?;
        let data: Vec<f32> = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        p.value = Tensor::from_vec(shape, data).expect("length matches product");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::net::Sequential;
    use crate::tensor::Tensor;

    fn net(seed: u64) -> Sequential {
        Sequential::new()
            .with(Dense::new(3, 5, seed))
            .with(Relu::new())
            .with(Dense::new(5, 2, seed + 1))
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let mut original = net(1);
        let x = Tensor::ones(vec![2, 3]);
        let expected = original.predict(&x);

        let blob = save_params(&original);
        let mut restored = net(99); // different init
        assert_ne!(restored.predict(&x), expected);
        load_params(&mut restored, &blob).unwrap();
        assert_eq!(restored.predict(&x), expected);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut n = net(1);
        assert_eq!(load_params(&mut n, b"XXXX0000"), Err(LoadError::BadMagic));
    }

    #[test]
    fn rejects_truncated() {
        let original = net(2);
        let blob = save_params(&original);
        let mut n = net(2);
        assert_eq!(
            load_params(&mut n, &blob[..blob.len() - 3]),
            Err(LoadError::Truncated)
        );
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let blob = save_params(&net(3));
        let mut other = Sequential::new().with(Dense::new(3, 4, 0));
        assert!(matches!(
            load_params(&mut other, &blob),
            Err(LoadError::ArchitectureMismatch(_))
        ));
    }

    #[test]
    fn rejects_shape_mismatch() {
        let blob = save_params(&net(4));
        // Same param count (4), different shapes.
        let mut other = Sequential::new()
            .with(Dense::new(5, 3, 0))
            .with(Dense::new(3, 2, 1));
        assert!(matches!(
            load_params(&mut other, &blob),
            Err(LoadError::ArchitectureMismatch(_))
        ));
    }

    #[test]
    fn blob_size_is_deterministic() {
        assert_eq!(save_params(&net(5)).len(), save_params(&net(6)).len());
    }
}
