//! Loss functions.

use crate::layers::softmax_rows;
use crate::tensor::Tensor;

/// A differentiable loss over `[batch, k]` predictions.
pub trait Loss: std::fmt::Debug {
    /// Mean loss over the batch and the gradient with respect to the
    /// predictions (already divided by the batch size).
    fn forward(&mut self, predictions: &Tensor, targets: &LossTarget<'_>) -> (f32, Tensor);
}

/// Targets accepted by [`Loss`] implementations.
#[derive(Debug)]
pub enum LossTarget<'a> {
    /// Class indices for classification losses.
    Classes(&'a [usize]),
    /// Dense regression targets with the same shape as the predictions.
    Values(&'a Tensor),
}

/// Softmax + cross-entropy, fused for a numerically stable gradient
/// (`softmax(x) - onehot(y)`).
///
/// # Examples
///
/// ```
/// use scneural::loss::{Loss, LossTarget, SoftmaxCrossEntropy};
/// use scneural::tensor::Tensor;
///
/// let mut loss = SoftmaxCrossEntropy::new();
/// let logits = Tensor::from_vec(vec![1, 2], vec![10.0, -10.0]).unwrap();
/// let (l, _) = loss.forward(&logits, &LossTarget::Classes(&[0]));
/// assert!(l < 1e-3, "confident correct prediction has near-zero loss");
/// ```
#[derive(Debug, Default)]
pub struct SoftmaxCrossEntropy(());

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Loss for SoftmaxCrossEntropy {
    fn forward(&mut self, predictions: &Tensor, targets: &LossTarget<'_>) -> (f32, Tensor) {
        let LossTarget::Classes(classes) = targets else {
            panic!("SoftmaxCrossEntropy requires class targets");
        };
        let (n, k) = (predictions.rows(), predictions.cols());
        assert_eq!(classes.len(), n, "one class per row");
        let probs = softmax_rows(predictions);
        let mut loss = 0.0;
        let mut grad = probs.clone();
        for (i, &c) in classes.iter().enumerate() {
            assert!(c < k, "class {c} out of range for {k} logits");
            loss -= probs.at(i, c).max(1e-12).ln();
            grad.set(i, c, grad.at(i, c) - 1.0);
        }
        (loss / n as f32, grad.scale(1.0 / n as f32))
    }
}

/// Mean squared error: `mean((pred - target)^2)`.
#[derive(Debug, Default)]
pub struct MeanSquaredError(());

impl MeanSquaredError {
    /// Creates the loss.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Loss for MeanSquaredError {
    fn forward(&mut self, predictions: &Tensor, targets: &LossTarget<'_>) -> (f32, Tensor) {
        let LossTarget::Values(target) = targets else {
            panic!("MeanSquaredError requires value targets");
        };
        let diff = predictions
            .sub(target)
            .expect("prediction/target shape mismatch");
        let n = predictions.len() as f32;
        let loss = diff.norm_sq() / n;
        (loss, diff.scale(2.0 / n))
    }
}

/// Binary cross-entropy over sigmoid probabilities in `(0, 1)`.
#[derive(Debug, Default)]
pub struct BinaryCrossEntropy(());

impl BinaryCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Loss for BinaryCrossEntropy {
    fn forward(&mut self, predictions: &Tensor, targets: &LossTarget<'_>) -> (f32, Tensor) {
        let LossTarget::Values(target) = targets else {
            panic!("BinaryCrossEntropy requires value targets");
        };
        assert_eq!(predictions.shape(), target.shape(), "shape mismatch");
        let n = predictions.len() as f32;
        let mut loss = 0.0;
        let mut grad = Tensor::zeros(predictions.shape().to_vec());
        for (idx, (&p, &t)) in predictions.data().iter().zip(target.data()).enumerate() {
            let p = p.clamp(1e-6, 1.0 - 1e-6);
            loss -= t * p.ln() + (1.0 - t) * (1.0 - p).ln();
            grad.data_mut()[idx] = (p - t) / (p * (1.0 - p)) / n;
        }
        (loss / n, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        let mut loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::zeros(vec![2, 4]);
        let (l, g) = loss.forward(&logits, &LossTarget::Classes(&[0, 3]));
        assert!((l - 4.0f32.ln()).abs() < 1e-5);
        // Gradient sums to zero per row.
        for i in 0..2 {
            let s: f32 = (0..4).map(|j| g.at(i, j)).sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_gradient_check() {
        let mut loss = SoftmaxCrossEntropy::new();
        let logits = Tensor::from_vec(vec![2, 3], vec![0.5, -0.3, 0.1, 1.0, 0.2, -0.8]).unwrap();
        let classes = [2usize, 0];
        let (_, grad) = loss.forward(&logits, &LossTarget::Classes(&classes));
        let eps = 1e-3;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (fp, _) = loss.forward(&lp, &LossTarget::Classes(&classes));
            let (fm, _) = loss.forward(&lm, &LossTarget::Classes(&classes));
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[idx]).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn mse_known_value() {
        let mut loss = MeanSquaredError::new();
        let pred = Tensor::from_vec(vec![1, 2], vec![1.0, 3.0]).unwrap();
        let target = Tensor::from_vec(vec![1, 2], vec![0.0, 1.0]).unwrap();
        let (l, g) = loss.forward(&pred, &LossTarget::Values(&target));
        assert!((l - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(g.data(), &[1.0, 2.0]); // 2/n * diff
    }

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let mut loss = BinaryCrossEntropy::new();
        let pred = Tensor::from_vec(vec![1, 2], vec![0.9999, 0.0001]).unwrap();
        let target = Tensor::from_vec(vec![1, 2], vec![1.0, 0.0]).unwrap();
        let (l, _) = loss.forward(&pred, &LossTarget::Values(&target));
        assert!(l < 1e-3);
    }

    #[test]
    fn bce_gradient_direction() {
        let mut loss = BinaryCrossEntropy::new();
        let pred = Tensor::from_vec(vec![1, 1], vec![0.3]).unwrap();
        let target = Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap();
        let (_, g) = loss.forward(&pred, &LossTarget::Values(&target));
        assert!(g.data()[0] < 0.0, "should push prediction up");
    }

    #[test]
    #[should_panic(expected = "class targets")]
    fn cross_entropy_rejects_value_targets() {
        let mut loss = SoftmaxCrossEntropy::new();
        let t = Tensor::zeros(vec![1, 2]);
        let _ = loss.forward(&t.clone(), &LossTarget::Values(&t));
    }
}
