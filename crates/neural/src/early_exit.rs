//! Early-exit (device/server split) inference — the architecture of Figs. 5
//! and 7.
//!
//! The paper splits a model between a local device (edge/fog node) and an
//! analysis server: a *front* backbone and a cheap *exit head* run locally;
//! if the exit head's prediction is not confident enough, the feature map
//! "obtained before the branch is sent to the analysis server in which it
//! goes through the remaining ... layers". [`EarlyExitNet`] reproduces that
//! shape for any backbone, with both the confidence policy of Fig. 5 and the
//! entropy policy of Fig. 7.

use scpar::ScparConfig;
use sctelemetry::TelemetryHandle;

use crate::layers::{entropy_rows, softmax_rows, Layer};
use crate::loss::{Loss, LossTarget};
use crate::net::Sequential;
use crate::optim::Optimizer;
use crate::tensor::Tensor;

/// Metric name of the locally-answered samples counter.
pub const METRIC_LOCAL_EXITS: &str = "scneural_early_exit_local_total";
/// Metric name of the server-escalated samples counter.
pub const METRIC_OFFLOADS: &str = "scneural_early_exit_offload_total";
/// Metric name of the feature-map bytes shipped upstream.
pub const METRIC_OFFLOAD_BYTES: &str = "scneural_early_exit_offload_bytes_total";
/// Metric name of the per-batch local take-rate histogram (exact).
pub const METRIC_TAKE_RATE: &str = "scneural_early_exit_take_rate_ratio";

/// Work-accounting kernel of the locally-answered branch.
pub const KERNEL_LOCAL_BRANCH: &str = "neural/early_exit/local";
/// Work-accounting kernel of the server-escalated branch.
pub const KERNEL_OFFLOAD_BRANCH: &str = "neural/early_exit/offload";

/// When to accept the local exit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExitPolicy {
    /// Exit locally when the top class probability is at least this value
    /// (Fig. 5: "if the score of the classification is higher than a
    /// predefined threshold").
    Confidence(f32),
    /// Exit locally when the prediction entropy (nats) is at most this value
    /// (Fig. 7 uses an entropy score on Output 1).
    Entropy(f32),
}

/// Where a sample's final prediction was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitPoint {
    /// Accepted at the local (device) exit head.
    Local,
    /// Escalated to the analysis server's full network.
    Server,
}

/// Per-sample outcome of an early-exit inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ExitDecision {
    /// Which path produced the prediction.
    pub exit: ExitPoint,
    /// Predicted class.
    pub class: usize,
    /// Top-class probability of the accepted prediction.
    pub confidence: f32,
    /// Entropy (nats) of the *local* head's distribution (the quantity the
    /// policy inspected).
    pub local_entropy: f32,
    /// Bytes of feature map that were (or would have been) shipped upstream;
    /// zero for local exits.
    pub feature_bytes: usize,
}

/// A network split into a locally executed front + exit head and a
/// server-side remainder + final head.
///
/// # Examples
///
/// ```
/// use scneural::early_exit::{EarlyExitNet, ExitPolicy, ExitPoint};
/// use scneural::layers::{Dense, Relu};
/// use scneural::net::Sequential;
/// use scneural::tensor::Tensor;
///
/// let net = EarlyExitNet::new(
///     Sequential::new().with(Dense::new(4, 8, 0)).with(Relu::new()),
///     Sequential::new().with(Dense::new(8, 3, 1)),
///     Sequential::new().with(Dense::new(8, 8, 2)).with(Relu::new()),
///     Sequential::new().with(Dense::new(8, 3, 3)),
///     ExitPolicy::Confidence(0.99),
/// );
/// let mut net = net;
/// let decisions = net.infer(&Tensor::ones(vec![2, 4]));
/// assert_eq!(decisions.len(), 2);
/// ```
#[derive(Debug)]
pub struct EarlyExitNet {
    front: Sequential,
    exit_head: Sequential,
    rest: Sequential,
    final_head: Sequential,
    policy: ExitPolicy,
    telemetry: TelemetryHandle,
}

/// Extracts the rows (batch entries) at `indices` from a batched tensor of
/// any rank (axis 0 is the batch).
fn select_batch(t: &Tensor, indices: &[usize]) -> Tensor {
    let shape = t.shape();
    let per: usize = shape[1..].iter().product();
    let mut data = Vec::with_capacity(indices.len() * per);
    for &i in indices {
        data.extend_from_slice(&t.data()[i * per..(i + 1) * per]);
    }
    let mut new_shape = shape.to_vec();
    new_shape[0] = indices.len();
    Tensor::from_vec(new_shape, data).expect("size computed above")
}

impl EarlyExitNet {
    /// Assembles a split network. `front` feeds both `exit_head` (local
    /// prediction) and `rest` → `final_head` (server prediction).
    pub fn new(
        front: Sequential,
        exit_head: Sequential,
        rest: Sequential,
        final_head: Sequential,
        policy: ExitPolicy,
    ) -> Self {
        EarlyExitNet {
            front,
            exit_head,
            rest,
            final_head,
            policy,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches telemetry: [`EarlyExitNet::infer`] counts local exits and
    /// offloads ([`METRIC_LOCAL_EXITS`], [`METRIC_OFFLOADS`]), accumulates
    /// shipped feature bytes ([`METRIC_OFFLOAD_BYTES`]), and observes the
    /// per-batch local take-rate into [`METRIC_TAKE_RATE`].
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the exit policy (e.g. for a threshold sweep).
    pub fn set_policy(&mut self, policy: ExitPolicy) {
        self.policy = policy;
    }

    /// The current exit policy.
    pub fn policy(&self) -> ExitPolicy {
        self.policy
    }

    /// Total trainable parameters in the local part (front + exit head) —
    /// what must fit on the edge/fog device.
    pub fn local_param_count(&self) -> usize {
        self.front.param_count() + self.exit_head.param_count()
    }

    /// Total trainable parameters in the server part.
    pub fn server_param_count(&self) -> usize {
        self.rest.param_count() + self.final_head.param_count()
    }

    fn policy_accepts(&self, confidence: f32, entropy: f32) -> bool {
        match self.policy {
            ExitPolicy::Confidence(min) => confidence >= min,
            ExitPolicy::Entropy(max) => entropy <= max,
        }
    }

    /// Runs split inference on a batch, deciding per sample whether the local
    /// exit suffices or the feature map must go upstream.
    ///
    /// Equivalent to [`EarlyExitNet::infer_ctx`] on a single thread; kept
    /// on `&mut self` for backwards compatibility.
    pub fn infer(&mut self, input: &Tensor) -> Vec<ExitDecision> {
        self.infer_ctx(input, &crate::exec::ExecCtx::serial())
    }

    /// Deprecated alias for [`EarlyExitNet::infer_ctx`].
    #[deprecated(since = "0.2.0", note = "use `infer_ctx(input, &ExecCtx)` instead")]
    pub fn infer_with(&self, input: &Tensor, cfg: &ScparConfig) -> Vec<ExitDecision> {
        self.infer_ctx(input, &crate::exec::ExecCtx::serial().with_par(*cfg))
    }

    /// Runs split inference under an [`ExecCtx`](crate::exec::ExecCtx),
    /// with batch chunks fanned out on the `scpar` worker pool.
    ///
    /// Both backbone passes go through [`Sequential::predict_ctx`], whose
    /// fixed row-chunking makes every per-sample probability — and therefore
    /// every exit decision — bit-identical to the serial path. Telemetry is
    /// aggregated once over the whole batch (counts and the exact take-rate
    /// observation), so recorded snapshots are also byte-identical for any
    /// thread count.
    pub fn infer_ctx(&self, input: &Tensor, ctx: &crate::exec::ExecCtx) -> Vec<ExitDecision> {
        let features = self.front.predict_ctx(input, ctx);
        let local_probs = softmax_rows(&self.exit_head.predict_ctx(&features, ctx));
        let entropies = entropy_rows(&local_probs);
        let n = input.shape()[0];
        let per_sample_bytes = features.len() / n * std::mem::size_of::<f32>();

        let mut escalate: Vec<usize> = Vec::new();
        let mut decisions: Vec<Option<ExitDecision>> = Vec::with_capacity(n);
        let local_classes = local_probs.argmax_rows();
        for i in 0..n {
            let conf = local_probs.at(i, local_classes[i]);
            if self.policy_accepts(conf, entropies[i]) {
                decisions.push(Some(ExitDecision {
                    exit: ExitPoint::Local,
                    class: local_classes[i],
                    confidence: conf,
                    local_entropy: entropies[i],
                    feature_bytes: 0,
                }));
            } else {
                decisions.push(None);
                escalate.push(i);
            }
        }

        if !escalate.is_empty() {
            let sub = select_batch(&features, &escalate);
            let server_logits = {
                let deep = self.rest.predict_ctx(&sub, ctx);
                self.final_head.predict_ctx(&deep, ctx)
            };
            let server_probs = softmax_rows(&server_logits);
            let server_classes = server_probs.argmax_rows();
            for (slot, &orig) in escalate.iter().enumerate() {
                decisions[orig] = Some(ExitDecision {
                    exit: ExitPoint::Server,
                    class: server_classes[slot],
                    confidence: server_probs.at(slot, server_classes[slot]),
                    local_entropy: entropies[orig],
                    feature_bytes: per_sample_bytes,
                });
            }
        }

        if self.telemetry.is_enabled() && n > 0 {
            let offloaded = escalate.len();
            let local = n - offloaded;
            // Branch work: every sample pays the local part (front + exit
            // head, two flops per parameter per sample); escalated samples
            // additionally pay the server part and ship their feature map.
            // Decisions are bit-identical across thread counts, so these
            // deltas are too.
            self.telemetry.work(
                KERNEL_LOCAL_BRANCH,
                sctelemetry::WorkDelta::flops(2 * self.local_param_count() as u64 * n as u64)
                    .with_items(n as u64),
            );
            self.telemetry.work(
                KERNEL_OFFLOAD_BRANCH,
                sctelemetry::WorkDelta::flops(
                    2 * self.server_param_count() as u64 * offloaded as u64,
                )
                .with_bytes((offloaded * per_sample_bytes) as u64)
                .with_items(offloaded as u64),
            );
            self.telemetry.counter_add(
                METRIC_LOCAL_EXITS,
                "samples answered at the local exit head",
                local as u64,
            );
            self.telemetry.counter_add(
                METRIC_OFFLOADS,
                "samples escalated to the analysis server",
                offloaded as u64,
            );
            self.telemetry.counter_add(
                METRIC_OFFLOAD_BYTES,
                "feature-map bytes shipped to the analysis server",
                (offloaded * per_sample_bytes) as u64,
            );
            self.telemetry.observe_exact(
                METRIC_TAKE_RATE,
                "fraction of a batch answered locally",
                local as f64 / n as f64,
            );
        }
        decisions
            .into_iter()
            .map(|d| d.expect("every sample decided"))
            .collect()
    }

    /// Jointly trains both exits: `loss = w_local * L(exit) + w_server *
    /// L(final)`. Returns `(local_loss, server_loss)`.
    pub fn train_step(
        &mut self,
        input: &Tensor,
        classes: &[usize],
        loss: &mut dyn Loss,
        optimizer: &mut dyn Optimizer,
        local_weight: f32,
    ) -> (f32, f32) {
        let features = self.front.forward(input, true);

        let local_logits = self.exit_head.forward(&features, true);
        let (l_local, g_local) = loss.forward(&local_logits, &LossTarget::Classes(classes));

        let deep = self.rest.forward(&features, true);
        let final_logits = self.final_head.forward(&deep, true);
        let (l_server, g_server) = loss.forward(&final_logits, &LossTarget::Classes(classes));

        // Backward through both heads into the shared feature map.
        let g_feat_local = self.exit_head.backward(&g_local.scale(local_weight));
        let g_deep = self.final_head.backward(&g_server);
        let g_feat_server = self.rest.backward(&g_deep);
        let g_feat = g_feat_local
            .add(&g_feat_server)
            .expect("both feature-shaped");
        self.front.backward(&g_feat);

        let mut params = self.front.params_mut();
        params.extend(self.exit_head.params_mut());
        params.extend(self.rest.params_mut());
        params.extend(self.final_head.params_mut());
        optimizer.step(params);
        (l_local, l_server)
    }

    /// Accuracy of the combined early-exit system under the current policy.
    pub fn accuracy(&mut self, input: &Tensor, classes: &[usize]) -> f64 {
        let decisions = self.infer(input);
        assert_eq!(decisions.len(), classes.len(), "one label per sample");
        if classes.is_empty() {
            return 0.0;
        }
        let correct = decisions
            .iter()
            .zip(classes)
            .filter(|(d, &c)| d.class == c)
            .count();
        correct as f64 / classes.len() as f64
    }

    /// Fraction of samples escalated to the server under the current policy.
    pub fn offload_fraction(&mut self, input: &Tensor) -> f64 {
        let decisions = self.infer(input);
        if decisions.is_empty() {
            return 0.0;
        }
        let up = decisions
            .iter()
            .filter(|d| d.exit == ExitPoint::Server)
            .count();
        up as f64 / decisions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::Adam;
    use simclock::SeededRng;

    fn toy_net(policy: ExitPolicy) -> EarlyExitNet {
        EarlyExitNet::new(
            Sequential::new()
                .with(Dense::new(2, 12, 0))
                .with(Relu::new()),
            Sequential::new().with(Dense::new(12, 2, 1)),
            Sequential::new()
                .with(Dense::new(12, 12, 2))
                .with(Relu::new()),
            Sequential::new().with(Dense::new(12, 2, 3)),
            policy,
        )
    }

    fn blobs(n: usize, sep: f64, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = SeededRng::new(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let c = if cls == 0 { -sep } else { sep };
            data.push(rng.gaussian(c, 1.0) as f32);
            data.push(rng.gaussian(c, 1.0) as f32);
            labels.push(cls);
        }
        (Tensor::from_vec(vec![n, 2], data).unwrap(), labels)
    }

    #[test]
    fn threshold_zero_exits_all_local() {
        let mut net = toy_net(ExitPolicy::Confidence(0.0));
        let (x, _) = blobs(10, 2.0, 1);
        let d = net.infer(&x);
        assert!(d.iter().all(|d| d.exit == ExitPoint::Local));
        assert!(d.iter().all(|d| d.feature_bytes == 0));
    }

    #[test]
    fn threshold_above_one_escalates_all() {
        let mut net = toy_net(ExitPolicy::Confidence(1.01));
        let (x, _) = blobs(10, 2.0, 2);
        let d = net.infer(&x);
        assert!(d.iter().all(|d| d.exit == ExitPoint::Server));
        assert!(d.iter().all(|d| d.feature_bytes > 0));
    }

    #[test]
    fn offload_fraction_monotone_in_threshold() {
        let mut net = toy_net(ExitPolicy::Confidence(0.5));
        let (x, y) = blobs(60, 1.0, 3);
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.02);
        for _ in 0..50 {
            net.train_step(&x, &y, &mut loss, &mut opt, 0.5);
        }
        let mut last = -1.0;
        for &t in &[0.5, 0.7, 0.9, 0.99] {
            net.set_policy(ExitPolicy::Confidence(t));
            let frac = net.offload_fraction(&x);
            assert!(frac >= last, "offload fraction must rise with threshold");
            last = frac;
        }
    }

    #[test]
    fn entropy_policy_escalates_uncertain() {
        let mut net = toy_net(ExitPolicy::Entropy(0.0001));
        let (x, _) = blobs(10, 0.1, 4); // barely separated → high entropy
        let d = net.infer(&x);
        // An untrained head on overlapping blobs is uncertain.
        assert!(d.iter().filter(|d| d.exit == ExitPoint::Server).count() >= 8);
    }

    #[test]
    fn joint_training_improves_both_exits() {
        let mut net = toy_net(ExitPolicy::Confidence(0.5));
        let (x, y) = blobs(80, 2.0, 5);
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.02);
        let (l0_local, l0_server) = net.train_step(&x, &y, &mut loss, &mut opt, 1.0);
        let mut last = (0.0, 0.0);
        for _ in 0..80 {
            last = net.train_step(&x, &y, &mut loss, &mut opt, 1.0);
        }
        assert!(last.0 < l0_local, "local loss should drop");
        assert!(last.1 < l0_server, "server loss should drop");
        assert!(net.accuracy(&x, &y) > 0.9);
    }

    #[test]
    fn param_split_accounting() {
        let net = toy_net(ExitPolicy::Confidence(0.5));
        // front: 2*12+12 = 36; exit: 12*2+2 = 26 → 62 local.
        assert_eq!(net.local_param_count(), 62);
        // rest: 12*12+12 = 156; final: 26 → 182 server.
        assert_eq!(net.server_param_count(), 182);
    }

    #[test]
    fn select_batch_picks_rows() {
        let t = Tensor::from_vec(vec![3, 2], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let s = select_batch(&t, &[2, 0]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn telemetry_counts_exits_and_take_rate() {
        let t = sctelemetry::Telemetry::shared();
        let mut net = toy_net(ExitPolicy::Confidence(1.01)).with_telemetry(t.handle());
        let (x, _) = blobs(10, 2.0, 7);
        let d = net.infer(&x);
        assert!(d.iter().all(|d| d.exit == ExitPoint::Server));

        let reg = t.registry();
        let counter = |n: &str| reg.get(n).unwrap().as_counter().unwrap().get();
        assert_eq!(counter(METRIC_LOCAL_EXITS), 0);
        assert_eq!(counter(METRIC_OFFLOADS), 10);
        assert_eq!(
            counter(METRIC_OFFLOAD_BYTES) as usize,
            10 * d[0].feature_bytes
        );
        let rate = reg
            .get(METRIC_TAKE_RATE)
            .unwrap()
            .as_histogram()
            .unwrap()
            .snapshot();
        assert_eq!(rate.count, 1);
        assert_eq!(rate.max, 0.0, "all escalated → take rate 0");

        net.set_policy(ExitPolicy::Confidence(0.0));
        net.infer(&x);
        assert_eq!(counter(METRIC_LOCAL_EXITS), 10);
        let rate = reg
            .get(METRIC_TAKE_RATE)
            .unwrap()
            .as_histogram()
            .unwrap()
            .snapshot();
        assert_eq!(rate.max, 1.0, "all local → take rate 1");
    }

    #[test]
    fn decisions_report_policy_quantities() {
        let mut net = toy_net(ExitPolicy::Confidence(0.9));
        let (x, _) = blobs(5, 1.0, 6);
        for d in net.infer(&x) {
            assert!((0.0..=1.0).contains(&d.confidence));
            assert!(d.local_entropy >= 0.0);
        }
    }
}

impl EarlyExitNet {
    /// Serializes the *local* part (front + exit head) — the bytes deployed
    /// to an edge/fog device in the paper's hardware layer.
    pub fn save_local(&self) -> Vec<u8> {
        let mut blob = crate::serialize::save_params(&self.front);
        let exit = crate::serialize::save_params(&self.exit_head);
        blob.extend_from_slice(&(exit.len() as u32).to_le_bytes());
        blob.extend_from_slice(&exit);
        blob
    }

    /// Serializes the *server* part (rest + final head).
    pub fn save_server(&self) -> Vec<u8> {
        let mut blob = crate::serialize::save_params(&self.rest);
        let fin = crate::serialize::save_params(&self.final_head);
        blob.extend_from_slice(&(fin.len() as u32).to_le_bytes());
        blob.extend_from_slice(&fin);
        blob
    }

    fn split_blob(bytes: &[u8]) -> Result<(&[u8], &[u8]), crate::serialize::LoadError> {
        // The first segment is self-describing only via the trailing length
        // of the second; scan from the end.
        if bytes.len() < 4 {
            return Err(crate::serialize::LoadError::Truncated);
        }
        // Find the second blob: its length is stored right before it; the
        // first blob occupies everything before that length field.
        // Layout: [first][u32 len][second(len)]
        // Walk back: we need len == remaining-after-field.
        for split in (0..bytes.len().saturating_sub(4)).rev() {
            let len =
                u32::from_le_bytes(bytes[split..split + 4].try_into().expect("4 bytes")) as usize;
            if split + 4 + len == bytes.len() && bytes[split + 4..].starts_with(b"SCNN") {
                return Ok((&bytes[..split], &bytes[split + 4..]));
            }
        }
        Err(crate::serialize::LoadError::BadMagic)
    }

    /// Restores the local part from [`EarlyExitNet::save_local`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::serialize::LoadError`] on malformed blobs or
    /// architecture mismatch.
    pub fn load_local(&mut self, bytes: &[u8]) -> Result<(), crate::serialize::LoadError> {
        let (front, exit) = Self::split_blob(bytes)?;
        crate::serialize::load_params(&mut self.front, front)?;
        crate::serialize::load_params(&mut self.exit_head, exit)
    }

    /// Restores the server part from [`EarlyExitNet::save_server`] bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::serialize::LoadError`] on malformed blobs or
    /// architecture mismatch.
    pub fn load_server(&mut self, bytes: &[u8]) -> Result<(), crate::serialize::LoadError> {
        let (rest, fin) = Self::split_blob(bytes)?;
        crate::serialize::load_params(&mut self.rest, rest)?;
        crate::serialize::load_params(&mut self.final_head, fin)
    }
}

#[cfg(test)]
mod deploy_tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::Adam;
    use crate::tensor::Tensor;

    fn net(seed: u64) -> EarlyExitNet {
        EarlyExitNet::new(
            Sequential::new()
                .with(Dense::new(3, 6, seed))
                .with(Relu::new()),
            Sequential::new().with(Dense::new(6, 2, seed + 1)),
            Sequential::new()
                .with(Dense::new(6, 6, seed + 2))
                .with(Relu::new()),
            Sequential::new().with(Dense::new(6, 2, seed + 3)),
            ExitPolicy::Confidence(0.5),
        )
    }

    #[test]
    fn deployment_roundtrip_preserves_decisions() {
        let mut trained = net(1);
        let x = Tensor::from_vec(vec![4, 3], vec![0.1; 12]).unwrap();
        let y = vec![0usize, 1, 0, 1];
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.05);
        for _ in 0..20 {
            trained.train_step(&x, &y, &mut loss, &mut opt, 0.5);
        }
        let expected = trained.infer(&x);

        // Ship the two halves to "fresh hardware" (different init).
        let mut deployed = net(99);
        deployed.load_local(&trained.save_local()).unwrap();
        deployed.load_server(&trained.save_server()).unwrap();
        assert_eq!(deployed.infer(&x), expected);
    }

    #[test]
    fn local_blob_smaller_than_server_when_split_that_way() {
        let n = net(2);
        // Here local (3*6+6 + 6*2+2 = 38 params) < server (6*6+6 + 14 = 56).
        assert!(n.save_local().len() < n.save_server().len());
    }

    #[test]
    fn load_rejects_mismatched_architecture() {
        let trained = net(3);
        let mut other = EarlyExitNet::new(
            Sequential::new().with(Dense::new(4, 6, 0)),
            Sequential::new().with(Dense::new(6, 2, 1)),
            Sequential::new().with(Dense::new(6, 6, 2)),
            Sequential::new().with(Dense::new(6, 2, 3)),
            ExitPolicy::Confidence(0.5),
        );
        assert!(other.load_local(&trained.save_local()).is_err());
    }

    #[test]
    fn load_rejects_garbage() {
        let mut n = net(4);
        assert!(n.load_local(b"garbage").is_err());
        assert!(n.load_local(&[]).is_err());
    }
}
