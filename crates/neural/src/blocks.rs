//! CNN building blocks: residual blocks (Fig. 8) and inception blocks
//! (§III-A).
//!
//! The paper's spatial-analysis module "includes inception types of CNN as
//! used in the GoogleNet and the ResNet type of CNN", and Fig. 8 describes
//! its ResNet block: *"we use a convolutional layer for shortcut path instead
//! of max pooling layer mostly used in Resnet block architecture."* All three
//! shortcut variants are implemented here so the E7 ablation can compare
//! them.

use crate::layers::{Conv2d, Layer, MaxPool2d, Param, Relu};
use crate::tensor::Tensor;

/// Concatenates 4-D tensors along the channel axis.
fn concat_channels(parts: &[Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let s0 = parts[0].shape();
    let (n, h, w) = (s0[0], s0[2], s0[3]);
    let total_c: usize = parts.iter().map(|p| p.shape()[1]).sum();
    let mut out = vec![0.0f32; n * total_c * h * w];
    let plane = h * w;
    for b in 0..n {
        let mut c_off = 0;
        for p in parts {
            let pc = p.shape()[1];
            assert_eq!(&p.shape()[2..], &[h, w], "spatial dims must match");
            assert_eq!(p.shape()[0], n, "batch must match");
            for ch in 0..pc {
                let src = ((b * pc + ch) * plane)..((b * pc + ch + 1) * plane);
                let dst_start = (b * total_c + c_off + ch) * plane;
                out[dst_start..dst_start + plane].copy_from_slice(&p.data()[src]);
            }
            c_off += pc;
        }
    }
    Tensor::from_vec(vec![n, total_c, h, w], out).expect("size computed above")
}

/// Splits a 4-D tensor along channels into chunks of the given sizes.
fn split_channels(t: &Tensor, sizes: &[usize]) -> Vec<Tensor> {
    let s = t.shape();
    let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
    assert_eq!(
        sizes.iter().sum::<usize>(),
        c,
        "split sizes must cover all channels"
    );
    let plane = h * w;
    let mut out = Vec::with_capacity(sizes.len());
    let mut c_off = 0;
    for &pc in sizes {
        let mut data = vec![0.0f32; n * pc * plane];
        for b in 0..n {
            for ch in 0..pc {
                let src_start = (b * c + c_off + ch) * plane;
                let dst_start = (b * pc + ch) * plane;
                data[dst_start..dst_start + plane]
                    .copy_from_slice(&t.data()[src_start..src_start + plane]);
            }
        }
        out.push(Tensor::from_vec(vec![n, pc, h, w], data).expect("size computed above"));
        c_off += pc;
    }
    out
}

/// Shortcut-path variants for [`ResidualBlock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shortcut {
    /// 1×1 convolution on the shortcut — the paper's variant (Fig. 8).
    Conv,
    /// Plain identity; requires matching channels and stride 1.
    Identity,
    /// Max-pool on the shortcut ("mostly used in Resnet block architecture"
    /// per the paper), with zero channel padding if channels grow.
    MaxPool,
}

/// A two-convolution residual block: `relu(conv(relu(conv(x))) + shortcut(x))`.
///
/// # Examples
///
/// ```
/// use scneural::blocks::{ResidualBlock, Shortcut};
/// use scneural::layers::Layer;
/// use scneural::tensor::Tensor;
///
/// let mut block = ResidualBlock::new(3, 8, 2, Shortcut::Conv, 42);
/// let x = Tensor::zeros(vec![1, 3, 16, 16]);
/// let y = block.forward(&x, false);
/// assert_eq!(y.shape(), &[1, 8, 8, 8]);
/// ```
#[derive(Debug)]
pub struct ResidualBlock {
    conv1: Conv2d,
    relu1: Relu,
    conv2: Conv2d,
    shortcut: Shortcut,
    shortcut_conv: Option<Conv2d>,
    shortcut_pool: Option<MaxPool2d>,
    in_channels: usize,
    out_channels: usize,
    out_mask: Option<Vec<bool>>, // final ReLU mask
}

impl ResidualBlock {
    /// Creates a block mapping `in_channels` to `out_channels` with the given
    /// spatial `stride` on the first convolution.
    ///
    /// # Panics
    ///
    /// Panics if `Shortcut::Identity` is requested with mismatched channels
    /// or `stride != 1`, or if sizes are zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        shortcut: Shortcut,
        seed: u64,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && stride > 0,
            "sizes must be positive"
        );
        if shortcut == Shortcut::Identity {
            assert!(
                in_channels == out_channels && stride == 1,
                "identity shortcut requires equal channels and stride 1"
            );
        }
        if shortcut == Shortcut::MaxPool {
            assert!(
                out_channels >= in_channels,
                "maxpool shortcut zero-pads channels; cannot shrink them"
            );
        }
        let shortcut_conv = (shortcut == Shortcut::Conv).then(|| {
            Conv2d::new(
                in_channels,
                out_channels,
                1,
                stride,
                0,
                seed.wrapping_add(91),
            )
        });
        let shortcut_pool =
            (shortcut == Shortcut::MaxPool && stride > 1).then(|| MaxPool2d::new(stride, stride));
        ResidualBlock {
            conv1: Conv2d::new(in_channels, out_channels, 3, stride, 1, seed),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_channels, out_channels, 3, 1, 1, seed.wrapping_add(1)),
            shortcut,
            shortcut_conv,
            shortcut_pool,
            in_channels,
            out_channels,
            out_mask: None,
        }
    }

    /// The shortcut variant in use.
    pub fn shortcut_kind(&self) -> Shortcut {
        self.shortcut
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn shortcut_forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        match self.shortcut {
            Shortcut::Identity => input.clone(),
            Shortcut::Conv => self
                .shortcut_conv
                .as_mut()
                .expect("set in constructor")
                .forward(input, train),
            Shortcut::MaxPool => {
                let pooled = match self.shortcut_pool.as_mut() {
                    Some(pool) => pool.forward(input, train),
                    None => input.clone(),
                };
                // Zero-pad channels to out_channels.
                if self.out_channels == self.in_channels {
                    pooled
                } else {
                    let s = pooled.shape();
                    let zeros =
                        Tensor::zeros(vec![s[0], self.out_channels - self.in_channels, s[2], s[3]]);
                    concat_channels(&[pooled, zeros])
                }
            }
        }
    }

    fn shortcut_infer(&self, input: &Tensor) -> Tensor {
        match self.shortcut {
            Shortcut::Identity => input.clone(),
            Shortcut::Conv => self
                .shortcut_conv
                .as_ref()
                .expect("set in constructor")
                .infer(input),
            Shortcut::MaxPool => {
                let pooled = match self.shortcut_pool.as_ref() {
                    Some(pool) => pool.infer(input),
                    None => input.clone(),
                };
                if self.out_channels == self.in_channels {
                    pooled
                } else {
                    let s = pooled.shape();
                    let zeros =
                        Tensor::zeros(vec![s[0], self.out_channels - self.in_channels, s[2], s[3]]);
                    concat_channels(&[pooled, zeros])
                }
            }
        }
    }

    fn shortcut_backward(&mut self, grad: &Tensor) -> Tensor {
        match self.shortcut {
            Shortcut::Identity => grad.clone(),
            Shortcut::Conv => self
                .shortcut_conv
                .as_mut()
                .expect("set in constructor")
                .backward(grad),
            Shortcut::MaxPool => {
                let g = if self.out_channels == self.in_channels {
                    grad.clone()
                } else {
                    split_channels(
                        grad,
                        &[self.in_channels, self.out_channels - self.in_channels],
                    )
                    .swap_remove(0)
                };
                match self.shortcut_pool.as_mut() {
                    Some(pool) => pool.backward(&g),
                    None => g,
                }
            }
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let main = self.conv1.forward(input, train);
        let main = self.relu1.forward(&main, train);
        let main = self.conv2.forward(&main, train);
        let short = self.shortcut_forward(input, train);
        assert_eq!(
            main.shape(),
            short.shape(),
            "main and shortcut paths must produce identical shapes"
        );
        let sum = main.add(&short).expect("shapes checked");
        self.out_mask = Some(sum.data().iter().map(|&v| v > 0.0).collect());
        sum.map(|v| v.max(0.0))
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let main = self.conv1.infer(input);
        let main = self.relu1.infer(&main);
        let main = self.conv2.infer(&main);
        let short = self.shortcut_infer(input);
        assert_eq!(
            main.shape(),
            short.shape(),
            "main and shortcut paths must produce identical shapes"
        );
        main.add(&short)
            .expect("shapes checked")
            .map(|v| v.max(0.0))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.out_mask.as_ref().expect("backward before forward");
        let gated: Vec<f32> = grad_out
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        let gated = Tensor::from_vec(grad_out.shape().to_vec(), gated).expect("same length");
        let g_main = self.conv2.backward(&gated);
        let g_main = self.relu1.backward(&g_main);
        let g_main = self.conv1.backward(&g_main);
        let g_short = self.shortcut_backward(&gated);
        g_main.add(&g_short).expect("both are input-shaped")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.conv1.params_mut();
        p.extend(self.conv2.params_mut());
        if let Some(sc) = self.shortcut_conv.as_mut() {
            p.extend(sc.params_mut());
        }
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.conv1.params();
        p.extend(self.conv2.params());
        if let Some(sc) = self.shortcut_conv.as_ref() {
            p.extend(sc.params());
        }
        p
    }

    fn name(&self) -> &'static str {
        "ResidualBlock"
    }
}

/// A GoogLeNet-style inception block with four parallel branches whose
/// outputs concatenate along channels: 1×1, 1×1→3×3, 1×1→5×5, and
/// 3×3-maxpool→1×1.
///
/// # Examples
///
/// ```
/// use scneural::blocks::InceptionBlock;
/// use scneural::layers::Layer;
/// use scneural::tensor::Tensor;
///
/// let mut block = InceptionBlock::new(4, [2, 3, 2, 1], 42);
/// let x = Tensor::zeros(vec![1, 4, 8, 8]);
/// let y = block.forward(&x, false);
/// assert_eq!(y.shape(), &[1, 8, 8, 8]); // 2+3+2+1 channels
/// ```
#[derive(Debug)]
pub struct InceptionBlock {
    b1: Conv2d,        // 1x1
    b2a: Conv2d,       // 1x1 reduce
    b2b: Conv2d,       // 3x3
    b3a: Conv2d,       // 1x1 reduce
    b3b: Conv2d,       // 5x5
    b4pool: MaxPool2d, // 3x3 stride 1 (same padding emulated below)
    b4conv: Conv2d,    // 1x1 after pool
    relus: Vec<Relu>,
    branch_channels: [usize; 4],
}

impl InceptionBlock {
    /// Creates a block with the given per-branch output channels
    /// `[c1, c3, c5, cpool]`.
    pub fn new(in_channels: usize, branch_channels: [usize; 4], seed: u64) -> Self {
        let [c1, c3, c5, cp] = branch_channels;
        let reduce = (in_channels / 2).max(1);
        InceptionBlock {
            b1: Conv2d::new(in_channels, c1, 1, 1, 0, seed),
            b2a: Conv2d::new(in_channels, reduce, 1, 1, 0, seed.wrapping_add(1)),
            b2b: Conv2d::new(reduce, c3, 3, 1, 1, seed.wrapping_add(2)),
            b3a: Conv2d::new(in_channels, reduce, 1, 1, 0, seed.wrapping_add(3)),
            b3b: Conv2d::new(reduce, c5, 5, 1, 2, seed.wrapping_add(4)),
            b4pool: MaxPool2d::new(1, 1), // stride-1 "pool" keeps dims; 1x1 conv mixes
            b4conv: Conv2d::new(in_channels, cp, 1, 1, 0, seed.wrapping_add(5)),
            relus: (0..4).map(|_| Relu::new()).collect(),
            branch_channels,
        }
    }

    /// Total output channels (sum of branch channels).
    pub fn out_channels(&self) -> usize {
        self.branch_channels.iter().sum()
    }
}

impl Layer for InceptionBlock {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let y1 = self.relus[0].forward(&self.b1.forward(input, train), train);
        let y2 = {
            let r = self.b2a.forward(input, train);
            self.relus[1].forward(&self.b2b.forward(&r, train), train)
        };
        let y3 = {
            let r = self.b3a.forward(input, train);
            self.relus[2].forward(&self.b3b.forward(&r, train), train)
        };
        let y4 = {
            let p = self.b4pool.forward(input, train);
            self.relus[3].forward(&self.b4conv.forward(&p, train), train)
        };
        concat_channels(&[y1, y2, y3, y4])
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let y1 = self.relus[0].infer(&self.b1.infer(input));
        let y2 = {
            let r = self.b2a.infer(input);
            self.relus[1].infer(&self.b2b.infer(&r))
        };
        let y3 = {
            let r = self.b3a.infer(input);
            self.relus[2].infer(&self.b3b.infer(&r))
        };
        let y4 = {
            let p = self.b4pool.infer(input);
            self.relus[3].infer(&self.b4conv.infer(&p))
        };
        concat_channels(&[y1, y2, y3, y4])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let parts = split_channels(grad_out, &self.branch_channels);
        let g1 = self.b1.backward(&self.relus[0].backward(&parts[0]));
        let g2 = {
            let g = self.b2b.backward(&self.relus[1].backward(&parts[1]));
            self.b2a.backward(&g)
        };
        let g3 = {
            let g = self.b3b.backward(&self.relus[2].backward(&parts[2]));
            self.b3a.backward(&g)
        };
        let g4 = {
            let g = self.b4conv.backward(&self.relus[3].backward(&parts[3]));
            self.b4pool.backward(&g)
        };
        g1.add(&g2)
            .and_then(|s| s.add(&g3))
            .and_then(|s| s.add(&g4))
            .expect("all branches are input-shaped")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.b1.params_mut();
        p.extend(self.b2a.params_mut());
        p.extend(self.b2b.params_mut());
        p.extend(self.b3a.params_mut());
        p.extend(self.b3b.params_mut());
        p.extend(self.b4conv.params_mut());
        p
    }

    fn params(&self) -> Vec<&Param> {
        let mut p = self.b1.params();
        p.extend(self.b2a.params());
        p.extend(self.b2b.params());
        p.extend(self.b3a.params());
        p.extend(self.b3b.params());
        p.extend(self.b4conv.params());
        p
    }

    fn name(&self) -> &'static str {
        "InceptionBlock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::net::Sequential;
    use crate::optim::Adam;
    use simclock::SeededRng;

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let b = Tensor::from_vec(vec![1, 2, 2, 2], (5..13).map(|i| i as f32).collect()).unwrap();
        let cat = concat_channels(&[a.clone(), b.clone()]);
        assert_eq!(cat.shape(), &[1, 3, 2, 2]);
        let parts = split_channels(&cat, &[1, 2]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn conv_shortcut_shapes() {
        let mut block = ResidualBlock::new(2, 6, 2, Shortcut::Conv, 1);
        let x = Tensor::zeros(vec![2, 2, 8, 8]);
        assert_eq!(block.forward(&x, true).shape(), &[2, 6, 4, 4]);
    }

    #[test]
    fn identity_shortcut_shapes() {
        let mut block = ResidualBlock::new(4, 4, 1, Shortcut::Identity, 2);
        let x = Tensor::zeros(vec![1, 4, 6, 6]);
        assert_eq!(block.forward(&x, true).shape(), &[1, 4, 6, 6]);
    }

    #[test]
    fn maxpool_shortcut_pads_channels() {
        let mut block = ResidualBlock::new(2, 5, 2, Shortcut::MaxPool, 3);
        let x = Tensor::zeros(vec![1, 2, 8, 8]);
        assert_eq!(block.forward(&x, true).shape(), &[1, 5, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "identity shortcut")]
    fn identity_rejects_channel_change() {
        let _ = ResidualBlock::new(2, 4, 1, Shortcut::Identity, 4);
    }

    #[test]
    fn residual_gradient_check() {
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            (0..16).map(|i| ((i % 7) as f32 - 3.0) / 4.0).collect(),
        )
        .unwrap();
        let mut block = ResidualBlock::new(1, 2, 1, Shortcut::Conv, 5);
        let y = block.forward(&x, true);
        let grad_in = block.backward(&Tensor::ones(y.shape().to_vec()));

        let eps = 1e-2;
        for idx in [0, 7, 13] {
            let mut bp = ResidualBlock::new(1, 2, 1, Shortcut::Conv, 5);
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let fp = bp.forward(&xp, true).sum();
            let mut bm = ResidualBlock::new(1, 2, 1, Shortcut::Conv, 5);
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fm = bm.forward(&xm, true).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grad_in.data()[idx];
            assert!(
                (num - ana).abs() < 5e-2,
                "idx {idx}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn inception_output_channels() {
        let mut block = InceptionBlock::new(3, [4, 6, 2, 4], 6);
        assert_eq!(block.out_channels(), 16);
        let x = Tensor::zeros(vec![2, 3, 8, 8]);
        assert_eq!(block.forward(&x, true).shape(), &[2, 16, 8, 8]);
    }

    #[test]
    fn inception_backward_shape() {
        let mut block = InceptionBlock::new(2, [1, 2, 1, 1], 7);
        let x = Tensor::ones(vec![1, 2, 6, 6]);
        let y = block.forward(&x, true);
        let g = block.backward(&Tensor::ones(y.shape().to_vec()));
        assert_eq!(g.shape(), x.shape());
    }

    #[test]
    fn residual_stack_trains_on_tiny_images() {
        // 2-class problem: bright blob top-left vs bottom-right on 8x8 images.
        let mut rng = SeededRng::new(8);
        let n = 24;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let mut img = vec![0.0f32; 64];
            for _ in 0..8 {
                let (y0, x0) = if cls == 0 { (0, 0) } else { (4, 4) };
                let y = y0 + rng.index(4);
                let x = x0 + rng.index(4);
                img[y * 8 + x] = 1.0;
            }
            data.extend(img);
            labels.push(cls);
        }
        let x = Tensor::from_vec(vec![n, 1, 8, 8], data).unwrap();
        let mut net = Sequential::new()
            .with(ResidualBlock::new(1, 4, 2, Shortcut::Conv, 9))
            .with(Flatten::new())
            .with(Dense::new(4 * 16, 2, 10));
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.01);
        for _ in 0..60 {
            net.train_step(&x, &labels, &mut loss, &mut opt);
        }
        let acc = net.accuracy(&x, &labels);
        assert!(acc >= 0.9, "residual stack accuracy {acc}");
    }
}
