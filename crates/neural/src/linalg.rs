//! Small dense `f64` linear algebra for statistical modules (CCA, whitening).
//!
//! These routines are deliberately simple — the matrices involved are modality
//! feature covariances (tens of rows), where cubic algorithms are instant.

/// Panel kernel over a row panel of `a` (`rows × k`) times `b` (`k × n`),
/// accumulating into `out` (`rows × n`).
///
/// Delegates to [`scsimd::matmul_panel_f64`], whose strict profile runs
/// the ascending-`k` multiply-add sequence of the naive loop on every
/// backend — vectorization changes cache and register behaviour, never
/// bits.
fn matmul_panel(a: &[f64], b: &[f64], k: usize, n: usize, out: &mut [f64], isa: scsimd::Isa) {
    if k == 0 {
        return;
    }
    scsimd::matmul_panel_f64(a, b, k, n, out, isa);
}

/// A small dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Mat { rows, cols, data }
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows per panel in [`Mat::matmul_ctx`]. Fixed by the input shape
    /// alone — never the thread count — so parallel products are
    /// bit-identical to serial ones.
    pub const PANEL_ROWS: usize = 32;

    /// Matrix product (serial, vectorized via the process-wide
    /// [`scsimd::Isa::active`] backend).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        self.matmul_ctx(other, &crate::exec::ExecCtx::serial())
    }

    /// Tiled matrix product under an [`ExecCtx`](crate::exec::ExecCtx):
    /// row panels fanned out on the `scpar` pool, each computed by a
    /// vectorized scsimd kernel.
    ///
    /// Output rows are partitioned into row panels — [`Mat::PANEL_ROWS`]
    /// high by default, or the tuned `matmul_f64` height when the context
    /// carries an enabled [`sctune::Tuner`] — and the scsimd strict
    /// profile visits the inner dimension in the same ascending order as
    /// the serial product on every backend. Panel height only moves task
    /// boundaries between independent rows, so the result is bit-identical
    /// for any thread count, any ISA, and any panel height.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul_ctx(&self, other: &Mat, ctx: &crate::exec::ExecCtx) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let (cfg, isa) = (ctx.par(), ctx.isa());
        let panel_rows = ctx
            .tuner()
            .matmul_f64_panel_rows(m, k, n, cfg.threads(), isa.name(), Self::PANEL_ROWS)
            .max(1);
        if !cfg.is_parallel() || m <= panel_rows || k == 0 {
            let mut data = vec![0.0; m * n];
            matmul_panel(&self.data, &other.data, k, n, &mut data, isa);
            return Mat {
                rows: m,
                cols: n,
                data,
            };
        }
        let chunk_elems = panel_rows * k;
        let panels = scpar::par_map_chunks(cfg, &self.data, chunk_elems, |_ci, a_panel| {
            let mut out = vec![0.0; (a_panel.len() / k) * n];
            matmul_panel(a_panel, &other.data, k, n, &mut out, isa);
            out
        });
        let mut data = Vec::with_capacity(m * n);
        for panel in panels {
            data.extend_from_slice(&panel);
        }
        Mat {
            rows: m,
            cols: n,
            data,
        }
    }

    /// Deprecated alias for [`Mat::matmul_ctx`].
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[deprecated(since = "0.2.0", note = "use `matmul_ctx(other, &ExecCtx)` instead")]
    pub fn matmul_with(&self, other: &Mat, cfg: &scpar::ScparConfig) -> Mat {
        self.matmul_ctx(other, &crate::exec::ExecCtx::serial().with_par(*cfg))
    }

    /// Transpose.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }

    /// Adds `eps` to the diagonal (ridge regularization).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_ridge(&self, eps: f64) -> Mat {
        assert_eq!(self.rows, self.cols, "ridge requires a square matrix");
        let mut out = self.clone();
        for i in 0..self.rows {
            out[(i, i)] += eps;
        }
        out
    }

    /// Maximum absolute off-diagonal element (used by the Jacobi sweep).
    fn max_off_diagonal(&self) -> (usize, usize, f64) {
        let mut best = (0, 1, 0.0);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = self[(i, j)].abs();
                if v > best.2 {
                    best = (i, j, v);
                }
            }
        }
        best
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Eigendecomposition of a symmetric matrix by cyclic Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues sorted descending
/// and eigenvectors as the *columns* of the returned matrix.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Mat) -> (Vec<f64>, Mat) {
    assert_eq!(
        a.rows, a.cols,
        "eigendecomposition requires a square matrix"
    );
    let n = a.rows;
    if n == 0 {
        return (Vec::new(), Mat::zeros(0, 0));
    }
    if n == 1 {
        return (vec![a[(0, 0)]], Mat::eye(1));
    }
    let mut m = a.clone();
    let mut v = Mat::eye(n);
    for _sweep in 0..100 {
        let (p, q, off) = m.max_off_diagonal();
        if off < 1e-12 {
            break;
        }
        // Jacobi rotation annihilating m[p][q].
        let theta = 0.5 * (m[(q, q)] - m[(p, p)]) / m[(p, q)];
        let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
        let c = 1.0 / (t * t + 1.0).sqrt();
        let s = t * c;
        for k in 0..n {
            let mkp = m[(k, p)];
            let mkq = m[(k, q)];
            m[(k, p)] = c * mkp - s * mkq;
            m[(k, q)] = s * mkp + c * mkq;
        }
        for k in 0..n {
            let mpk = m[(p, k)];
            let mqk = m[(q, k)];
            m[(p, k)] = c * mpk - s * mqk;
            m[(q, k)] = s * mpk + c * mqk;
        }
        for k in 0..n {
            let vkp = v[(k, p)];
            let vkq = v[(k, q)];
            v[(k, p)] = c * vkp - s * vkq;
            v[(k, q)] = s * vkp + c * vkq;
        }
    }
    // Extract eigenvalues and sort descending, permuting eigenvector columns.
    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (m[(i, i)], i)).collect();
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));
    let values: Vec<f64> = pairs.iter().map(|&(val, _)| val).collect();
    let mut vectors = Mat::zeros(n, n);
    for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    (values, vectors)
}

/// Inverse square root of a symmetric positive-definite matrix:
/// `A^(-1/2) = V diag(λ^-1/2) Vᵀ`. Eigenvalues below `floor` are clamped to
/// `floor` for numerical stability.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn inv_sqrt_sym(a: &Mat, floor: f64) -> Mat {
    let (values, vectors) = jacobi_eigen(a);
    let n = a.rows;
    let mut d = Mat::zeros(n, n);
    for i in 0..n {
        d[(i, i)] = 1.0 / values[i].max(floor).sqrt();
    }
    vectors.matmul(&d).matmul(&vectors.transpose())
}

/// Solves `A x = b` for square `A` via Gauss–Jordan elimination with partial
/// pivoting. Returns `None` if `A` is (numerically) singular.
pub fn solve(a: &Mat, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows, a.cols, "solve requires a square matrix");
    assert_eq!(a.rows, b.len(), "rhs length mismatch");
    let n = a.rows;
    let mut aug = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if aug[(r, col)].abs() > aug[(pivot, col)].abs() {
                pivot = r;
            }
        }
        if aug[(pivot, col)].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..n {
                let tmp = aug[(col, j)];
                aug[(col, j)] = aug[(pivot, j)];
                aug[(pivot, j)] = tmp;
            }
            x.swap(col, pivot);
        }
        let d = aug[(col, col)];
        for j in 0..n {
            aug[(col, j)] /= d;
        }
        x[col] /= d;
        for r in 0..n {
            if r != col {
                let f = aug[(r, col)];
                if f != 0.0 {
                    for j in 0..n {
                        aug[(r, j)] -= f * aug[(col, j)];
                    }
                    x[r] -= f * x[col];
                }
            }
        }
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn matmul_identity() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Mat::eye(2);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let mut a = Mat::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let (vals, _) = jacobi_eigen(&a);
        assert!(approx(vals[0], 3.0, 1e-9));
        assert!(approx(vals[1], 2.0, 1e-9));
        assert!(approx(vals[2], 1.0, 1e-9));
    }

    #[test]
    fn jacobi_known_symmetric() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Mat::from_vec(2, 2, vec![2., 1., 1., 2.]);
        let (vals, vecs) = jacobi_eigen(&a);
        assert!(approx(vals[0], 3.0, 1e-9));
        assert!(approx(vals[1], 1.0, 1e-9));
        // A v = λ v for the first eigenvector.
        let v0 = Mat::from_vec(2, 1, vec![vecs[(0, 0)], vecs[(1, 0)]]);
        let av = a.matmul(&v0);
        assert!(approx(av[(0, 0)], 3.0 * v0[(0, 0)], 1e-8));
        assert!(approx(av[(1, 0)], 3.0 * v0[(1, 0)], 1e-8));
    }

    #[test]
    fn jacobi_reconstruction() {
        // V diag(λ) Vᵀ must reconstruct A.
        let a = Mat::from_vec(3, 3, vec![4., 1., 0.5, 1., 3., 0.2, 0.5, 0.2, 2.]);
        let (vals, vecs) = jacobi_eigen(&a);
        let mut d = Mat::zeros(3, 3);
        for i in 0..3 {
            d[(i, i)] = vals[i];
        }
        let recon = vecs.matmul(&d).matmul(&vecs.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx(recon[(i, j)], a[(i, j)], 1e-8), "({i},{j})");
            }
        }
    }

    #[test]
    fn inv_sqrt_property() {
        // (A^-1/2) A (A^-1/2) = I
        let a = Mat::from_vec(2, 2, vec![4., 1., 1., 3.]);
        let s = inv_sqrt_sym(&a, 1e-12);
        let i = s.matmul(&a).matmul(&s);
        assert!(approx(i[(0, 0)], 1.0, 1e-8));
        assert!(approx(i[(1, 1)], 1.0, 1e-8));
        assert!(approx(i[(0, 1)], 0.0, 1e-8));
    }

    #[test]
    fn solve_known_system() {
        // x + 2y = 5 ; 3x - y = 1  => x=1, y=2
        let a = Mat::from_vec(2, 2, vec![1., 2., 3., -1.]);
        let x = solve(&a, &[5., 1.]).unwrap();
        assert!(approx(x[0], 1.0, 1e-9));
        assert!(approx(x[1], 2.0, 1e-9));
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Mat::from_vec(2, 2, vec![1., 2., 2., 4.]);
        assert!(solve(&a, &[1., 2.]).is_none());
    }

    #[test]
    fn solve_with_pivoting() {
        // First pivot is zero; requires row swap.
        let a = Mat::from_vec(2, 2, vec![0., 1., 1., 0.]);
        let x = solve(&a, &[3., 7.]).unwrap();
        assert!(approx(x[0], 7.0, 1e-12));
        assert!(approx(x[1], 3.0, 1e-12));
    }

    #[test]
    fn ridge_adds_diagonal() {
        let a = Mat::eye(2).add_ridge(0.5);
        assert!(approx(a[(0, 0)], 1.5, 1e-12));
        assert!(approx(a[(0, 1)], 0.0, 1e-12));
    }
}
