//! Sequential networks and the training loop.

use scpar::ScparConfig;
use sctelemetry::TelemetryHandle;

use crate::layers::{softmax_rows, Layer, Param};
use crate::loss::{Loss, LossTarget};
use crate::optim::Optimizer;
use crate::tensor::Tensor;

/// Prefix of the per-layer forward-time histograms: layer `i` with name `n`
/// observes into `scneural_net_forward_<i>_<n>_seconds` (wall clock).
pub const METRIC_FORWARD_PREFIX: &str = "scneural_net_forward_";

/// Prefix of per-layer work-accounting kernels: a layer named `n` is
/// attributed as kernel `neural/layer/<n>` (see
/// [`crate::layers::Layer::infer_work`]).
pub const KERNEL_LAYER_PREFIX: &str = "neural/layer/";

/// Rows per chunk in [`Sequential::predict_ctx`]. Fixed (never derived from
/// the thread count) so chunk boundaries — and therefore outputs — are
/// identical for any [`ScparConfig`].
pub const BATCH_CHUNK_ROWS: usize = 32;

/// A feed-forward stack of layers executed in order.
///
/// `Sequential` is itself a [`Layer`], so stacks nest (residual blocks hold
/// sequentials for their branches; [`crate::early_exit::EarlyExitNet`] holds
/// sequentials for its backbone segments).
///
/// # Examples
///
/// ```
/// use scneural::layers::{Dense, Relu};
/// use scneural::net::Sequential;
/// use scneural::tensor::Tensor;
///
/// let mut net = Sequential::new()
///     .with(Dense::new(4, 16, 0))
///     .with(Relu::new())
///     .with(Dense::new(16, 3, 1));
/// let logits = net.predict(&Tensor::ones(vec![2, 4]));
/// assert_eq!(logits.shape(), &[2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    telemetry: TelemetryHandle,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches telemetry: every forward pass observes per-layer wall-clock
    /// time into `scneural_net_forward_<index>_<layer>_seconds` histograms
    /// (see [`METRIC_FORWARD_PREFIX`]).
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Appends a layer (builder style).
    pub fn with(mut self, layer: impl Layer + 'static) -> Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends a boxed layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of trainable scalar parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.value.len())
            .sum()
    }

    /// Layer names in order, for summaries.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs inference (no dropout, batch-norm in inference mode).
    pub fn predict(&mut self, input: &Tensor) -> Tensor {
        self.forward(input, false)
    }

    /// Parallel batch inference under an [`ExecCtx`](crate::exec::ExecCtx),
    /// fanned out on the `scpar` worker pool.
    ///
    /// The `[batch, ...]` input is split into row chunks —
    /// [`BATCH_CHUNK_ROWS`] rows by default, or the tuned `predict` chunk
    /// height when the context carries an enabled [`sctune::Tuner`]; each
    /// chunk runs through the immutable [`Layer::infer`] path concurrently
    /// and the outputs are stitched back together in chunk order. Every
    /// layer in this crate computes rows independently in inference mode,
    /// so the result is bit-identical to `predict` for any thread count
    /// and any chunk height. Layer kernels vectorize through the
    /// process-wide [`scsimd::Isa::active`] backend (the context's ISA is
    /// advisory here), and the scsimd strict profile keeps outputs
    /// bit-identical on every ISA too.
    ///
    /// Per-layer work is recorded through the network's own attached
    /// telemetry handle ([`Sequential::with_telemetry`]), not the context's
    /// — a net carries its recorder the way it carries its weights. This
    /// path records no per-layer forward-time histograms: wall-clock
    /// timings are inherently nondeterministic and would break the
    /// byte-identical-telemetry contract.
    ///
    /// # Panics
    ///
    /// Panics if the input has no dimensions.
    pub fn predict_ctx(&self, input: &Tensor, ctx: &crate::exec::ExecCtx) -> Tensor {
        let cfg = ctx.par();
        let shape = input.shape();
        assert!(!shape.is_empty(), "predict_ctx needs a batched input");
        let n = shape[0];
        if !cfg.is_parallel() || input.is_empty() {
            return self.infer(input);
        }
        let row_elems = input.len() / n;
        let chunk_rows = ctx
            .tuner()
            .predict_chunk_rows(n, row_elems, cfg.threads(), BATCH_CHUNK_ROWS)
            .max(1);
        if n <= chunk_rows {
            return self.infer(input);
        }
        let rest: Vec<usize> = shape[1..].to_vec();
        let chunk_elems = chunk_rows * row_elems;
        let parts = scpar::par_map_chunks(cfg, input.data(), chunk_elems, |_ci, part| {
            let rows = part.len() / row_elems;
            let mut sub_shape = vec![rows];
            sub_shape.extend_from_slice(&rest);
            let sub = Tensor::from_vec(sub_shape, part.to_vec()).expect("chunk is whole rows");
            self.infer(&sub)
        });
        let out_rest: Vec<usize> = parts[0].shape()[1..].to_vec();
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in &parts {
            data.extend_from_slice(p.data());
        }
        let mut out_shape = vec![n];
        out_shape.extend_from_slice(&out_rest);
        Tensor::from_vec(out_shape, data).expect("chunks cover the batch")
    }

    /// Parallel batch inference returning row-wise probabilities; see
    /// [`Sequential::predict_ctx`].
    pub fn predict_proba_ctx(&self, input: &Tensor, ctx: &crate::exec::ExecCtx) -> Tensor {
        softmax_rows(&self.predict_ctx(input, ctx))
    }

    /// Deprecated alias for [`Sequential::predict_ctx`].
    ///
    /// # Panics
    ///
    /// Panics if the input has no dimensions.
    #[deprecated(since = "0.2.0", note = "use `predict_ctx(input, &ExecCtx)` instead")]
    pub fn predict_with(&self, input: &Tensor, cfg: &ScparConfig) -> Tensor {
        self.predict_ctx(input, &crate::exec::ExecCtx::serial().with_par(*cfg))
    }

    /// Deprecated alias for [`Sequential::predict_proba_ctx`].
    #[deprecated(
        since = "0.2.0",
        note = "use `predict_proba_ctx(input, &ExecCtx)` instead"
    )]
    pub fn predict_proba_with(&self, input: &Tensor, cfg: &ScparConfig) -> Tensor {
        self.predict_proba_ctx(input, &crate::exec::ExecCtx::serial().with_par(*cfg))
    }

    /// Runs inference and converts logits to row-wise probabilities.
    pub fn predict_proba(&mut self, input: &Tensor) -> Tensor {
        softmax_rows(&self.predict(input))
    }

    /// Runs inference and returns the argmax class per row.
    pub fn predict_classes(&mut self, input: &Tensor) -> Vec<usize> {
        self.predict(input).argmax_rows()
    }

    /// One optimization step on a batch of class-labelled data. Returns the
    /// batch loss.
    pub fn train_step(
        &mut self,
        input: &Tensor,
        classes: &[usize],
        loss: &mut dyn Loss,
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        let logits = self.forward(input, true);
        let (l, grad) = loss.forward(&logits, &LossTarget::Classes(classes));
        self.backward(&grad);
        optimizer.step(self.params_mut());
        l
    }

    /// One optimization step on a batch with dense regression targets.
    pub fn train_step_values(
        &mut self,
        input: &Tensor,
        targets: &Tensor,
        loss: &mut dyn Loss,
        optimizer: &mut dyn Optimizer,
    ) -> f32 {
        let out = self.forward(input, true);
        let (l, grad) = loss.forward(&out, &LossTarget::Values(targets));
        self.backward(&grad);
        optimizer.step(self.params_mut());
        l
    }

    /// Classification accuracy on a labelled set.
    ///
    /// # Panics
    ///
    /// Panics if `classes.len()` differs from the batch size.
    pub fn accuracy(&mut self, input: &Tensor, classes: &[usize]) -> f64 {
        let pred = self.predict_classes(input);
        assert_eq!(pred.len(), classes.len(), "one label per row");
        if classes.is_empty() {
            return 0.0;
        }
        let correct = pred.iter().zip(classes).filter(|(a, b)| a == b).count();
        correct as f64 / classes.len() as f64
    }

    /// Trains for `epochs` full-batch epochs, returning per-epoch losses.
    pub fn fit(
        &mut self,
        input: &Tensor,
        classes: &[usize],
        loss: &mut dyn Loss,
        optimizer: &mut dyn Optimizer,
        epochs: usize,
    ) -> Vec<f32> {
        (0..epochs)
            .map(|_| self.train_step(input, classes, loss, optimizer))
            .collect()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        if self.telemetry.is_enabled() {
            for (i, layer) in self.layers.iter_mut().enumerate() {
                let metric = format!(
                    "{}{}_{}_seconds",
                    METRIC_FORWARD_PREFIX,
                    i,
                    layer.name().to_ascii_lowercase()
                );
                let start = std::time::Instant::now();
                let y = layer.forward(&x, train);
                self.telemetry.observe(
                    &metric,
                    "wall-clock forward time of one layer",
                    start.elapsed().as_secs_f64(),
                );
                self.telemetry.work(
                    &format!("{}{}", KERNEL_LAYER_PREFIX, layer.name()),
                    layer.infer_work(&x, &y),
                );
                x = y;
            }
        } else {
            for layer in &mut self.layers {
                x = layer.forward(&x, train);
            }
        }
        x
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        if self.telemetry.is_enabled() {
            let _activity = sctelemetry::ActivityScope::enter("neural/infer");
            for layer in &self.layers {
                let y = layer.infer(&x);
                self.telemetry.work(
                    &format!("{}{}", KERNEL_LAYER_PREFIX, layer.name()),
                    layer.infer_work(&x, &y),
                );
                x = y;
            }
        } else {
            for layer in &self.layers {
                x = layer.infer(&x);
            }
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    fn name(&self) -> &'static str {
        "Sequential"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm1d, Dense, Dropout, Relu};
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::{Adam, Sgd};
    use simclock::SeededRng;

    fn xor_data() -> (Tensor, Vec<usize>) {
        (
            Tensor::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap(),
            vec![0, 1, 1, 0],
        )
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut net = Sequential::new()
            .with(Dense::new(2, 16, 1))
            .with(Relu::new())
            .with(Dense::new(16, 2, 2));
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.05);
        let losses = net.fit(&x, &y, &mut loss, &mut opt, 300);
        assert!(
            losses.last().unwrap() < &0.05,
            "final loss {}",
            losses.last().unwrap()
        );
        assert_eq!(net.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn loss_decreases() {
        let (x, y) = xor_data();
        let mut net = Sequential::new()
            .with(Dense::new(2, 8, 3))
            .with(Relu::new())
            .with(Dense::new(8, 2, 4));
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.5);
        let losses = net.fit(&x, &y, &mut loss, &mut opt, 200);
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn learns_gaussian_blobs_with_regularizers() {
        // Two separated gaussian clusters; a net with dropout + batch-norm
        // should reach high train accuracy.
        let mut rng = SeededRng::new(5);
        let n = 60;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let cls = i % 2;
            let cx = if cls == 0 { -2.0 } else { 2.0 };
            data.push((rng.gaussian(cx, 0.5)) as f32);
            data.push((rng.gaussian(cx, 0.5)) as f32);
            labels.push(cls);
        }
        let x = Tensor::from_vec(vec![n, 2], data).unwrap();
        let mut net = Sequential::new()
            .with(Dense::new(2, 16, 6))
            .with(BatchNorm1d::new(16))
            .with(Relu::new())
            .with(Dropout::new(0.2, 7))
            .with(Dense::new(16, 2, 8));
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.02);
        net.fit(&x, &labels, &mut loss, &mut opt, 150);
        assert!(net.accuracy(&x, &labels) > 0.95);
    }

    #[test]
    fn param_count_matches_architecture() {
        let net = Sequential::new()
            .with(Dense::new(3, 4, 0))
            .with(Dense::new(4, 2, 1));
        // (3*4 + 4) + (4*2 + 2) = 16 + 10
        assert_eq!(net.param_count(), 26);
    }

    #[test]
    fn predict_proba_rows_sum_to_one() {
        let mut net = Sequential::new().with(Dense::new(2, 3, 0));
        let p = net.predict_proba(&Tensor::ones(vec![5, 2]));
        for i in 0..5 {
            let s: f32 = (0..3).map(|j| p.at(i, j)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_names_in_order() {
        let net = Sequential::new()
            .with(Dense::new(1, 1, 0))
            .with(Relu::new());
        assert_eq!(net.layer_names(), vec!["Dense", "Relu"]);
    }

    #[test]
    fn telemetry_times_every_layer() {
        let t = sctelemetry::Telemetry::shared();
        let mut net = Sequential::new()
            .with(Dense::new(2, 4, 0))
            .with(Relu::new())
            .with(Dense::new(4, 2, 1))
            .with_telemetry(t.handle());
        net.predict(&Tensor::ones(vec![3, 2]));
        net.predict(&Tensor::ones(vec![3, 2]));

        let reg = t.registry();
        for name in [
            "scneural_net_forward_0_dense_seconds",
            "scneural_net_forward_1_relu_seconds",
            "scneural_net_forward_2_dense_seconds",
        ] {
            let h = reg.get(name).unwrap_or_else(|| panic!("missing {name}"));
            let snap = h.as_histogram().unwrap().snapshot();
            assert_eq!(snap.count, 2, "{name} observed once per forward");
            assert!(snap.min >= 0.0);
        }
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Sequential::new();
        let x = Tensor::ones(vec![2, 2]);
        assert_eq!(net.predict(&x), x);
        assert!(net.is_empty());
    }
}
