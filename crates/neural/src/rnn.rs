//! Recurrent layers for temporal analysis (paper §III-B).
//!
//! The paper's temporal methodology is a collection of RNN modules, in
//! particular LSTM networks whose "capability of discovering long-range
//! correlations is particularly useful for time series". [`Lstm`] implements
//! a full LSTM layer with backpropagation through time; stacking several and
//! finishing with [`LastStep`] + dense layers yields the Fig. 7 classifier
//! head.

use sctelemetry::WorkDelta;
use simclock::SeededRng;

use crate::init;
use crate::layers::{Layer, Param};
use crate::net::Sequential;
use crate::tensor::Tensor;

/// A single-layer LSTM over `[batch, time, features]` input, producing the
/// full hidden sequence `[batch, time, hidden]`.
///
/// Gate order inside the packed weight matrices is `i, f, g, o`. The forget
/// gate bias is initialized to 1, the standard trick for gradient flow early
/// in training.
///
/// # Examples
///
/// ```
/// use scneural::rnn::Lstm;
/// use scneural::layers::Layer;
/// use scneural::tensor::Tensor;
///
/// let mut lstm = Lstm::new(4, 8, 7);
/// let x = Tensor::zeros(vec![2, 5, 4]); // batch 2, 5 steps, 4 features
/// let h = lstm.forward(&x, true);
/// assert_eq!(h.shape(), &[2, 5, 8]);
/// ```
#[derive(Debug)]
pub struct Lstm {
    wx: Param, // [input, 4*hidden]
    wh: Param, // [hidden, 4*hidden]
    b: Param,  // [1, 4*hidden]
    input_size: usize,
    hidden: usize,
    cache: Option<LstmCache>,
}

#[derive(Debug)]
struct LstmCache {
    // Per-timestep saved values, each [n, *].
    xs: Vec<Tensor>,
    hs: Vec<Tensor>, // h_0 .. h_T (T+1 entries, h_0 = zeros)
    cs: Vec<Tensor>, // c_0 .. c_T
    gates: Vec<(Tensor, Tensor, Tensor, Tensor)>, // (i, f, g, o) post-activation
    n: usize,
    t: usize,
}

impl Lstm {
    /// Creates an LSTM mapping `input_size` features to `hidden` units.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new(input_size: usize, hidden: usize, seed: u64) -> Self {
        assert!(input_size > 0 && hidden > 0, "sizes must be positive");
        let mut rng = SeededRng::new(seed);
        let wx = init::xavier_uniform(vec![input_size, 4 * hidden], input_size, hidden, &mut rng);
        let wh = init::xavier_uniform(vec![hidden, 4 * hidden], hidden, hidden, &mut rng);
        let mut b = Tensor::zeros(vec![1, 4 * hidden]);
        // Forget-gate bias = 1.
        for j in hidden..2 * hidden {
            b.data_mut()[j] = 1.0;
        }
        Lstm {
            wx: Param::new(wx),
            wh: Param::new(wh),
            b: Param::new(b),
            input_size,
            hidden,
            cache: None,
        }
    }

    /// Hidden state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn slice_step(&self, input: &Tensor, n: usize, t_len: usize, t: usize) -> Tensor {
        let d = self.input_size;
        let mut data = Vec::with_capacity(n * d);
        for b in 0..n {
            let start = (b * t_len + t) * d;
            data.extend_from_slice(&input.data()[start..start + d]);
        }
        Tensor::from_vec(vec![n, d], data).expect("size computed above")
    }

    /// The pure forward recurrence shared by `forward` (which stores the
    /// BPTT cache) and `infer` (which discards it).
    fn forward_impl(&self, input: &Tensor) -> (Tensor, LstmCache) {
        let shape = input.shape();
        assert_eq!(
            shape.len(),
            3,
            "Lstm expects [batch, time, features], got {shape:?}"
        );
        assert_eq!(shape[2], self.input_size, "feature size mismatch");
        let (n, t_len) = (shape[0], shape[1]);
        let h = self.hidden;

        let mut hs = vec![Tensor::zeros(vec![n, h])];
        let mut cs = vec![Tensor::zeros(vec![n, h])];
        let mut xs = Vec::with_capacity(t_len);
        let mut gates = Vec::with_capacity(t_len);
        let mut out = vec![0.0f32; n * t_len * h];

        for t in 0..t_len {
            let x_t = self.slice_step(input, n, t_len, t);
            let h_prev = hs.last().expect("seeded with h0").clone();
            let c_prev = cs.last().expect("seeded with c0").clone();
            // z = x Wx + h Wh + b : [n, 4h]
            let mut z = x_t
                .matmul(&self.wx.value)
                .expect("input width checked")
                .add(&h_prev.matmul(&self.wh.value).expect("hidden width fixed"))
                .expect("same shape")
                .add_row_broadcast(&self.b.value);
            // Activate the gate blocks in place with vectorized scsimd
            // kernels: per row, columns [0, 2h) and [3h, 4h) are sigmoid
            // gates (input, forget, output) and [2h, 3h) is the tanh
            // candidate. Bit-identical to element-wise application.
            {
                let isa = scsimd::Isa::active();
                let zd = z.data_mut();
                for b in 0..n {
                    let row = &mut zd[b * 4 * h..(b + 1) * 4 * h];
                    scsimd::sigmoid_f32(&mut row[..2 * h], isa);
                    scsimd::tanh_f32(&mut row[2 * h..3 * h], isa);
                    scsimd::sigmoid_f32(&mut row[3 * h..], isa);
                }
            }
            let mut i_g = Tensor::zeros(vec![n, h]);
            let mut f_g = Tensor::zeros(vec![n, h]);
            let mut g_g = Tensor::zeros(vec![n, h]);
            let mut o_g = Tensor::zeros(vec![n, h]);
            let mut c_t = Tensor::zeros(vec![n, h]);
            let mut h_t = Tensor::zeros(vec![n, h]);
            for b in 0..n {
                for j in 0..h {
                    let i_v = z.at(b, j);
                    let f_v = z.at(b, h + j);
                    let g_v = z.at(b, 2 * h + j);
                    let o_v = z.at(b, 3 * h + j);
                    let c_v = f_v * c_prev.at(b, j) + i_v * g_v;
                    let h_v = o_v * scsimd::scalar::tanh(c_v);
                    i_g.set(b, j, i_v);
                    f_g.set(b, j, f_v);
                    g_g.set(b, j, g_v);
                    o_g.set(b, j, o_v);
                    c_t.set(b, j, c_v);
                    h_t.set(b, j, h_v);
                    out[(b * t_len + t) * h + j] = h_v;
                }
            }
            xs.push(x_t);
            gates.push((i_g, f_g, g_g, o_g));
            hs.push(h_t);
            cs.push(c_t);
        }
        let cache = LstmCache {
            xs,
            hs,
            cs,
            gates,
            n,
            t: t_len,
        };
        let out = Tensor::from_vec(vec![n, t_len, h], out).expect("size computed above");
        (out, cache)
    }
}

impl Layer for Lstm {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let (out, cache) = self.forward_impl(input);
        self.cache = Some(cache);
        out
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        self.forward_impl(input).0
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("backward before forward");
        let (n, t_len, h) = (cache.n, cache.t, self.hidden);
        assert_eq!(grad_out.shape(), &[n, t_len, h], "gradient shape mismatch");

        let mut dh_next = Tensor::zeros(vec![n, h]);
        let mut dc_next = Tensor::zeros(vec![n, h]);
        let mut grad_in = vec![0.0f32; n * t_len * self.input_size];

        for t in (0..t_len).rev() {
            let (i_g, f_g, g_g, o_g) = &cache.gates[t];
            let c_t = &cache.cs[t + 1];
            let c_prev = &cache.cs[t];
            let h_prev = &cache.hs[t];
            let x_t = &cache.xs[t];

            // dh = upstream grad at step t + carried dh_next.
            let mut dh = dh_next.clone();
            for b in 0..n {
                for j in 0..h {
                    let g = grad_out.data()[(b * t_len + t) * h + j];
                    dh.set(b, j, dh.at(b, j) + g);
                }
            }

            // Through h = o * tanh(c).
            let mut dz = Tensor::zeros(vec![n, 4 * h]); // pre-activation grads
            let mut dc = dc_next.clone();
            for b in 0..n {
                for j in 0..h {
                    let tanh_c = scsimd::scalar::tanh(c_t.at(b, j));
                    let dh_v = dh.at(b, j);
                    let o_v = o_g.at(b, j);
                    // dc += dh * o * (1 - tanh(c)^2)
                    dc.set(b, j, dc.at(b, j) + dh_v * o_v * (1.0 - tanh_c * tanh_c));
                    // do (pre-sigmoid)
                    dz.set(b, 3 * h + j, dh_v * tanh_c * o_v * (1.0 - o_v));
                }
            }
            for b in 0..n {
                for j in 0..h {
                    let dc_v = dc.at(b, j);
                    let i_v = i_g.at(b, j);
                    let f_v = f_g.at(b, j);
                    let g_v = g_g.at(b, j);
                    dz.set(b, j, dc_v * g_v * i_v * (1.0 - i_v)); // di
                    dz.set(b, h + j, dc_v * c_prev.at(b, j) * f_v * (1.0 - f_v)); // df
                    dz.set(b, 2 * h + j, dc_v * i_v * (1.0 - g_v * g_v)); // dg
                }
            }

            // Parameter gradients.
            self.wx
                .grad
                .add_assign(&x_t.transpose().matmul(&dz).expect("shapes fixed"));
            self.wh
                .grad
                .add_assign(&h_prev.transpose().matmul(&dz).expect("shapes fixed"));
            self.b.grad.add_assign(&dz.sum_rows());

            // Input and recurrent gradients.
            let dx = dz.matmul(&self.wx.value.transpose()).expect("shapes fixed");
            for b in 0..n {
                for d in 0..self.input_size {
                    grad_in[(b * t_len + t) * self.input_size + d] += dx.at(b, d);
                }
            }
            dh_next = dz.matmul(&self.wh.value.transpose()).expect("shapes fixed");
            // dc flows to previous step through the forget gate.
            dc_next = Tensor::zeros(vec![n, h]);
            for b in 0..n {
                for j in 0..h {
                    dc_next.set(b, j, dc.at(b, j) * f_g.at(b, j));
                }
            }
        }
        Tensor::from_vec(vec![n, t_len, self.input_size], grad_in).expect("size computed above")
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.wx, &mut self.wh, &mut self.b]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.wx, &self.wh, &self.b]
    }

    fn name(&self) -> &'static str {
        "Lstm"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // Per row per timestep: the four gate matmuls against wx and wh
        // (2·4h·(in+h) multiply-adds → 8h(in+h) flops), bias adds (4h),
        // gate activations (≈4 ops × 4h), and the cell/hidden updates
        // (c = f·c + i·g, h = o·tanh(c) ≈ 9 ops per hidden unit).
        let shape = input.shape();
        let (rows, t) = (
            shape.first().copied().unwrap_or(0) as u64,
            shape.get(1).copied().unwrap_or(0) as u64,
        );
        let (h, inp) = (self.hidden as u64, self.input_size as u64);
        let per_row_step = 8 * h * (inp + h) + 4 * h + 16 * h + 9 * h;
        WorkDelta::flops(rows * t * per_row_step)
            .with_bytes(4 * (input.len() + output.len()) as u64)
            .with_items(rows)
    }
}

/// Extracts the last timestep: `[batch, time, features]` → `[batch, features]`.
#[derive(Debug, Default)]
pub struct LastStep {
    input_shape: Option<Vec<usize>>,
}

impl LastStep {
    /// Creates the layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for LastStep {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape().to_vec();
        assert_eq!(shape.len(), 3, "LastStep expects [batch, time, features]");
        let (n, t, d) = (shape[0], shape[1], shape[2]);
        let mut out = Vec::with_capacity(n * d);
        for b in 0..n {
            let start = (b * t + (t - 1)) * d;
            out.extend_from_slice(&input.data()[start..start + d]);
        }
        self.input_shape = Some(shape);
        Tensor::from_vec(vec![n, d], out).expect("size computed above")
    }

    fn infer(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "LastStep expects [batch, time, features]");
        let (n, t, d) = (shape[0], shape[1], shape[2]);
        let mut out = Vec::with_capacity(n * d);
        for b in 0..n {
            let start = (b * t + (t - 1)) * d;
            out.extend_from_slice(&input.data()[start..start + d]);
        }
        Tensor::from_vec(vec![n, d], out).expect("size computed above")
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self.input_shape.clone().expect("backward before forward");
        let (n, t, d) = (shape[0], shape[1], shape[2]);
        let mut grad_in = Tensor::zeros(shape);
        for b in 0..n {
            let start = (b * t + (t - 1)) * d;
            for j in 0..d {
                grad_in.data_mut()[start + j] = grad_out.at(b, j);
            }
        }
        grad_in
    }

    fn name(&self) -> &'static str {
        "LastStep"
    }

    fn infer_work(&self, input: &Tensor, output: &Tensor) -> WorkDelta {
        // A slice copy of the final timestep: reads and writes only the
        // selected rows, no arithmetic.
        let rows = input.shape().first().copied().unwrap_or(0) as u64;
        WorkDelta::bytes(8 * output.len() as u64).with_items(rows)
    }
}

/// Builds the standard sequence classifier of Fig. 7's RNN half: stacked
/// LSTMs, last-step extraction, and a dense softmax head.
///
/// # Panics
///
/// Panics if `hidden_sizes` is empty.
pub fn sequence_classifier(
    input_size: usize,
    hidden_sizes: &[usize],
    classes: usize,
    seed: u64,
) -> Sequential {
    assert!(!hidden_sizes.is_empty(), "need at least one LSTM layer");
    let mut net = Sequential::new();
    let mut in_size = input_size;
    for (i, &h) in hidden_sizes.iter().enumerate() {
        net.push(Box::new(Lstm::new(in_size, h, seed.wrapping_add(i as u64))));
        in_size = h;
    }
    net.push(Box::new(LastStep::new()));
    net.push(Box::new(crate::layers::Dense::new(
        in_size,
        classes,
        seed.wrapping_add(1000),
    )));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::SoftmaxCrossEntropy;
    use crate::optim::Adam;

    #[test]
    fn lstm_output_shape() {
        let mut lstm = Lstm::new(3, 5, 1);
        let x = Tensor::zeros(vec![2, 7, 3]);
        assert_eq!(lstm.forward(&x, true).shape(), &[2, 7, 5]);
    }

    #[test]
    fn lstm_zero_input_nonzero_bias_flows() {
        // With forget bias 1 and zero input, hidden stays near zero but the
        // computation must be finite and deterministic.
        let mut lstm = Lstm::new(2, 4, 2);
        let x = Tensor::zeros(vec![1, 3, 2]);
        let h = lstm.forward(&x, true);
        assert!(h.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lstm_gradient_check_input() {
        let mut lstm = Lstm::new(2, 3, 3);
        let x = Tensor::from_vec(vec![1, 3, 2], vec![0.5, -0.2, 0.1, 0.8, -0.4, 0.3]).unwrap();
        let y = lstm.forward(&x, true);
        let grad_in = lstm.backward(&Tensor::ones(y.shape().to_vec()));

        let eps = 1e-2;
        for idx in 0..6 {
            let mut l2 = Lstm::new(2, 3, 3);
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let fp = l2.forward(&xp, true).sum();
            let mut l3 = Lstm::new(2, 3, 3);
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fm = l3.forward(&xm, true).sum();
            let num = (fp - fm) / (2.0 * eps);
            let ana = grad_in.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "idx {idx}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn lstm_gradient_check_weights() {
        let x = Tensor::from_vec(vec![1, 2, 2], vec![0.4, -0.6, 0.2, 0.9]).unwrap();
        let mut lstm = Lstm::new(2, 2, 4);
        let y = lstm.forward(&x, true);
        lstm.backward(&Tensor::ones(y.shape().to_vec()));
        let analytic = lstm.params()[0].grad.clone();

        let eps = 1e-2;
        for idx in [0, 3, 7, 11, 15] {
            let mut lp = Lstm::new(2, 2, 4);
            lp.params_mut()[0].value.data_mut()[idx] += eps;
            let fp = lp.forward(&x, true).sum();
            let mut lm = Lstm::new(2, 2, 4);
            lm.params_mut()[0].value.data_mut()[idx] -= eps;
            let fm = lm.forward(&x, true).sum();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - analytic.data()[idx]).abs() < 2e-2,
                "wx[{idx}]: numeric {num} analytic {}",
                analytic.data()[idx]
            );
        }
    }

    #[test]
    fn last_step_extracts_and_routes() {
        let mut ls = LastStep::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let y = ls.forward(&x, true);
        assert_eq!(y.data(), &[3., 4.]);
        let g = ls.backward(&Tensor::ones(vec![1, 2]));
        assert_eq!(g.data(), &[0., 0., 1., 1.]);
    }

    #[test]
    fn learns_sequence_parity() {
        // Classify whether a ±1 sequence ends with the same sign it started
        // with — requires remembering the first element.
        let mut rng = simclock::SeededRng::new(5);
        let (n, t) = (40, 6);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let mut seq = Vec::with_capacity(t);
            for _ in 0..t {
                seq.push(if rng.chance(0.5) { 1.0f32 } else { -1.0 });
            }
            labels.push(usize::from(seq[0] == seq[t - 1]));
            data.extend(seq);
        }
        let x = Tensor::from_vec(vec![n, t, 1], data).unwrap();
        let mut net = sequence_classifier(1, &[12], 2, 6);
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.02);
        for _ in 0..250 {
            net.train_step(&x, &labels, &mut loss, &mut opt);
        }
        let acc = net.accuracy(&x, &labels);
        assert!(acc >= 0.9, "sequence accuracy {acc}");
    }

    #[test]
    fn stacked_lstm_shapes() {
        let mut net = sequence_classifier(3, &[8, 4], 5, 7);
        let x = Tensor::zeros(vec![2, 4, 3]);
        let out = net.predict(&x);
        assert_eq!(out.shape(), &[2, 5]);
    }
}
