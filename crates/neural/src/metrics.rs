//! Classification metrics.

/// A confusion matrix over `k` classes.
///
/// # Examples
///
/// ```
/// use scneural::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::new(2);
/// cm.record(0, 0);
/// cm.record(0, 1);
/// cm.record(1, 1);
/// assert_eq!(cm.total(), 3);
/// assert!((cm.accuracy() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    k: usize,
    counts: Vec<u64>, // counts[actual * k + predicted]
}

impl ConfusionMatrix {
    /// Creates a zeroed `k`×`k` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one class");
        ConfusionMatrix {
            k,
            counts: vec![0; k * k],
        }
    }

    /// Builds a matrix from parallel actual/predicted label slices.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ or a label is out of range.
    pub fn from_labels(k: usize, actual: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(actual.len(), predicted.len(), "label slices must align");
        let mut cm = ConfusionMatrix::new(k);
        for (&a, &p) in actual.iter().zip(predicted) {
            cm.record(a, p);
        }
        cm
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.k
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either label is `>= k`.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.k && predicted < self.k, "label out of range");
        self.counts[actual * self.k + predicted] += 1;
    }

    /// Count in cell `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.k + predicted]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (0 when empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.k).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Precision for class `c`: TP / (TP + FP). Zero when the class is never
    /// predicted.
    pub fn precision(&self, c: usize) -> f64 {
        let tp = self.count(c, c);
        let predicted: u64 = (0..self.k).map(|a| self.count(a, c)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall for class `c`: TP / (TP + FN). Zero when the class never occurs.
    pub fn recall(&self, c: usize) -> f64 {
        let tp = self.count(c, c);
        let actual: u64 = (0..self.k).map(|p| self.count(c, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score for class `c` (harmonic mean of precision and recall).
    pub fn f1(&self, c: usize) -> f64 {
        let p = self.precision(c);
        let r = self.recall(c);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over all classes.
    pub fn macro_f1(&self) -> f64 {
        (0..self.k).map(|c| self.f1(c)).sum::<f64>() / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let cm = ConfusionMatrix::from_labels(3, &[0, 1, 2, 1], &[0, 1, 2, 1]);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
    }

    #[test]
    fn known_precision_recall() {
        // actual:    0 0 1 1 1
        // predicted: 0 1 1 1 0
        let cm = ConfusionMatrix::from_labels(2, &[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0]);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.precision(0) - 0.5).abs() < 1e-12);
        assert!((cm.accuracy() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_zero() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(0), 0.0);
        assert_eq!(cm.recall(0), 0.0);
        assert_eq!(cm.f1(0), 0.0);
    }

    #[test]
    fn f1_harmonic_mean() {
        let cm = ConfusionMatrix::from_labels(2, &[1, 1, 1, 0], &[1, 1, 0, 1]);
        let p = cm.precision(1);
        let r = cm.recall(1);
        assert!((cm.f1(1) - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_rejects_bad_label() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }
}
