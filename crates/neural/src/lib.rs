#![allow(clippy::needless_range_loop)] // index loops are the clearer idiom in math kernels
//! # scneural — deep learning framework
//!
//! The TensorFlow substitute for the smart-city cyberinfrastructure (paper
//! §II-C1): a small but complete deep-learning framework with explicit
//! backpropagation, written from scratch on top of a row-major [`Tensor`].
//!
//! It implements every methodology family of paper §III:
//!
//! - **Spatial analysis (§III-A)** — [`layers::Conv2d`], pooling, plus
//!   [`blocks::ResidualBlock`] (Fig. 8, including the paper's conv-shortcut
//!   variant) and [`blocks::InceptionBlock`] (GoogLeNet-style).
//! - **Temporal analysis (§III-B)** — [`rnn::Lstm`] with full backpropagation
//!   through time and [`rnn::sequence_classifier`].
//! - **Multi-modal analysis (§III-C)** — [`autoencoder::Autoencoder`],
//!   [`autoencoder::FusionAutoencoder`], and [`cca::Cca`] (canonical
//!   correlation analysis).
//! - **Early-exit inference (Figs. 5 & 7)** — [`early_exit::EarlyExitNet`]
//!   splits a backbone between a local device and an analysis server, exiting
//!   early when a confidence/entropy policy is satisfied.
//!
//! # Examples
//!
//! Train a tiny classifier:
//!
//! ```
//! use scneural::layers::{Dense, Relu};
//! use scneural::net::Sequential;
//! use scneural::loss::SoftmaxCrossEntropy;
//! use scneural::optim::Sgd;
//! use scneural::tensor::Tensor;
//!
//! let mut net = Sequential::new()
//!     .with(Dense::new(2, 8, 1))
//!     .with(Relu::new())
//!     .with(Dense::new(8, 2, 2));
//! let x = Tensor::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
//! let y = vec![0usize, 1, 1, 0]; // XOR
//! let mut opt = Sgd::new(0.5);
//! let mut loss = SoftmaxCrossEntropy::new();
//! for _ in 0..400 {
//!     net.train_step(&x, &y, &mut loss, &mut opt);
//! }
//! let acc = net.accuracy(&x, &y);
//! assert!(acc >= 0.75, "XOR accuracy {acc}");
//! ```

pub mod autoencoder;
pub mod blocks;
pub mod cca;
pub mod early_exit;
pub mod exec;
pub mod init;
pub mod layers;
pub mod linalg;
pub mod loss;
pub mod metrics;
pub mod net;
pub mod optim;
pub mod rnn;
pub mod serialize;
pub mod tensor;

pub use exec::ExecCtx;
pub use layers::{Layer, Param};
pub use net::Sequential;
pub use tensor::{Tensor, TensorError};
