//! Gradient-descent optimizers.

use crate::layers::Param;
use crate::tensor::Tensor;

/// Scales all gradients so their global L2 norm is at most `max_norm` —
/// the standard stabilizer for recurrent nets. Returns the pre-clip norm.
pub fn clip_global_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total: f32 = params.iter().map(|p| p.grad.norm_sq()).sum();
    let norm = total.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            for g in p.grad.data_mut() {
                *g *= scale;
            }
        }
    }
    norm
}

/// An optimizer updating parameters in place from their accumulated
/// gradients, then zeroing the gradients.
///
/// Optimizers that keep per-parameter state (momentum, Adam moments) key it
/// by position in the `params` vector, which is stable because network
/// architectures are fixed after construction.
pub trait Optimizer: std::fmt::Debug {
    /// Applies one update step to `params` and clears their gradients.
    fn step(&mut self, params: Vec<&mut Param>);
}

/// Plain stochastic gradient descent: `w -= lr * g`, with optional
/// global-norm gradient clipping and exponential learning-rate decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    clip: Option<f32>,
    decay: f32,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            clip: None,
            decay: 1.0,
        }
    }

    /// Enables global-norm gradient clipping (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn with_clip(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "max_norm must be positive");
        self.clip = Some(max_norm);
        self
    }

    /// Multiplies the learning rate by `factor` after every step
    /// (exponential decay; builder style).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    pub fn with_decay(mut self, factor: f32) -> Self {
        assert!(factor > 0.0 && factor <= 1.0, "decay factor in (0, 1]");
        self.decay = factor;
        self
    }

    /// Current (possibly decayed) learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, mut params: Vec<&mut Param>) {
        if let Some(max) = self.clip {
            clip_global_norm(&mut params, max);
        }
        for p in params {
            let g = p.grad.data().to_vec();
            for (w, g) in p.value.data_mut().iter_mut().zip(g) {
                *w -= self.lr * g;
            }
            p.zero_grad();
        }
        self.lr *= self.decay;
    }
}

/// SGD with classical momentum: `v = μv + g; w -= lr * v`.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f32,
    mu: f32,
    velocity: Vec<Tensor>,
}

impl Momentum {
    /// Creates momentum SGD.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `mu` is outside `[0, 1)`.
    pub fn new(lr: f32, mu: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        Momentum {
            lr,
            mu,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: Vec<&mut Param>) {
        if self.velocity.len() < params.len() {
            for p in params.iter().skip(self.velocity.len()) {
                self.velocity.push(Tensor::zeros(p.value.shape().to_vec()));
            }
        }
        for (i, p) in params.into_iter().enumerate() {
            let v = &mut self.velocity[i];
            for ((v, &g), w) in v
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(p.value.data().to_vec())
            {
                *v = self.mu * *v + g;
                let _ = w;
            }
            for (w, &v) in p.value.data_mut().iter_mut().zip(v.data()) {
                *w -= self.lr * v;
            }
            p.zero_grad();
        }
    }
}

/// Adam (Kingma & Ba 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    clip: Option<f32>,
}

impl Adam {
    /// Creates Adam with the standard β₁=0.9, β₂=0.999.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            clip: None,
        }
    }

    /// Enables global-norm gradient clipping (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `max_norm` is not positive.
    pub fn with_clip(mut self, max_norm: f32) -> Self {
        assert!(max_norm > 0.0, "max_norm must be positive");
        self.clip = Some(max_norm);
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, mut params: Vec<&mut Param>) {
        if let Some(max) = self.clip {
            clip_global_norm(&mut params, max);
        }
        if self.m.len() < params.len() {
            for p in params.iter().skip(self.m.len()) {
                self.m.push(Tensor::zeros(p.value.shape().to_vec()));
                self.v.push(Tensor::zeros(p.value.shape().to_vec()));
            }
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, p) in params.into_iter().enumerate() {
            let m = self.m[i].data_mut();
            let v = self.v[i].data_mut();
            let g = p.grad.data().to_vec();
            for (idx, w) in p.value.data_mut().iter_mut().enumerate() {
                let gi = g[idx];
                m[idx] = self.beta1 * m[idx] + (1.0 - self.beta1) * gi;
                v[idx] = self.beta2 * v[idx] + (1.0 - self.beta2) * gi * gi;
                let m_hat = m[idx] / bc1;
                let v_hat = v[idx] / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) -> Tensor {
        // L = sum(w^2); dL/dw = 2w
        p.value.scale(2.0)
    }

    fn run<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let mut p = Param::new(Tensor::from_vec(vec![1, 2], vec![3.0, -2.0]).unwrap());
        for _ in 0..steps {
            p.grad = quadratic_grad(&p);
            opt.step(vec![&mut p]);
        }
        p.value.norm_sq()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run(Sgd::new(0.1), 100) < 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        assert!(run(Momentum::new(0.05, 0.9), 200) < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(run(Adam::new(0.2), 300) < 1e-4);
    }

    #[test]
    fn step_clears_gradients() {
        let mut p = Param::new(Tensor::ones(vec![2, 2]));
        p.grad = Tensor::ones(vec![2, 2]);
        Sgd::new(0.1).step(vec![&mut p]);
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn sgd_exact_update() {
        let mut p = Param::new(Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap());
        p.grad = Tensor::from_vec(vec![1, 1], vec![0.5]).unwrap();
        Sgd::new(0.2).step(vec![&mut p]);
        assert!((p.value.data()[0] - 0.9).abs() < 1e-7);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    fn adam_handles_multiple_params() {
        let mut a = Param::new(Tensor::ones(vec![2, 2]));
        let mut b = Param::new(Tensor::ones(vec![3, 1]));
        let mut opt = Adam::new(0.1);
        for _ in 0..50 {
            a.grad = a.value.scale(2.0);
            b.grad = b.value.scale(2.0);
            opt.step(vec![&mut a, &mut b]);
        }
        assert!(a.value.norm_sq() < 0.1);
        assert!(b.value.norm_sq() < 0.1);
    }
}

#[cfg(test)]
mod clip_tests {
    use super::*;

    #[test]
    fn clipping_bounds_global_norm() {
        let mut a = Param::new(Tensor::ones(vec![2, 2]));
        a.grad = Tensor::full(vec![2, 2], 3.0); // norm contribution 36
        let mut b = Param::new(Tensor::ones(vec![1, 2]));
        b.grad = Tensor::full(vec![1, 2], 4.0); // contribution 32
        let mut refs = vec![&mut a, &mut b];
        let pre = clip_global_norm(&mut refs, 1.0);
        assert!((pre - 68.0f32.sqrt()).abs() < 1e-4);
        let post: f32 = (a.grad.norm_sq() + b.grad.norm_sq()).sqrt();
        assert!((post - 1.0).abs() < 1e-5, "post-clip norm {post}");
    }

    #[test]
    fn small_gradients_untouched() {
        let mut p = Param::new(Tensor::ones(vec![2]));
        p.grad = Tensor::full(vec![2], 0.1);
        let before = p.grad.clone();
        clip_global_norm(&mut [&mut p], 10.0);
        assert_eq!(p.grad, before);
    }

    #[test]
    fn clipped_sgd_still_converges() {
        let mut p = Param::new(Tensor::from_vec(vec![1, 1], vec![100.0]).unwrap());
        let mut opt = Sgd::new(0.4).with_clip(5.0);
        for _ in 0..300 {
            p.grad = p.value.scale(2.0);
            opt.step(vec![&mut p]);
        }
        assert!(p.value.norm_sq() < 1e-3, "value {:?}", p.value);
    }

    #[test]
    fn decay_shrinks_lr() {
        let mut opt = Sgd::new(1.0).with_decay(0.5);
        let mut p = Param::new(Tensor::ones(vec![1]));
        for _ in 0..3 {
            p.grad = Tensor::ones(vec![1]);
            opt.step(vec![&mut p]);
        }
        assert!((opt.lr() - 0.125).abs() < 1e-7);
        // Updates: 1 - (1 + 0.5 + 0.25) = -0.75
        assert!((p.value.data()[0] + 0.75).abs() < 1e-6);
    }

    #[test]
    fn adam_with_clip_converges() {
        let mut p = Param::new(Tensor::from_vec(vec![1, 2], vec![50.0, -50.0]).unwrap());
        let mut opt = Adam::new(0.5).with_clip(1.0);
        for _ in 0..400 {
            p.grad = p.value.scale(2.0);
            opt.step(vec![&mut p]);
        }
        assert!(p.value.norm_sq() < 0.1);
    }
}
