//! Execution context shared by every inference kernel.
//!
//! Before [`ExecCtx`], each kernel grew its own ad-hoc variants —
//! `matmul` / `matmul_with` / `matmul_rec`, `predict` / `predict_with` —
//! and call sites had to thread a `ScparConfig` here and a
//! `TelemetryHandle` there. The context bundles all execution policy in
//! one cheap, cloneable value:
//!
//! * **Parallelism** — the [`scpar::ScparConfig`] used for panel fan-out.
//! * **Telemetry** — the [`sctelemetry::TelemetryHandle`] kernels record
//!   work deltas to when enabled.
//! * **ISA** — the [`scsimd::Isa`] backend for vectorized kernels.
//!
//! Each kernel now has exactly one context-taking entry point
//! ([`crate::Tensor::matmul_ctx`], [`crate::linalg::Mat::matmul_ctx`],
//! [`crate::Sequential::predict_ctx`], …); the old `_with` / `_rec`
//! variants survive as thin deprecated shims.
//!
//! The determinism contract is unchanged: results are byte-identical for
//! any thread count **and any ISA** (scsimd's strict profile), so every
//! field of the context is a pure performance/observability knob.
//!
//! # Examples
//!
//! ```
//! use scneural::exec::ExecCtx;
//! use scneural::tensor::Tensor;
//!
//! let ctx = ExecCtx::from_env(); // SCPAR_THREADS + SCSIMD_FORCE
//! let a = Tensor::eye(4);
//! let b = Tensor::full(vec![4, 4], 2.0);
//! let c = a.matmul_ctx(&b, &ctx)?;
//! assert_eq!(c.data(), b.data());
//! # Ok::<(), scneural::tensor::TensorError>(())
//! ```

/// Bundled execution policy for inference kernels: parallelism,
/// telemetry, and SIMD backend.
///
/// The ISA field is advisory for layered entry points: layer-internal
/// kernels (a `Dense` inside [`crate::Sequential::predict_ctx`], say)
/// dispatch on the process-wide [`scsimd::Isa::active`], which honors
/// `SCSIMD_FORCE`. Because the strict profile makes every backend
/// bit-identical, the distinction is invisible in results — only in
/// which instructions execute.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    par: scpar::ScparConfig,
    telemetry: sctelemetry::TelemetryHandle,
    isa: scsimd::Isa,
}

impl Default for ExecCtx {
    /// Same as [`ExecCtx::serial`].
    fn default() -> Self {
        ExecCtx::serial()
    }
}

impl ExecCtx {
    /// Serial execution, disabled telemetry, process-default ISA — the
    /// context equivalent of the plain `matmul` / `predict` methods.
    pub fn serial() -> Self {
        ExecCtx {
            par: scpar::ScparConfig::serial(),
            telemetry: sctelemetry::TelemetryHandle::disabled(),
            isa: scsimd::Isa::active(),
        }
    }

    /// Environment-driven context: `SCPAR_THREADS` for parallelism,
    /// `SCSIMD_FORCE` for the ISA, telemetry disabled.
    pub fn from_env() -> Self {
        ExecCtx {
            par: scpar::ScparConfig::from_env(),
            telemetry: sctelemetry::TelemetryHandle::disabled(),
            isa: scsimd::Isa::active(),
        }
    }

    /// Replaces the parallelism config.
    pub fn with_par(mut self, par: scpar::ScparConfig) -> Self {
        self.par = par;
        self
    }

    /// Replaces the telemetry handle.
    pub fn with_telemetry(mut self, telemetry: sctelemetry::TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the SIMD backend (requests the host cannot run degrade
    /// to scalar inside scsimd).
    pub fn with_isa(mut self, isa: scsimd::Isa) -> Self {
        self.isa = isa;
        self
    }

    /// The parallelism config.
    pub fn par(&self) -> &scpar::ScparConfig {
        &self.par
    }

    /// The telemetry handle.
    pub fn telemetry(&self) -> &sctelemetry::TelemetryHandle {
        &self.telemetry
    }

    /// The SIMD backend.
    pub fn isa(&self) -> scsimd::Isa {
        self.isa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_ctx_is_serial_and_silent() {
        let ctx = ExecCtx::serial();
        assert!(!ctx.par().is_parallel());
        assert!(!ctx.telemetry().is_enabled());
        assert!(ctx.isa().is_supported());
    }

    #[test]
    fn builders_replace_fields() {
        let ctx = ExecCtx::serial()
            .with_par(scpar::ScparConfig::with_threads(4))
            .with_isa(scsimd::Isa::Scalar);
        assert!(ctx.par().is_parallel());
        assert_eq!(ctx.isa(), scsimd::Isa::Scalar);
    }

    #[test]
    fn default_is_usable() {
        let ctx = ExecCtx::default();
        assert!(!ctx.telemetry().is_enabled());
    }
}
