//! Execution context shared by every inference kernel.
//!
//! Before [`ExecCtx`], each kernel grew its own ad-hoc variants —
//! `matmul` / `matmul_with` / `matmul_rec`, `predict` / `predict_with` —
//! and call sites had to thread a `ScparConfig` here and a
//! `TelemetryHandle` there. The context bundles all execution policy in
//! one cheap, cloneable value:
//!
//! * **Parallelism** — the [`scpar::ScparConfig`] used for panel fan-out.
//! * **Telemetry** — the [`sctelemetry::TelemetryHandle`] kernels record
//!   work deltas to when enabled.
//! * **ISA** — the [`scsimd::Isa`] backend for vectorized kernels.
//! * **Tuning** — the [`sctune::Tuner`] serving per-shape schedule
//!   parameters (panel heights, chunk sizes) from the committed
//!   `tuning_table.json`. Disabled by default; [`ExecCtx::from_env`]
//!   enables it when `SCTUNE` is set.
//!
//! Each kernel now has exactly one context-taking entry point
//! ([`crate::Tensor::matmul_ctx`], [`crate::linalg::Mat::matmul_ctx`],
//! [`crate::Sequential::predict_ctx`], …); the old `_with` / `_rec`
//! variants survive as thin deprecated shims.
//!
//! The determinism contract is unchanged: results are byte-identical for
//! any thread count **and any ISA** (scsimd's strict profile), so every
//! field of the context is a pure performance/observability knob. The
//! tuner keeps that promise because it only ever moves *schedule*
//! boundaries (which rows share an scpar task), never the per-element
//! operation order — and kernels keep their work *accounting* pinned to
//! the nominal constants, so recorded telemetry is byte-identical whether
//! tuning is on or off.
//!
//! # Examples
//!
//! Build a context field by field:
//!
//! ```
//! use scneural::exec::ExecCtx;
//! use scneural::tensor::Tensor;
//!
//! let ctx = ExecCtx::from_env(); // SCPAR_THREADS + SCSIMD_FORCE + SCTUNE
//! let a = Tensor::eye(4);
//! let b = Tensor::full(vec![4, 4], 2.0);
//! let c = a.matmul_ctx(&b, &ctx)?;
//! assert_eq!(c.data(), b.data());
//! # Ok::<(), scneural::tensor::TensorError>(())
//! ```
//!
//! Attach an explicit tuning table (what the benches do, so CI machines
//! never depend on the working directory):
//!
//! ```
//! use scneural::exec::ExecCtx;
//! use scneural::tensor::Tensor;
//! use sctune::{TuneKey, Tuner, TuningTable};
//!
//! let mut table = TuningTable::empty();
//! table.insert(TuneKey::matmul_f32(4096, 16, 16, 2, "any"), 256);
//! let tuned = ExecCtx::serial()
//!     .with_par(scpar::ScparConfig::with_threads(2))
//!     .with_tuner(Tuner::from_table(table));
//!
//! // Same bits as the untuned context — only the schedule differs.
//! let a = Tensor::ones(vec![64, 16]);
//! let b = Tensor::ones(vec![16, 16]);
//! let tuned_out = a.matmul_ctx(&b, &tuned)?;
//! let plain_out = a.matmul_ctx(&b, &ExecCtx::serial())?;
//! assert_eq!(tuned_out.data(), plain_out.data());
//! # Ok::<(), scneural::tensor::TensorError>(())
//! ```

/// Bundled execution policy for inference kernels: parallelism,
/// telemetry, and SIMD backend.
///
/// The ISA field is advisory for layered entry points: layer-internal
/// kernels (a `Dense` inside [`crate::Sequential::predict_ctx`], say)
/// dispatch on the process-wide [`scsimd::Isa::active`], which honors
/// `SCSIMD_FORCE`. Because the strict profile makes every backend
/// bit-identical, the distinction is invisible in results — only in
/// which instructions execute.
#[derive(Debug, Clone)]
pub struct ExecCtx {
    par: scpar::ScparConfig,
    telemetry: sctelemetry::TelemetryHandle,
    isa: scsimd::Isa,
    tuner: sctune::Tuner,
}

impl Default for ExecCtx {
    /// Same as [`ExecCtx::serial`].
    fn default() -> Self {
        ExecCtx::serial()
    }
}

impl ExecCtx {
    /// Serial execution, disabled telemetry, process-default ISA, tuning
    /// off — the context equivalent of the plain `matmul` / `predict`
    /// methods.
    pub fn serial() -> Self {
        ExecCtx {
            par: scpar::ScparConfig::serial(),
            telemetry: sctelemetry::TelemetryHandle::disabled(),
            isa: scsimd::Isa::active(),
            tuner: sctune::Tuner::disabled(),
        }
    }

    /// Environment-driven context: `SCPAR_THREADS` for parallelism,
    /// `SCSIMD_FORCE` for the ISA, `SCTUNE`/`SCTUNE_TABLE` for tuning,
    /// telemetry disabled.
    pub fn from_env() -> Self {
        ExecCtx {
            par: scpar::ScparConfig::from_env(),
            telemetry: sctelemetry::TelemetryHandle::disabled(),
            isa: scsimd::Isa::active(),
            tuner: sctune::Tuner::from_env(),
        }
    }

    /// Replaces the parallelism config.
    pub fn with_par(mut self, par: scpar::ScparConfig) -> Self {
        self.par = par;
        self
    }

    /// Replaces the telemetry handle.
    pub fn with_telemetry(mut self, telemetry: sctelemetry::TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the SIMD backend (requests the host cannot run degrade
    /// to scalar inside scsimd).
    pub fn with_isa(mut self, isa: scsimd::Isa) -> Self {
        self.isa = isa;
        self
    }

    /// The parallelism config.
    pub fn par(&self) -> &scpar::ScparConfig {
        &self.par
    }

    /// The telemetry handle.
    pub fn telemetry(&self) -> &sctelemetry::TelemetryHandle {
        &self.telemetry
    }

    /// Replaces the tuner handle.
    pub fn with_tuner(mut self, tuner: sctune::Tuner) -> Self {
        self.tuner = tuner;
        self
    }

    /// The SIMD backend.
    pub fn isa(&self) -> scsimd::Isa {
        self.isa
    }

    /// The tuner handle (disabled unless explicitly attached or enabled
    /// through `SCTUNE`).
    pub fn tuner(&self) -> &sctune::Tuner {
        &self.tuner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_ctx_is_serial_and_silent() {
        let ctx = ExecCtx::serial();
        assert!(!ctx.par().is_parallel());
        assert!(!ctx.telemetry().is_enabled());
        assert!(ctx.isa().is_supported());
    }

    #[test]
    fn builders_replace_fields() {
        let ctx = ExecCtx::serial()
            .with_par(scpar::ScparConfig::with_threads(4))
            .with_isa(scsimd::Isa::Scalar);
        assert!(ctx.par().is_parallel());
        assert_eq!(ctx.isa(), scsimd::Isa::Scalar);
    }

    #[test]
    fn default_is_usable() {
        let ctx = ExecCtx::default();
        assert!(!ctx.telemetry().is_enabled());
        assert!(!ctx.tuner().is_enabled());
    }

    #[test]
    fn with_tuner_attaches_a_table() {
        let mut table = sctune::TuningTable::empty();
        table.insert(sctune::TuneKey::predict(256, 8, 4), 64);
        let ctx = ExecCtx::serial().with_tuner(sctune::Tuner::from_table(table));
        assert!(ctx.tuner().is_enabled());
        assert_eq!(ctx.tuner().predict_chunk_rows(256, 8, 4, 32), 64);
    }
}
