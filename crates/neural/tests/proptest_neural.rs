//! Property tests for the deep-learning framework's core invariants.

use proptest::prelude::*;
use scneural::layers::{softmax_rows, Conv2d, Dense, Layer, Relu};
use scneural::tensor::Tensor;

fn small_tensor(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(vec![rows, cols], data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (Aᵀ)ᵀ = A for any matrix.
    #[test]
    fn transpose_involution(t in small_tensor(3, 5)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_law(a in small_tensor(3, 4), b in small_tensor(4, 2)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// A(B + C) = AB + AC (distributivity).
    #[test]
    fn matmul_distributes(
        a in small_tensor(2, 3),
        b in small_tensor(3, 2),
        c in small_tensor(3, 2),
    ) {
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// Softmax rows always sum to 1 and lie in (0, 1].
    #[test]
    fn softmax_is_distribution(t in small_tensor(4, 6)) {
        let s = softmax_rows(&t);
        for i in 0..4 {
            let row_sum: f32 = (0..6).map(|j| s.at(i, j)).sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            for j in 0..6 {
                prop_assert!(s.at(i, j) > 0.0 && s.at(i, j) <= 1.0);
            }
        }
    }

    /// Softmax is shift-invariant: softmax(x + c) = softmax(x).
    #[test]
    fn softmax_shift_invariant(t in small_tensor(2, 4), shift in -5.0f32..5.0) {
        let a = softmax_rows(&t);
        let b = softmax_rows(&t.map(|v| v + shift));
        for (x, y) in a.data().iter().zip(b.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Dense layers are linear: f(x + y) = f(x) + f(y) - f(0).
    #[test]
    fn dense_is_affine(x in small_tensor(1, 4), y in small_tensor(1, 4), seed in any::<u64>()) {
        let mut layer = Dense::new(4, 3, seed);
        let f0 = layer.forward(&Tensor::zeros(vec![1, 4]), false);
        let fx = layer.forward(&x, false);
        let fy = layer.forward(&y, false);
        let fxy = layer.forward(&x.add(&y).unwrap(), false);
        let rhs = fx.add(&fy).unwrap().sub(&f0).unwrap();
        for (a, b) in fxy.data().iter().zip(rhs.data()) {
            prop_assert!((a - b).abs() < 1e-2, "{a} vs {b}");
        }
    }

    /// ReLU output is non-negative and idempotent.
    #[test]
    fn relu_properties(x in small_tensor(2, 8)) {
        let mut r = Relu::new();
        let y = r.forward(&x, false);
        prop_assert!(y.data().iter().all(|&v| v >= 0.0));
        let mut r2 = Relu::new();
        prop_assert_eq!(r2.forward(&y, false), y);
    }

    /// Convolution commutes with input scaling when bias is zero:
    /// conv(kx) = k·conv(x).
    #[test]
    fn conv_is_homogeneous(
        data in proptest::collection::vec(-1.0f32..1.0, 36),
        k in 0.1f32..3.0,
        seed in any::<u64>(),
    ) {
        let x = Tensor::from_vec(vec![1, 1, 6, 6], data).unwrap();
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, seed);
        conv.params_mut()[1].value = Tensor::zeros(vec![1, 2]); // zero bias
        let y1 = conv.forward(&x.scale(k), false);
        let mut conv2 = Conv2d::new(1, 2, 3, 1, 1, seed);
        conv2.params_mut()[1].value = Tensor::zeros(vec![1, 2]);
        let y2 = conv2.forward(&x, false).scale(k);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// hstack then hsplit round-trips.
    #[test]
    fn hstack_hsplit_roundtrip(a in small_tensor(3, 2), b in small_tensor(3, 4)) {
        let joined = Tensor::hstack(&[a.clone(), b.clone()]).unwrap();
        let (left, right) = joined.hsplit(2);
        prop_assert_eq!(left, a);
        prop_assert_eq!(right, b);
    }

    /// Gradient accumulation: two backward passes double parameter grads.
    #[test]
    fn gradients_accumulate(x in small_tensor(2, 3), seed in any::<u64>()) {
        let mut layer = Dense::new(3, 2, seed);
        let y = layer.forward(&x, true);
        let g = Tensor::ones(y.shape().to_vec());
        layer.backward(&g);
        let once = layer.params()[0].grad.clone();
        layer.forward(&x, true);
        layer.backward(&g);
        let twice = layer.params()[0].grad.clone();
        for (a, b) in once.data().iter().zip(twice.data()) {
            prop_assert!((2.0 * a - b).abs() < 1e-3 + a.abs() * 1e-3, "{a} vs {b}");
        }
    }
}
