//! Bit-granular buffers for the compressed sample streams.
//!
//! [`BitWriter`] appends MSB-first into a `Vec<u8>`; with enough reserved
//! capacity a push touches no allocator, which is what lets the scrape
//! path promise zero transient allocations in steady state. [`BitReader`]
//! walks the same layout back out.

/// Append-only MSB-first bit buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Total bits written (the last byte may be partially filled).
    len_bits: usize,
}

impl BitWriter {
    /// An empty writer with no reserved capacity.
    pub fn new() -> Self {
        BitWriter::default()
    }

    /// An empty writer with `bytes` of backing store reserved up front,
    /// so pushes stay allocation-free until the reserve is exhausted.
    pub fn with_capacity(bytes: usize) -> Self {
        BitWriter {
            buf: Vec::with_capacity(bytes),
            len_bits: 0,
        }
    }

    /// Reserves room for at least `bytes` more bytes.
    pub fn reserve(&mut self, bytes: usize) {
        self.buf.reserve(bytes);
    }

    /// Appends a single bit.
    #[inline]
    pub fn push_bit(&mut self, bit: bool) {
        let off = self.len_bits % 8;
        if off == 0 {
            self.buf.push(0);
        }
        if bit {
            let last = self.buf.len() - 1;
            self.buf[last] |= 0x80 >> off;
        }
        self.len_bits += 1;
    }

    /// Appends the low `n` bits of `value`, most significant first.
    /// `n` must be ≤ 64.
    #[inline]
    pub fn push_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64, "at most 64 bits per push");
        for i in (0..n).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Bytes occupied (the last may be partial).
    pub fn len_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Bytes the backing store could hold without reallocating.
    pub fn capacity_bytes(&self) -> usize {
        self.buf.capacity()
    }

    /// The packed bytes (final byte zero-padded on the right).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// A reader positioned at the start of this writer's bits.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader {
            buf: &self.buf,
            pos: 0,
            len_bits: self.len_bits,
        }
    }
}

/// Sequential reader over a [`BitWriter`]'s packed bytes.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize,
    len_bits: usize,
}

impl<'a> BitReader<'a> {
    /// A reader over `buf` holding `len_bits` valid bits.
    pub fn new(buf: &'a [u8], len_bits: usize) -> Self {
        debug_assert!(len_bits <= buf.len() * 8);
        BitReader {
            buf,
            pos: 0,
            len_bits,
        }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos
    }

    /// Reads one bit; `None` past the end.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.len_bits {
            return None;
        }
        let byte = self.buf[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits MSB-first into the low bits of a `u64`; `None` if
    /// fewer than `n` remain.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        debug_assert!(n <= 64);
        if self.remaining() < n as usize {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_mixed_widths() {
        let mut w = BitWriter::with_capacity(32);
        w.push_bit(true);
        w.push_bits(0b1011, 4);
        w.push_bits(u64::MAX, 64);
        w.push_bits(0, 7);
        w.push_bits(0x1234_5678_9abc_def0, 61);
        let mut r = w.reader();
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(7), Some(0));
        assert_eq!(
            r.read_bits(61),
            Some(0x1234_5678_9abc_def0 & ((1 << 61) - 1))
        );
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn reserve_keeps_pushes_allocation_free() {
        let mut w = BitWriter::with_capacity(64);
        let cap = w.capacity_bytes();
        for i in 0..cap * 8 {
            w.push_bit(i % 3 == 0);
        }
        assert_eq!(w.capacity_bytes(), cap, "no growth within the reserve");
        assert_eq!(w.len_bytes(), cap);
    }

    #[test]
    fn read_past_end_is_none_not_garbage() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        let mut r = w.reader();
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(1), None);
        // The padded byte's remaining bits are not readable.
        assert_eq!(r.remaining(), 0);
    }
}
