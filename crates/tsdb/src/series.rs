//! Series identity and the compressed series itself.

use std::collections::BTreeMap;
use std::fmt;

use crate::compress::{GorillaEncoder, TimeRegression};

/// A series name plus its sorted label set.
///
/// Labels live in a `BTreeMap`, so the canonical rendering — and with it
/// every artifact, fingerprint, and store ordering — is byte-stable
/// regardless of construction order.
///
/// # Examples
///
/// ```
/// use sctsdb::SeriesId;
///
/// let id = SeriesId::new("serve_requests_total")
///     .with_label("tier", "edge")
///     .with_label("kind", "traffic");
/// assert_eq!(id.canonical(), r#"serve_requests_total{kind="traffic",tier="edge"}"#);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesId {
    name: String,
    labels: BTreeMap<String, String>,
}

impl SeriesId {
    /// A label-less series id.
    pub fn new(name: &str) -> Self {
        SeriesId {
            name: name.to_string(),
            labels: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) one label.
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        self.labels.insert(key.to_string(), value.to_string());
        self
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted label set.
    pub fn labels(&self) -> &BTreeMap<String, String> {
        &self.labels
    }

    /// One label's value, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.get(key).map(String::as_str)
    }

    /// `name` or `name{k="v",…}` with labels in sorted order.
    pub fn canonical(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::with_capacity(self.name.len() + 16 * self.labels.len());
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for SeriesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

/// One compressed, append-only time series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    id: SeriesId,
    enc: GorillaEncoder,
    last_v: f64,
}

impl Series {
    /// An empty series.
    pub fn new(id: SeriesId) -> Self {
        Series {
            id,
            enc: GorillaEncoder::new(),
            last_v: 0.0,
        }
    }

    /// An empty series with buffer space reserved for `samples` appends,
    /// so appends within the reserve never allocate.
    pub fn with_capacity(id: SeriesId, samples: usize) -> Self {
        let mut enc = GorillaEncoder::new();
        enc.reserve_samples(samples);
        Series {
            id,
            enc,
            last_v: 0.0,
        }
    }

    /// The series identity.
    pub fn id(&self) -> &SeriesId {
        &self.id
    }

    /// Appends `(t_us, v)`; timestamps must be non-decreasing.
    pub fn push(&mut self, t_us: u64, v: f64) -> Result<(), TimeRegression> {
        self.enc.push(t_us, v)?;
        self.last_v = v;
        Ok(())
    }

    /// Sample count.
    pub fn len(&self) -> u64 {
        self.enc.len()
    }

    /// Whether the series holds no sample.
    pub fn is_empty(&self) -> bool {
        self.enc.is_empty()
    }

    /// Timestamp of the newest sample (0 when empty).
    pub fn last_timestamp(&self) -> u64 {
        self.enc.last_timestamp()
    }

    /// Value of the newest sample (0 when empty).
    pub fn last_value(&self) -> f64 {
        self.last_v
    }

    /// Compressed payload size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.enc.compressed_bytes()
    }

    /// Uncompressed equivalent (16 bytes per sample).
    pub fn raw_bytes(&self) -> usize {
        self.enc.len() as usize * 16
    }

    /// Decompresses every sample (allocates; bit-exact).
    pub fn samples(&self) -> Vec<(u64, f64)> {
        self.enc.decode_all()
    }

    /// Replaces the payload with `samples` (used by retention compaction).
    pub fn replace_samples(&mut self, samples: &[(u64, f64)]) {
        let mut enc = GorillaEncoder::new();
        enc.reserve_samples(samples.len());
        for &(t, v) in samples {
            enc.push(t, v).expect("sorted input");
        }
        self.last_v = samples.last().map(|&(_, v)| v).unwrap_or(0.0);
        self.enc = enc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_construction_order_independent() {
        let a = SeriesId::new("m").with_label("b", "2").with_label("a", "1");
        let b = SeriesId::new("m").with_label("a", "1").with_label("b", "2");
        assert_eq!(a, b);
        assert_eq!(a.canonical(), r#"m{a="1",b="2"}"#);
    }

    #[test]
    fn series_tracks_tail_cheaply() {
        let mut s = Series::new(SeriesId::new("x"));
        assert!(s.is_empty());
        s.push(10, 1.5).unwrap();
        s.push(20, 2.5).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.last_timestamp(), 20);
        assert_eq!(s.last_value(), 2.5);
        assert_eq!(s.samples(), vec![(10, 1.5), (20, 2.5)]);
    }
}
