//! Gorilla-style sample compression: delta-of-delta timestamps and
//! XOR-compressed float values, bit-exact.
//!
//! The layout follows Facebook's Gorilla paper adapted to sim-time
//! microseconds:
//!
//! - First sample: raw 64-bit timestamp, raw 64-bit IEEE value bits.
//! - Timestamps: `dod = (tₙ − tₙ₋₁) − (tₙ₋₁ − tₙ₋₂)`, bucketed as
//!   `0` (dod = 0), `10`+7 bits, `110`+9 bits, `1110`+12 bits,
//!   `1111`+64 bits (zig-zag-free biased encodings).
//! - Values: XOR against the previous value's bits; `0` when identical,
//!   `10` + meaningful bits when the previous leading/trailing-zero
//!   window still covers them, `11` + 5-bit leading count + 6-bit
//!   length−1 + the bits otherwise.
//!
//! Unlike the paper we never quantise: values round-trip through
//! `f64::to_bits`, so decompression is **bit-exact** (NaN payloads
//! included) — the property the golden artifacts and proptests pin.

use crate::bits::{BitReader, BitWriter};

/// Streaming encoder for one series.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GorillaEncoder {
    bits: BitWriter,
    count: u64,
    prev_t: u64,
    prev_delta: i64,
    prev_v_bits: u64,
    prev_leading: u32,
    prev_trailing: u32,
    window_valid: bool,
}

/// Appending a sample older than its predecessor is refused: series are
/// append-only in sim time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRegression {
    /// Timestamp of the last accepted sample (µs).
    pub last_us: u64,
    /// The offending earlier timestamp (µs).
    pub got_us: u64,
}

impl std::fmt::Display for TimeRegression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sample at {}us precedes the series tail at {}us",
            self.got_us, self.last_us
        )
    }
}

impl std::error::Error for TimeRegression {}

impl GorillaEncoder {
    /// An empty encoder with no reserved capacity.
    pub fn new() -> Self {
        GorillaEncoder::default()
    }

    /// Reserves buffer space for roughly `samples` more appends at the
    /// worst-case encoded width (~18 bytes), so appends within the
    /// reserve never touch the allocator.
    pub fn reserve_samples(&mut self, samples: usize) {
        self.bits.reserve(samples.saturating_mul(18));
    }

    /// Samples encoded so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been encoded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Compressed size in bytes (last byte possibly partial).
    pub fn compressed_bytes(&self) -> usize {
        self.bits.len_bytes()
    }

    /// Timestamp of the most recent sample (0 when empty).
    pub fn last_timestamp(&self) -> u64 {
        self.prev_t
    }

    /// Appends `(t_us, v)`; timestamps must be non-decreasing.
    pub fn push(&mut self, t_us: u64, v: f64) -> Result<(), TimeRegression> {
        let v_bits = v.to_bits();
        if self.count == 0 {
            self.bits.push_bits(t_us, 64);
            self.bits.push_bits(v_bits, 64);
            self.prev_t = t_us;
            self.prev_delta = 0;
            self.prev_v_bits = v_bits;
            self.count = 1;
            return Ok(());
        }
        if t_us < self.prev_t {
            return Err(TimeRegression {
                last_us: self.prev_t,
                got_us: t_us,
            });
        }
        let delta = (t_us - self.prev_t) as i64;
        let dod = delta - self.prev_delta;
        match dod {
            0 => self.bits.push_bit(false),
            -63..=64 => {
                self.bits.push_bits(0b10, 2);
                self.bits.push_bits((dod + 63) as u64, 7);
            }
            -255..=256 => {
                self.bits.push_bits(0b110, 3);
                self.bits.push_bits((dod + 255) as u64, 9);
            }
            -2047..=2048 => {
                self.bits.push_bits(0b1110, 4);
                self.bits.push_bits((dod + 2047) as u64, 12);
            }
            _ => {
                self.bits.push_bits(0b1111, 4);
                self.bits.push_bits(dod as u64, 64);
            }
        }
        self.prev_delta = delta;
        self.prev_t = t_us;

        let xor = v_bits ^ self.prev_v_bits;
        if xor == 0 {
            self.bits.push_bit(false);
        } else {
            self.bits.push_bit(true);
            let leading = xor.leading_zeros().min(31);
            let trailing = xor.trailing_zeros();
            if self.window_valid && leading >= self.prev_leading && trailing >= self.prev_trailing {
                // The previous meaningful-bit window still covers us.
                self.bits.push_bit(false);
                let sig = 64 - self.prev_leading - self.prev_trailing;
                self.bits.push_bits(xor >> self.prev_trailing, sig);
            } else {
                self.bits.push_bit(true);
                let sig = 64 - leading - trailing;
                self.bits.push_bits(leading as u64, 5);
                self.bits.push_bits((sig - 1) as u64, 6);
                self.bits.push_bits(xor >> trailing, sig);
                self.prev_leading = leading;
                self.prev_trailing = trailing;
                self.window_valid = true;
            }
        }
        self.prev_v_bits = v_bits;
        self.count += 1;
        Ok(())
    }

    /// Decodes every sample back out (allocates the result vector).
    pub fn decode_all(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.count as usize);
        if self.count == 0 {
            return out;
        }
        let mut r = self.bits.reader();
        let mut t = r.read_bits(64).expect("first timestamp present");
        let mut v_bits = r.read_bits(64).expect("first value present");
        out.push((t, f64::from_bits(v_bits)));
        let mut delta = 0i64;
        let mut leading = 0u32;
        let mut trailing = 0u32;
        for _ in 1..self.count {
            let dod = Self::read_dod(&mut r);
            delta += dod;
            t = (t as i64 + delta) as u64;
            if r.read_bit().expect("value control bit") {
                if r.read_bit().expect("window control bit") {
                    leading = r.read_bits(5).expect("leading count") as u32;
                    let sig = r.read_bits(6).expect("length field") as u32 + 1;
                    trailing = 64 - leading - sig;
                    let bits = r.read_bits(sig).expect("meaningful bits");
                    v_bits ^= bits << trailing;
                } else {
                    let sig = 64 - leading - trailing;
                    let bits = r.read_bits(sig).expect("meaningful bits");
                    v_bits ^= bits << trailing;
                }
            }
            out.push((t, f64::from_bits(v_bits)));
        }
        out
    }

    fn read_dod(r: &mut BitReader<'_>) -> i64 {
        if !r.read_bit().expect("dod control bit") {
            return 0;
        }
        if !r.read_bit().expect("dod control bit") {
            return r.read_bits(7).expect("7-bit dod") as i64 - 63;
        }
        if !r.read_bit().expect("dod control bit") {
            return r.read_bits(9).expect("9-bit dod") as i64 - 255;
        }
        if !r.read_bit().expect("dod control bit") {
            return r.read_bits(12).expect("12-bit dod") as i64 - 2047;
        }
        r.read_bits(64).expect("64-bit dod") as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(samples: &[(u64, f64)]) {
        let mut enc = GorillaEncoder::new();
        for &(t, v) in samples {
            enc.push(t, v).expect("non-decreasing");
        }
        let got = enc.decode_all();
        assert_eq!(got.len(), samples.len());
        for (g, s) in got.iter().zip(samples) {
            assert_eq!(g.0, s.0, "timestamp");
            assert_eq!(g.1.to_bits(), s.1.to_bits(), "value bits");
        }
    }

    #[test]
    fn round_trips_regular_cadence() {
        let samples: Vec<(u64, f64)> = (0..500)
            .map(|i| (i * 1_000_000, (i as f64).sin() * 100.0))
            .collect();
        round_trip(&samples);
    }

    #[test]
    fn round_trips_awkward_values() {
        round_trip(&[
            (0, 0.0),
            (1, -0.0),
            (1, f64::INFINITY),
            (2, f64::NEG_INFINITY),
            (100, f64::from_bits(0x7ff8_0000_dead_beef)), // NaN payload
            (100, f64::MIN_POSITIVE),
            (u64::MAX / 2, f64::MAX),
        ]);
    }

    #[test]
    fn constant_series_compress_tightly() {
        let mut enc = GorillaEncoder::new();
        for i in 0..1000u64 {
            enc.push(i * 3_600_000_000, 7.5).unwrap();
        }
        // First sample is 16 bytes, the first delta 69 bits; every later
        // sample costs 2 bits (dod = 0, value unchanged).
        assert!(
            enc.compressed_bytes() <= 16 + 9 + 1000 / 4,
            "got {} bytes",
            enc.compressed_bytes()
        );
        assert_eq!(enc.decode_all().len(), 1000);
    }

    #[test]
    fn time_regression_is_refused() {
        let mut enc = GorillaEncoder::new();
        enc.push(100, 1.0).unwrap();
        assert!(enc.push(99, 2.0).is_err());
        assert!(enc.push(100, 2.0).is_ok(), "equal timestamps are allowed");
    }

    #[test]
    fn reserve_bounds_allocation() {
        let mut enc = GorillaEncoder::new();
        enc.reserve_samples(100);
        let cap = enc.bits.capacity_bytes();
        for i in 0..100u64 {
            enc.push(i * 1234, i as f64 * 0.1).unwrap();
        }
        assert_eq!(enc.bits.capacity_bytes(), cap, "stayed within the reserve");
    }
}
