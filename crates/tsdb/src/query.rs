//! The query layer: counter and gauge range functions, quantiles, and
//! label-matcher aggregation.
//!
//! # Range conventions
//!
//! All ranges are `(from, to]` in microseconds, Prometheus-style: a
//! sample stamped exactly at a window's close belongs to that window, so
//! adjacent windows never double-count. Two deliberate refinements keep
//! the math *exact* rather than extrapolated:
//!
//! - **Counters** ([`increase`], [`rate`]): the baseline is the last
//!   sample at or before `from`; the increase is the sum of positive
//!   deltas (a drop is a counter reset and contributes the new value).
//!   No interpolation, ever — on boundary-aligned samples the result is
//!   the exact integer difference.
//! - **Values** ([`range_agg`], [`quantile_over_time`], …): samples with
//!   `from < t ≤ to` — except that a range starting at the epoch also
//!   includes `t = 0`, since no sample can precede `SimTime::ZERO`.
//!
//! [`quantile_over_time`] uses the same nearest-rank definition as
//! [`sctelemetry::percentile_sorted`], so a quantile computed here is
//! bit-identical to one computed from the raw sample vector.

use std::collections::BTreeMap;

use sctelemetry::percentile_sorted;

use crate::series::SeriesId;
use crate::store::Tsdb;

/// Whether `t` falls in the value-range `(from, to]` (epoch included
/// when `from == 0`).
#[inline]
fn in_range(t: u64, from_us: u64, to_us: u64) -> bool {
    (t > from_us || (from_us == 0 && t == 0)) && t <= to_us
}

/// Last sample value at or before `t_us`.
pub fn value_at(samples: &[(u64, f64)], t_us: u64) -> Option<f64> {
    samples
        .iter()
        .take_while(|&&(t, _)| t <= t_us)
        .last()
        .map(|&(_, v)| v)
}

/// Counter increase over `(from, to]`: exact sum of positive deltas,
/// with drops treated as counter resets.
pub fn increase(samples: &[(u64, f64)], from_us: u64, to_us: u64) -> f64 {
    let mut prev = value_at(samples, from_us);
    let mut acc = 0.0;
    for &(_, v) in samples.iter().filter(|&&(t, _)| t > from_us && t <= to_us) {
        match prev {
            Some(p) if v >= p => acc += v - p,
            // Reset (or first sight of the counter): the new value is
            // all increase.
            _ => acc += v,
        }
        prev = Some(v);
    }
    acc
}

/// Per-second rate over `(from, to]`: [`increase`] divided by the range
/// width in seconds (0 for an empty range).
pub fn rate(samples: &[(u64, f64)], from_us: u64, to_us: u64) -> f64 {
    let width_s = to_us.saturating_sub(from_us) as f64 / 1e6;
    if width_s <= 0.0 {
        return 0.0;
    }
    increase(samples, from_us, to_us) / width_s
}

/// Aggregations over the values in a range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeAgg {
    /// Smallest value.
    Min,
    /// Largest value.
    Max,
    /// Sum in timestamp order (bit-stable).
    Sum,
    /// Sample count.
    Count,
    /// Mean (`sum / count`).
    Avg,
    /// Last value in the range.
    Last,
}

/// Applies `agg` to the samples in `(from, to]`; `None` when the range
/// holds no sample.
pub fn range_agg(samples: &[(u64, f64)], from_us: u64, to_us: u64, agg: RangeAgg) -> Option<f64> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    let mut count = 0u64;
    let mut last = 0.0;
    for &(t, v) in samples {
        if !in_range(t, from_us, to_us) {
            continue;
        }
        min = min.min(v);
        max = max.max(v);
        sum += v;
        count += 1;
        last = v;
    }
    if count == 0 {
        return None;
    }
    Some(match agg {
        RangeAgg::Min => min,
        RangeAgg::Max => max,
        RangeAgg::Sum => sum,
        RangeAgg::Count => count as f64,
        RangeAgg::Avg => sum / count as f64,
        RangeAgg::Last => last,
    })
}

/// `avg_over_time` over `(from, to]`.
pub fn avg_over_time(samples: &[(u64, f64)], from_us: u64, to_us: u64) -> Option<f64> {
    range_agg(samples, from_us, to_us, RangeAgg::Avg)
}

/// `max_over_time` over `(from, to]`.
pub fn max_over_time(samples: &[(u64, f64)], from_us: u64, to_us: u64) -> Option<f64> {
    range_agg(samples, from_us, to_us, RangeAgg::Max)
}

/// `min_over_time` over `(from, to]`.
pub fn min_over_time(samples: &[(u64, f64)], from_us: u64, to_us: u64) -> Option<f64> {
    range_agg(samples, from_us, to_us, RangeAgg::Min)
}

/// `last_over_time` over `(from, to]`.
pub fn last_over_time(samples: &[(u64, f64)], from_us: u64, to_us: u64) -> Option<f64> {
    range_agg(samples, from_us, to_us, RangeAgg::Last)
}

/// Nearest-rank quantile of the values in `(from, to]`, identical to
/// [`sctelemetry::percentile_sorted`] over the same values.
pub fn quantile_over_time(samples: &[(u64, f64)], from_us: u64, to_us: u64, q: f64) -> Option<f64> {
    let mut values: Vec<f64> = samples
        .iter()
        .filter(|&&(t, _)| in_range(t, from_us, to_us))
        .map(|&(_, v)| v)
        .collect();
    values.sort_by(f64::total_cmp);
    percentile_sorted(&values, q)
}

/// Selects series by exact name and label equalities.
///
/// # Examples
///
/// ```
/// use sctsdb::{Matcher, SeriesId};
///
/// let m = Matcher::name("req_total").with_label("tier", "edge");
/// assert!(m.matches(&SeriesId::new("req_total").with_label("tier", "edge").with_label("az", "1")));
/// assert!(!m.matches(&SeriesId::new("req_total").with_label("tier", "cloud")));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matcher {
    name: String,
    labels: Vec<(String, String)>,
}

impl Matcher {
    /// Matches every series named `name`.
    pub fn name(name: &str) -> Self {
        Matcher {
            name: name.to_string(),
            labels: Vec::new(),
        }
    }

    /// Additionally requires label `key` to equal `value`.
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    /// Whether `id` satisfies every condition.
    pub fn matches(&self, id: &SeriesId) -> bool {
        id.name() == self.name
            && self
                .labels
                .iter()
                .all(|(k, v)| id.label(k) == Some(v.as_str()))
    }
}

/// `sum by (label) (agg(matched[range]))`: aggregates each matched
/// series over `(from, to]` with `agg`, then sums the results grouped by
/// the `by` label (series missing the label group under `""`). Counter
/// semantics come from passing [`SeriesAgg::Increase`].
pub fn sum_by(
    tsdb: &Tsdb,
    matcher: &Matcher,
    by: &str,
    from_us: u64,
    to_us: u64,
    agg: SeriesAgg,
) -> BTreeMap<String, f64> {
    let mut out: BTreeMap<String, f64> = BTreeMap::new();
    for series in tsdb.iter().filter(|s| matcher.matches(s.id())) {
        let samples = series.samples();
        let v = match agg {
            SeriesAgg::Increase => Some(increase(&samples, from_us, to_us)),
            SeriesAgg::Rate => Some(rate(&samples, from_us, to_us)),
            SeriesAgg::Range(r) => range_agg(&samples, from_us, to_us, r),
        };
        if let Some(v) = v {
            let group = series.id().label(by).unwrap_or("").to_string();
            *out.entry(group).or_insert(0.0) += v;
        }
    }
    out
}

/// Per-series aggregation used by [`sum_by`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SeriesAgg {
    /// Counter increase over the range.
    Increase,
    /// Counter per-second rate over the range.
    Rate,
    /// A value-range aggregation.
    Range(RangeAgg),
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimTime;

    fn counter() -> Vec<(u64, f64)> {
        // Cumulative counter sampled each second, reset at t = 4 s.
        vec![
            (0, 0.0),
            (1_000_000, 10.0),
            (2_000_000, 25.0),
            (3_000_000, 25.0),
            (4_000_000, 5.0),
            (5_000_000, 12.0),
        ]
    }

    #[test]
    fn increase_is_exact_on_boundaries() {
        let c = counter();
        assert_eq!(increase(&c, 0, 2_000_000), 25.0);
        assert_eq!(increase(&c, 2_000_000, 3_000_000), 0.0);
        // Reset: 25 → 5 counts 5 new units, then +7.
        assert_eq!(increase(&c, 3_000_000, 5_000_000), 12.0);
        assert_eq!(increase(&c, 0, 5_000_000), 37.0);
    }

    #[test]
    fn rate_divides_by_range_seconds() {
        let c = counter();
        assert_eq!(rate(&c, 0, 2_000_000), 12.5);
        assert_eq!(rate(&c, 0, 0), 0.0);
    }

    #[test]
    fn range_aggs_cover_min_max_sum_avg_last() {
        let s = vec![(0, 4.0), (1_000_000, 2.0), (2_000_000, 6.0)];
        assert_eq!(range_agg(&s, 0, 2_000_000, RangeAgg::Min), Some(2.0));
        assert_eq!(max_over_time(&s, 0, 2_000_000), Some(6.0));
        assert_eq!(range_agg(&s, 0, 2_000_000, RangeAgg::Sum), Some(12.0));
        assert_eq!(avg_over_time(&s, 0, 2_000_000), Some(4.0));
        assert_eq!(last_over_time(&s, 0, 2_000_000), Some(6.0));
        assert_eq!(range_agg(&s, 0, 2_000_000, RangeAgg::Count), Some(3.0));
        // (from, to]: the epoch sample is excluded for from > 0…
        assert_eq!(range_agg(&s, 500_000, 1_000_000, RangeAgg::Sum), Some(2.0));
        // …and an empty range is None, not 0.
        assert_eq!(range_agg(&s, 2_000_000, 3_000_000, RangeAgg::Sum), None);
    }

    #[test]
    fn quantile_matches_percentile_sorted() {
        let s: Vec<(u64, f64)> = (0..100).map(|i| (i, (i as f64) * 0.5)).collect();
        let mut values: Vec<f64> = s.iter().map(|&(_, v)| v).collect();
        values.sort_by(f64::total_cmp);
        assert_eq!(
            quantile_over_time(&s, 0, 99, 0.99),
            percentile_sorted(&values, 0.99)
        );
    }

    #[test]
    fn sum_by_groups_on_the_label() {
        let mut db = Tsdb::new();
        for (tier, n) in [("edge", 10.0), ("edge", 20.0), ("cloud", 5.0)] {
            let id = SeriesId::new("req_total")
                .with_label("tier", tier)
                .with_label("u", &format!("{n}"));
            db.record(&id, SimTime::ZERO, 0.0).unwrap();
            db.record(&id, SimTime::from_secs(1), n).unwrap();
        }
        let m = Matcher::name("req_total");
        let grouped = sum_by(&db, &m, "tier", 0, 1_000_000, SeriesAgg::Increase);
        assert_eq!(grouped.get("edge"), Some(&30.0));
        assert_eq!(grouped.get("cloud"), Some(&5.0));
    }
}
