//! sctsdb: a deterministic in-memory time-series store for the
//! smart-city stack.
//!
//! The observability crates capture end-of-run snapshots; operating a
//! city-scale deployment needs *trajectories* — load, latency, shedding,
//! and scaling over the day. sctsdb supplies the missing layer:
//!
//! - **Scrape** ([`Scraper`]): polls a [`sctelemetry::MetricsRegistry`]
//!   on a fixed sim-time cadence into labeled [`Series`]. Counters and
//!   gauges are one atomic load; histograms scrape their cumulative
//!   `_count`/`_sum`. Steady-state scrapes do zero transient
//!   allocations (asserted by a counting allocator in E14).
//! - **Compress** ([`compress::GorillaEncoder`]): delta-of-delta
//!   timestamps, XOR-compressed values — Gorilla-style, but **bit-exact**
//!   (values round-trip through `f64::to_bits`, NaN payloads included)
//!   and allocation-bounded via up-front reserves.
//! - **Rollups** ([`rollup`]): aligned min/max/sum/count/last windows,
//!   [`rollup::coarsen`] for ladder steps, and a
//!   [`rollup::RetentionLadder`] that trades raw resolution for rollups
//!   as data ages.
//! - **Query** ([`query`]): `rate`/`increase` with exact counter
//!   semantics, `*_over_time` range aggregations,
//!   [`query::quantile_over_time`] bit-identical to
//!   [`sctelemetry::percentile_sorted`], and `sum by (label)` via
//!   [`Matcher`].
//! - **Recording rules** ([`rules::RuleEngine`]): derived series
//!   materialised at each window close, Prometheus-group style.
//! - **Flight recorder** ([`FlightRecorder`]): the whole store plus run
//!   metadata as one canonical JSON artifact with an FNV fingerprint —
//!   what E19 commits as `flight_seed42.tsdb.json`.
//!
//! # Determinism
//!
//! Everything is keyed and iterated through `BTreeMap`s, windows align
//! to `SimTime::ZERO`, float folds run in timestamp order, and nothing
//! reads wall clocks or the environment — so for a given seed the
//! artifact and its fingerprint are byte-identical at any
//! `SCPAR_THREADS` or `SCSIMD_FORCE` setting.

#![warn(missing_docs)]

pub mod bits;
pub mod compress;
pub mod flight;
pub mod query;
pub mod rollup;
pub mod rules;
pub mod scrape;
pub mod series;
pub mod store;

pub use compress::{GorillaEncoder, TimeRegression};
pub use flight::{FlightRecorder, FLIGHT_SCHEMA};
pub use query::{
    avg_over_time, increase, last_over_time, max_over_time, min_over_time, quantile_over_time,
    range_agg, rate, sum_by, value_at, Matcher, RangeAgg, SeriesAgg,
};
pub use rollup::{coarsen, downsample, RetentionLadder, RetentionLevel, WindowAgg};
pub use rules::{GroupedRule, RecordingRule, RuleEngine, RuleExpr};
pub use scrape::Scraper;
pub use series::{Series, SeriesId};
pub use store::Tsdb;
