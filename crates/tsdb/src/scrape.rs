//! The scraper: polls a [`MetricsRegistry`] on a fixed sim-time cadence
//! into compressed series.
//!
//! Counters and gauges are read with one atomic load; histograms expose
//! their cumulative `count`/`sum` through the allocation-free
//! [`Histogram::count`]/[`Histogram::sum`] accessors and become two
//! series (`<name>_count`, `<name>_sum`), the Prometheus convention.
//!
//! # Allocation discipline
//!
//! [`Scraper::sync`] binds newly registered metrics (allocating once per
//! new series); [`Scraper::scrape_at`] then only reads instruments and
//! appends into each binding's preallocated bit buffer — **zero
//! transient allocations** in steady state, asserted by a counting
//! global allocator in `e14_telemetry_overhead`. Size the reserve with
//! [`Scraper::with_sample_capacity`].

use std::collections::BTreeSet;
use std::sync::Arc;

use sctelemetry::{Histogram, MetricEntry, MetricsRegistry};
use simclock::{SimDuration, SimTime};

use crate::series::{Series, SeriesId};
use crate::store::Tsdb;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BindKind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug)]
struct Binding {
    entry: Arc<MetricEntry>,
    kind: BindKind,
    /// Counter/gauge value series, or the histogram `_count` series.
    primary: Series,
    /// The histogram `_sum` series.
    secondary: Option<Series>,
}

/// Scrapes a registry into per-metric [`Series`] on a fixed cadence.
///
/// # Examples
///
/// ```
/// use sctelemetry::MetricsRegistry;
/// use sctsdb::Scraper;
/// use simclock::{SimDuration, SimTime};
///
/// let reg = MetricsRegistry::new();
/// reg.counter("req_total", "requests").as_counter().unwrap().add(5);
///
/// let mut scraper = Scraper::new(reg.clone(), SimDuration::from_secs(60));
/// scraper.sync();
/// scraper.scrape_at(SimTime::ZERO);
/// reg.get("req_total").unwrap().as_counter().unwrap().add(7);
/// scraper.scrape_at(SimTime::from_secs(60));
///
/// let db = scraper.into_tsdb();
/// assert_eq!(db.samples_name("req_total"), vec![(0, 5.0), (60_000_000, 12.0)]);
/// ```
#[derive(Debug)]
pub struct Scraper {
    registry: MetricsRegistry,
    cadence: SimDuration,
    sample_capacity: usize,
    labels: Vec<(String, String)>,
    bound: BTreeSet<String>,
    bindings: Vec<Binding>,
    next_due: SimTime,
    scrapes: u64,
}

impl Scraper {
    /// A scraper over `registry` due every `cadence`, starting at the
    /// epoch.
    pub fn new(registry: MetricsRegistry, cadence: SimDuration) -> Self {
        Scraper {
            registry,
            cadence,
            sample_capacity: 0,
            labels: Vec::new(),
            bound: BTreeSet::new(),
            bindings: Vec::new(),
            next_due: SimTime::ZERO,
            scrapes: 0,
        }
    }

    /// Reserves each new series' buffer for `samples` appends, bounding
    /// scrape-path allocation to zero until the reserve is exhausted.
    pub fn with_sample_capacity(mut self, samples: usize) -> Self {
        self.sample_capacity = samples;
        self
    }

    /// Attaches a constant label to every scraped series (e.g.
    /// `tier="edge"`), enabling `sum by (tier)` across scrapers.
    pub fn with_label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }

    /// The scrape cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// Scrapes performed so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes
    }

    /// Series bound so far (histograms count twice).
    pub fn series_count(&self) -> usize {
        self.bindings
            .iter()
            .map(|b| 1 + b.secondary.is_some() as usize)
            .sum()
    }

    fn id_for(&self, name: &str) -> SeriesId {
        let mut id = SeriesId::new(name);
        for (k, v) in &self.labels {
            id = id.with_label(k, v);
        }
        id
    }

    /// Binds metrics registered since the last call; returns how many
    /// were new. Allocates only for those. Call after instrumented code
    /// may have registered metrics; [`Scraper::scrape_at`] never binds.
    pub fn sync(&mut self) -> usize {
        if self.registry.len() == self.bound.len() {
            return 0;
        }
        let mut added = 0;
        for name in self.registry.names() {
            if self.bound.contains(name.as_str()) {
                continue;
            }
            let Some(entry) = self.registry.get(&name) else {
                continue;
            };
            let (kind, primary, secondary) = if entry.as_counter().is_some() {
                let s = Series::with_capacity(self.id_for(&name), self.sample_capacity);
                (BindKind::Counter, s, None)
            } else if entry.as_gauge().is_some() {
                let s = Series::with_capacity(self.id_for(&name), self.sample_capacity);
                (BindKind::Gauge, s, None)
            } else {
                let count = Series::with_capacity(
                    self.id_for(&format!("{name}_count")),
                    self.sample_capacity,
                );
                let sum = Series::with_capacity(
                    self.id_for(&format!("{name}_sum")),
                    self.sample_capacity,
                );
                (BindKind::Histogram, count, Some(sum))
            };
            self.bindings.push(Binding {
                entry,
                kind,
                primary,
                secondary,
            });
            self.bound.insert(name);
            added += 1;
        }
        added
    }

    /// Snapshots every bound instrument at `at`. Returns the number of
    /// series appended to. Zero transient allocations while each series
    /// stays within its reserve.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes an earlier scrape (series are append-only
    /// in sim time).
    pub fn scrape_at(&mut self, at: SimTime) -> usize {
        let t = at.as_micros();
        let mut touched = 0;
        for b in &mut self.bindings {
            match b.kind {
                BindKind::Counter => {
                    let v = b.entry.as_counter().expect("bound as counter").get();
                    b.primary
                        .push(t, v as f64)
                        .expect("scrape times are non-decreasing");
                    touched += 1;
                }
                BindKind::Gauge => {
                    let v = b.entry.as_gauge().expect("bound as gauge").get();
                    b.primary
                        .push(t, v as f64)
                        .expect("scrape times are non-decreasing");
                    touched += 1;
                }
                BindKind::Histogram => {
                    let h: &Histogram = b.entry.as_histogram().expect("bound as histogram");
                    b.primary
                        .push(t, h.count() as f64)
                        .expect("scrape times are non-decreasing");
                    let sum = b.secondary.as_mut().expect("histogram binds _sum");
                    sum.push(t, h.sum())
                        .expect("scrape times are non-decreasing");
                    touched += 2;
                }
            }
        }
        self.scrapes += 1;
        touched
    }

    /// Performs every scrape due at or before `now` on the cadence grid
    /// (boundaries aligned to the epoch); returns how many ran. Catches
    /// up after idle stretches, stamping each scrape at its grid point.
    pub fn maybe_scrape(&mut self, now: SimTime) -> usize {
        let mut ran = 0;
        let step = self.cadence.as_micros().max(1);
        while self.next_due <= now {
            let due = self.next_due;
            self.scrape_at(due);
            self.next_due = SimTime::from_micros(due.as_micros() + step);
            ran += 1;
        }
        ran
    }

    /// The scraped series, in binding order.
    pub fn series(&self) -> impl Iterator<Item = &Series> {
        self.bindings
            .iter()
            .flat_map(|b| std::iter::once(&b.primary).chain(b.secondary.as_ref()))
    }

    /// Copies every non-empty scraped series into `db`.
    pub fn export_into(&self, db: &mut Tsdb) {
        for s in self.series().filter(|s| !s.is_empty()) {
            db.insert_series(s.clone());
        }
    }

    /// Consumes the scraper into a fresh store.
    pub fn into_tsdb(self) -> Tsdb {
        let mut db = Tsdb::new();
        self.export_into(&mut db);
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrapes_all_three_instrument_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", "c").as_counter().unwrap().add(2);
        reg.gauge("g", "g").as_gauge().unwrap().set(-7);
        let h = reg.exact_histogram("h_seconds", "h");
        h.as_histogram().unwrap().observe(0.5);
        h.as_histogram().unwrap().observe(1.5);

        let mut sc = Scraper::new(reg, SimDuration::from_secs(1));
        assert_eq!(sc.sync(), 3);
        assert_eq!(sc.scrape_at(SimTime::from_secs(1)), 4);
        let db = sc.into_tsdb();
        assert_eq!(db.samples_name("c_total"), vec![(1_000_000, 2.0)]);
        assert_eq!(db.samples_name("g"), vec![(1_000_000, -7.0)]);
        assert_eq!(db.samples_name("h_seconds_count"), vec![(1_000_000, 2.0)]);
        assert_eq!(db.samples_name("h_seconds_sum"), vec![(1_000_000, 2.0)]);
    }

    #[test]
    fn cadence_scrapes_catch_up_on_the_grid() {
        let reg = MetricsRegistry::new();
        reg.counter("c_total", "c");
        let mut sc = Scraper::new(reg, SimDuration::from_secs(60));
        sc.sync();
        // Nothing due before the epoch grid point… then three at once.
        assert_eq!(sc.maybe_scrape(SimTime::from_secs(120)), 3);
        assert_eq!(sc.maybe_scrape(SimTime::from_secs(120)), 0, "idempotent");
        let db = sc.into_tsdb();
        assert_eq!(
            db.samples_name("c_total")
                .iter()
                .map(|&(t, _)| t)
                .collect::<Vec<_>>(),
            vec![0, 60_000_000, 120_000_000]
        );
    }

    #[test]
    fn late_registrations_bind_on_sync() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a");
        let mut sc =
            Scraper::new(reg.clone(), SimDuration::from_secs(1)).with_label("tier", "edge");
        assert_eq!(sc.sync(), 1);
        sc.scrape_at(SimTime::from_secs(1));
        reg.counter("b_total", "b");
        assert_eq!(sc.sync(), 1);
        sc.scrape_at(SimTime::from_secs(2));
        let db = sc.into_tsdb();
        let a = SeriesId::new("a_total").with_label("tier", "edge");
        let b = SeriesId::new("b_total").with_label("tier", "edge");
        assert_eq!(db.samples(&a).len(), 2);
        assert_eq!(db.samples(&b).len(), 1, "bound late, scraped once");
    }
}
