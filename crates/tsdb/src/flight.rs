//! The flight-recorder artifact: a [`Tsdb`] plus run metadata, rendered
//! as one canonical JSON document.
//!
//! This is the file E19 writes next to `BENCH_metropolis.json`
//! (`flight_seed42.tsdb.json`): the whole day as stored series — RPS,
//! p99, shed fraction, pool and shard sizes, burn rates — byte-identical
//! for a given seed at any thread count or SIMD ISA. The
//! [`FlightRecorder::fingerprint`] rides the BENCH JSON as a
//! deterministic key, so the perf gate pins the artifact exactly.

use std::collections::BTreeMap;

use serde_json::{json, Map, Value};

use crate::store::Tsdb;

/// Schema tag stamped into every artifact.
pub const FLIGHT_SCHEMA: &str = "sctsdb-flight-v1";

/// A store plus sorted metadata, with a canonical rendering.
///
/// # Examples
///
/// ```
/// use sctsdb::{FlightRecorder, Tsdb};
/// use simclock::SimTime;
///
/// let mut db = Tsdb::new();
/// db.record_name("rps", SimTime::ZERO, 1.0).unwrap();
/// let flight = FlightRecorder::new(db).with_meta("seed", serde_json::json!(42));
/// assert_eq!(flight.to_json()["schema"], "sctsdb-flight-v1");
/// assert_eq!(flight.fingerprint().len(), 16);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlightRecorder {
    /// The recorded series.
    pub tsdb: Tsdb,
    meta: BTreeMap<String, Value>,
}

impl FlightRecorder {
    /// Wraps a finished store.
    pub fn new(tsdb: Tsdb) -> Self {
        FlightRecorder {
            tsdb,
            meta: BTreeMap::new(),
        }
    }

    /// Attaches one metadata entry (sorted into the artifact).
    pub fn with_meta(mut self, key: &str, value: Value) -> Self {
        self.meta.insert(key.to_string(), value);
        self
    }

    /// The canonical artifact: schema tag, sorted metadata, and the
    /// store's canonical JSON.
    pub fn to_json(&self) -> Value {
        let meta: Map<String, Value> = self
            .meta
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        match self.tsdb.to_json() {
            Value::Object(mut doc) => {
                doc.insert("schema".to_string(), json!(FLIGHT_SCHEMA));
                doc.insert("meta".to_string(), Value::Object(meta));
                Value::Object(doc)
            }
            other => other,
        }
    }

    /// Pretty-printed artifact text with a trailing newline — the exact
    /// bytes written to `flight_seed42.tsdb.json`.
    pub fn render(&self) -> String {
        let mut out = serde_json::to_string_pretty(&self.to_json()).expect("valid json");
        out.push('\n');
        out
    }

    /// FNV-1a fingerprint (hex) of [`FlightRecorder::render`]'s bytes.
    pub fn fingerprint(&self) -> String {
        let text = self.render();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimTime;

    #[test]
    fn fingerprint_covers_meta_and_series() {
        let mut db = Tsdb::new();
        db.record_name("x", SimTime::ZERO, 1.0).unwrap();
        let a = FlightRecorder::new(db.clone()).with_meta("seed", json!(42));
        let b = FlightRecorder::new(db).with_meta("seed", json!(43));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
    }

    #[test]
    fn render_is_stable_and_newline_terminated() {
        let flight = FlightRecorder::new(Tsdb::new()).with_meta("windows", json!(24));
        let r = flight.render();
        assert!(r.ends_with('\n'));
        assert_eq!(r, flight.render());
        assert!(r.contains("\"schema\""));
    }
}
