//! Windowed rollups, downsampling, and the retention ladder.
//!
//! A [`WindowAgg`] is the five-number summary (`min`/`max`/`sum`/`count`/
//! `last`) of one aligned window. [`downsample`] folds raw samples into
//! them deterministically: windows are half-open `[k·w, (k+1)·w)` aligned
//! to `SimTime::ZERO`, samples are folded in timestamp order, so the
//! float sums are bit-identical on every run. A [`RetentionLadder`]
//! trades raw resolution for rollups as data ages, Gorilla-style:
//! each level keeps coarser windows for longer.

use simclock::{SimDuration, SimTime};

use crate::store::Tsdb;

/// Five-number summary of one aligned window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAgg {
    /// Window start (inclusive), µs.
    pub start_us: u64,
    /// Window width, µs.
    pub width_us: u64,
    /// Smallest sample value.
    pub min: f64,
    /// Largest sample value.
    pub max: f64,
    /// Sum of sample values, folded in timestamp order.
    pub sum: f64,
    /// Sample count.
    pub count: u64,
    /// Last sample value in the window.
    pub last: f64,
}

impl WindowAgg {
    /// Window end (exclusive), µs.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.width_us
    }

    /// `sum / count`.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn seed(start_us: u64, width_us: u64, v: f64) -> Self {
        WindowAgg {
            start_us,
            width_us,
            min: v,
            max: v,
            sum: v,
            count: 1,
            last: v,
        }
    }

    fn fold(&mut self, v: f64) {
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.sum += v;
        self.count += 1;
        self.last = v;
    }

    /// Folds a finer-grained agg into this coarser one (ladder step).
    fn absorb(&mut self, finer: &WindowAgg) {
        self.min = self.min.min(finer.min);
        self.max = self.max.max(finer.max);
        self.sum += finer.sum;
        self.count += finer.count;
        self.last = finer.last;
    }
}

/// Folds sorted `(t_us, v)` samples into aligned `width_us` windows.
/// Empty windows produce no entry. Panics if `width_us` is zero.
pub fn downsample(samples: &[(u64, f64)], width_us: u64) -> Vec<WindowAgg> {
    assert!(width_us > 0, "window width must be positive");
    let mut out: Vec<WindowAgg> = Vec::new();
    for &(t, v) in samples {
        let start = (t / width_us) * width_us;
        match out.last_mut() {
            Some(agg) if agg.start_us == start => agg.fold(v),
            _ => out.push(WindowAgg::seed(start, width_us, v)),
        }
    }
    out
}

/// Folds fine rollups into coarser aligned windows; `coarse_us` must be
/// a multiple of the input width for the result to equal a direct
/// [`downsample`] at `coarse_us` (pinned by proptest).
pub fn coarsen(aggs: &[WindowAgg], coarse_us: u64) -> Vec<WindowAgg> {
    assert!(coarse_us > 0, "window width must be positive");
    let mut out: Vec<WindowAgg> = Vec::new();
    for fine in aggs {
        let start = (fine.start_us / coarse_us) * coarse_us;
        match out.last_mut() {
            Some(agg) if agg.start_us == start => agg.absorb(fine),
            _ => {
                let mut seeded = *fine;
                seeded.start_us = start;
                seeded.width_us = coarse_us;
                out.push(seeded);
            }
        }
    }
    out
}

/// One rung of the retention ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionLevel {
    /// Rollup window width at this level.
    pub width: SimDuration,
    /// How long this level's rollups are kept.
    pub keep: SimDuration,
}

/// Raw-sample retention plus progressively coarser rollup levels.
///
/// [`RetentionLadder::compact`] is idempotent for a fixed `now`: samples
/// older than `raw_keep` are folded into each level's rollups and then
/// dropped from the raw stream; rollups older than a level's `keep` are
/// dropped outright.
#[derive(Debug, Clone, PartialEq)]
pub struct RetentionLadder {
    /// How long raw samples are kept.
    pub raw_keep: SimDuration,
    /// Coarsening levels, finest first; widths must be non-decreasing.
    pub levels: Vec<RetentionLevel>,
}

impl RetentionLadder {
    /// A ladder keeping raw samples `raw_keep` long, with no rollups.
    pub fn raw_only(raw_keep: SimDuration) -> Self {
        RetentionLadder {
            raw_keep,
            levels: Vec::new(),
        }
    }

    /// Appends one coarsening level.
    pub fn with_level(mut self, width: SimDuration, keep: SimDuration) -> Self {
        self.levels.push(RetentionLevel { width, keep });
        self
    }

    /// Applies retention to every series in `tsdb` as of `now`.
    pub fn compact(&self, tsdb: &mut Tsdb, now: SimTime) {
        let now_us = now.as_micros();
        let raw_cut = now_us.saturating_sub(self.raw_keep.as_micros());
        tsdb.compact_with(|samples, rollups| {
            for level in &self.levels {
                let width = level.width.as_micros().max(1);
                // Only complete windows fully behind the raw horizon are
                // folded, so a later compact never re-folds them.
                let fold_cut = (raw_cut / width) * width;
                let aged: Vec<(u64, f64)> = samples
                    .iter()
                    .copied()
                    .filter(|&(t, _)| t < fold_cut)
                    .collect();
                let existing = rollups.entry(width).or_default();
                let done_until = existing.last().map(|a| a.end_us()).unwrap_or(0);
                for agg in downsample(&aged, width) {
                    if agg.start_us >= done_until {
                        existing.push(agg);
                    }
                }
                let level_cut = now_us.saturating_sub(level.keep.as_micros());
                existing.retain(|a| a.end_us() > level_cut);
            }
            // Raw samples are dropped only once *every* level has folded
            // them — i.e. behind the smallest fold horizon — so a coarser
            // level never loses data it has not absorbed yet.
            let min_fold_cut = self
                .levels
                .iter()
                .map(|l| {
                    let w = l.width.as_micros().max(1);
                    (raw_cut / w) * w
                })
                .min()
                .unwrap_or(raw_cut);
            samples.retain(|&(t, _)| t >= min_fold_cut);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::SeriesId;

    fn ramp(n: u64, step_us: u64) -> Vec<(u64, f64)> {
        (0..n).map(|i| (i * step_us, i as f64)).collect()
    }

    #[test]
    fn downsample_summarises_aligned_windows() {
        let aggs = downsample(&ramp(10, 1_000_000), 4_000_000);
        assert_eq!(aggs.len(), 3);
        assert_eq!(aggs[0].count, 4);
        assert_eq!(aggs[0].min, 0.0);
        assert_eq!(aggs[0].max, 3.0);
        assert_eq!(aggs[0].sum, 6.0);
        assert_eq!(aggs[0].last, 3.0);
        assert_eq!(aggs[2].count, 2);
        assert_eq!(aggs[2].start_us, 8_000_000);
    }

    #[test]
    fn coarsen_matches_direct_downsample() {
        let raw = ramp(100, 700_000);
        let fine = downsample(&raw, 2_000_000);
        assert_eq!(coarsen(&fine, 10_000_000), downsample(&raw, 10_000_000));
    }

    #[test]
    fn ladder_folds_aged_raw_into_rollups_idempotently() {
        let mut db = Tsdb::new();
        let id = SeriesId::new("m");
        for (t, v) in ramp(100, 1_000_000) {
            db.record(&id, SimTime::from_micros(t), v).unwrap();
        }
        let ladder = RetentionLadder::raw_only(SimDuration::from_secs(20))
            .with_level(SimDuration::from_secs(10), SimDuration::from_secs(3600));
        let now = SimTime::from_micros(100_000_000);
        ladder.compact(&mut db, now);
        let after = db.get(&id).unwrap();
        assert!(after.len() < 100, "aged raw samples were dropped");
        let rollups = db.rollups(&id, SimDuration::from_secs(10)).unwrap();
        assert_eq!(rollups[0].count, 10);
        assert_eq!(rollups[0].sum, 45.0);
        // Raw + rollups still cover every sample exactly once.
        let covered: u64 = rollups.iter().map(|a| a.count).sum::<u64>() + after.len();
        assert_eq!(covered, 100);
        // Idempotent at the same `now`.
        let snap = db.to_json().to_string();
        ladder.compact(&mut db, now);
        assert_eq!(db.to_json().to_string(), snap);
    }
}
