//! The store: a sorted map of compressed series plus their rollups.

use std::collections::BTreeMap;

use serde_json::{json, Value};
use simclock::{SimDuration, SimTime};

use crate::compress::TimeRegression;
use crate::rollup::WindowAgg;
use crate::series::{Series, SeriesId};

/// Deterministic in-memory time-series store.
///
/// Series live in a `BTreeMap` keyed by [`SeriesId`], so iteration,
/// export, and the artifact fingerprint are byte-stable. Appends are
/// cheap (Gorilla-encoded, see [`crate::compress`]); reads decompress.
///
/// # Examples
///
/// ```
/// use sctsdb::{SeriesId, Tsdb};
/// use simclock::SimTime;
///
/// let mut db = Tsdb::new();
/// let id = SeriesId::new("metro_rps");
/// for w in 0..24u64 {
///     db.record(&id, SimTime::from_secs(w * 3600), (w % 7) as f64).unwrap();
/// }
/// assert_eq!(db.total_samples(), 24);
/// assert!(db.compressed_bytes() < db.raw_bytes());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tsdb {
    series: BTreeMap<SeriesId, Series>,
    /// Rollups per series, keyed by window width (µs), maintained by
    /// [`crate::rollup::RetentionLadder::compact`].
    rollups: BTreeMap<SeriesId, BTreeMap<u64, Vec<WindowAgg>>>,
    /// Samples reserved per new series (allocation-bounding hint).
    capacity_hint: usize,
}

impl Tsdb {
    /// An empty store.
    pub fn new() -> Self {
        Tsdb::default()
    }

    /// An empty store whose new series reserve room for `samples`
    /// appends up front.
    pub fn with_capacity_hint(samples: usize) -> Self {
        Tsdb {
            capacity_hint: samples,
            ..Tsdb::default()
        }
    }

    /// Appends `(at, v)` to `id`'s series, creating it on first use.
    pub fn record(&mut self, id: &SeriesId, at: SimTime, v: f64) -> Result<(), TimeRegression> {
        if let Some(s) = self.series.get_mut(id) {
            return s.push(at.as_micros(), v);
        }
        let mut s = Series::with_capacity(id.clone(), self.capacity_hint);
        let r = s.push(at.as_micros(), v);
        self.series.insert(id.clone(), s);
        r
    }

    /// [`Tsdb::record`] for a label-less series named `name`.
    pub fn record_name(&mut self, name: &str, at: SimTime, v: f64) -> Result<(), TimeRegression> {
        self.record(&SeriesId::new(name), at, v)
    }

    /// Inserts (or replaces) a fully-built series, e.g. one exported by
    /// a [`crate::Scraper`].
    pub fn insert_series(&mut self, series: Series) {
        self.series.insert(series.id().clone(), series);
    }

    /// The series for `id`, if any.
    pub fn get(&self, id: &SeriesId) -> Option<&Series> {
        self.series.get(id)
    }

    /// The label-less series named `name`, if any.
    pub fn get_name(&self, name: &str) -> Option<&Series> {
        self.series.get(&SeriesId::new(name))
    }

    /// Decoded samples of `id`'s series (empty when absent).
    pub fn samples(&self, id: &SeriesId) -> Vec<(u64, f64)> {
        self.get(id).map(Series::samples).unwrap_or_default()
    }

    /// Decoded samples of the label-less series named `name`.
    pub fn samples_name(&self, name: &str) -> Vec<(u64, f64)> {
        self.samples(&SeriesId::new(name))
    }

    /// Every series in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &Series> {
        self.series.values()
    }

    /// Stored rollups for `id` at window width `width`, if any.
    pub fn rollups(&self, id: &SeriesId, width: SimDuration) -> Option<&[WindowAgg]> {
        self.rollups
            .get(id)?
            .get(&width.as_micros())
            .map(Vec::as_slice)
    }

    /// Series count.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether the store holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Total samples across all series.
    pub fn total_samples(&self) -> u64 {
        self.series.values().map(Series::len).sum()
    }

    /// Total compressed payload bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.series.values().map(Series::compressed_bytes).sum()
    }

    /// Total uncompressed-equivalent bytes (16 per sample).
    pub fn raw_bytes(&self) -> usize {
        self.series.values().map(Series::raw_bytes).sum()
    }

    /// Runs `f` over every series' decoded samples and rollup map, then
    /// re-encodes whatever `f` left behind. Retention compaction hook.
    pub(crate) fn compact_with<F>(&mut self, mut f: F)
    where
        F: FnMut(&mut Vec<(u64, f64)>, &mut BTreeMap<u64, Vec<WindowAgg>>),
    {
        for (id, series) in &mut self.series {
            let mut samples = series.samples();
            let rollups = self.rollups.entry(id.clone()).or_default();
            f(&mut samples, rollups);
            series.replace_samples(&samples);
        }
    }

    /// Canonical JSON rendering: every series in sorted order with its
    /// decoded timestamps and values, rollups, and store totals. This is
    /// the flight-recorder payload — byte-stable for a given store.
    pub fn to_json(&self) -> Value {
        let series: Vec<Value> = self
            .series
            .values()
            .map(|s| {
                let samples = s.samples();
                let t_us: Vec<Value> = samples.iter().map(|&(t, _)| json!(t)).collect();
                let v: Vec<Value> = samples.iter().map(|&(_, v)| json!(v)).collect();
                json!({
                    "id": s.id().canonical(),
                    "count": s.len(),
                    "compressed_bytes": s.compressed_bytes(),
                    "t_us": t_us,
                    "v": v,
                })
            })
            .collect();
        let rollups: Vec<Value> = self
            .rollups
            .iter()
            .flat_map(|(id, by_width)| {
                by_width.iter().map(move |(width, aggs)| {
                    let rows: Vec<Value> = aggs
                        .iter()
                        .map(|a| {
                            json!({
                                "start_us": a.start_us,
                                "min": a.min,
                                "max": a.max,
                                "sum": a.sum,
                                "count": a.count,
                                "last": a.last,
                            })
                        })
                        .collect();
                    json!({
                        "id": id.canonical(),
                        "width_us": width,
                        "windows": rows,
                    })
                })
            })
            .collect();
        json!({
            "series": series,
            "rollups": rollups,
            "totals": {
                "series": self.len(),
                "samples": self.total_samples(),
                "raw_bytes": self.raw_bytes(),
                "compressed_bytes": self.compressed_bytes(),
            },
        })
    }

    /// FNV-1a fingerprint of the canonical JSON, as a fixed-width hex
    /// string. Two stores fingerprint equal iff their artifacts are
    /// byte-identical.
    pub fn fingerprint(&self) -> String {
        let text = self.to_json().to_string();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_read_back() {
        let mut db = Tsdb::new();
        let id = SeriesId::new("c").with_label("tier", "edge");
        db.record(&id, SimTime::from_secs(1), 10.0).unwrap();
        db.record(&id, SimTime::from_secs(2), 11.0).unwrap();
        db.record_name("g", SimTime::from_secs(1), -3.0).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.samples(&id), vec![(1_000_000, 10.0), (2_000_000, 11.0)]);
        assert_eq!(db.samples_name("g"), vec![(1_000_000, -3.0)]);
        assert!(db.samples_name("missing").is_empty());
    }

    #[test]
    fn fingerprint_pins_content() {
        let mut a = Tsdb::new();
        let mut b = Tsdb::new();
        for db in [&mut a, &mut b] {
            db.record_name("x", SimTime::from_secs(5), 1.25).unwrap();
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.record_name("x", SimTime::from_secs(6), 1.25).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn json_is_sorted_and_self_describing() {
        let mut db = Tsdb::new();
        db.record_name("zz", SimTime::ZERO, 1.0).unwrap();
        db.record_name("aa", SimTime::ZERO, 2.0).unwrap();
        let v = db.to_json();
        assert_eq!(v["series"][0]["id"], "aa");
        assert_eq!(v["series"][1]["id"], "zz");
        assert_eq!(v["totals"]["samples"], 2);
    }
}
