//! Recording rules: derived series materialised at each scrape window.
//!
//! A [`RecordingRule`] names an output series and an expression over the
//! stored ones; [`RuleEngine::eval_window`] evaluates every rule over one
//! closed window `(from, to]` and records the results at `to`. Rules are
//! evaluated in declaration order against the store *as it was before
//! the evaluation* (two-phase: read all, then write all), so rule order
//! can never make results racy or self-referential within a window —
//! the same discipline Prometheus applies to rule groups.

use simclock::SimTime;

use crate::query::{
    increase, quantile_over_time, range_agg, rate, sum_by, Matcher, RangeAgg, SeriesAgg,
};
use crate::series::SeriesId;
use crate::store::Tsdb;

/// An expression over stored series, evaluated per window.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleExpr {
    /// `rate(source[window])` — counter per-second rate.
    Rate(SeriesId),
    /// `increase(source[window])` — exact counter increase.
    Increase(SeriesId),
    /// A value-range aggregation of `source` over the window.
    Agg(SeriesId, RangeAgg),
    /// `quantile_over_time(q, source[window])` (nearest rank).
    Quantile(SeriesId, f64),
    /// `num / den`, 0 when the denominator is 0 (deterministic; mirrors
    /// `WindowStats::shed_fraction`). Missing operands evaluate as 0.
    Ratio(Box<RuleExpr>, Box<RuleExpr>),
}

impl RuleExpr {
    /// Scalar value over `(from, to]`; `None` when the window holds no
    /// contributing sample.
    fn eval(&self, tsdb: &Tsdb, from_us: u64, to_us: u64) -> Option<f64> {
        match self {
            RuleExpr::Rate(id) => Some(rate(&tsdb.samples(id), from_us, to_us)),
            RuleExpr::Increase(id) => Some(increase(&tsdb.samples(id), from_us, to_us)),
            RuleExpr::Agg(id, agg) => range_agg(&tsdb.samples(id), from_us, to_us, *agg),
            RuleExpr::Quantile(id, q) => quantile_over_time(&tsdb.samples(id), from_us, to_us, *q),
            RuleExpr::Ratio(num, den) => {
                let n = num.eval(tsdb, from_us, to_us).unwrap_or(0.0);
                let d = den.eval(tsdb, from_us, to_us).unwrap_or(0.0);
                Some(if d == 0.0 { 0.0 } else { n / d })
            }
        }
    }
}

/// One rule: an output series fed by an expression.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingRule {
    /// Output series (conventionally `level:metric:operation`).
    pub output: SeriesId,
    /// The expression producing each window's sample.
    pub expr: RuleExpr,
}

impl RecordingRule {
    /// A rule recording `expr` into the label-less series `output`.
    pub fn new(output: &str, expr: RuleExpr) -> Self {
        RecordingRule {
            output: SeriesId::new(output),
            expr,
        }
    }
}

/// A grouped rule: `sum by (label) (agg(matcher[window]))`, producing one
/// output sample per label value, labelled `by=value`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedRule {
    /// Output series name (each group adds its `by` label).
    pub output: String,
    /// Input selection.
    pub matcher: Matcher,
    /// Grouping label.
    pub by: String,
    /// Per-series aggregation before the group sum.
    pub agg: SeriesAgg,
}

/// Evaluates a fixed rule set window by window.
///
/// # Examples
///
/// ```
/// use sctsdb::{RecordingRule, RuleEngine, RuleExpr, SeriesId, Tsdb};
/// use simclock::SimTime;
///
/// let mut db = Tsdb::new();
/// db.record_name("req_total", SimTime::ZERO, 0.0).unwrap();
/// db.record_name("req_total", SimTime::from_secs(60), 120.0).unwrap();
///
/// let engine = RuleEngine::new()
///     .with_rule(RecordingRule::new("job:req:rate", RuleExpr::Rate(SeriesId::new("req_total"))));
/// engine.eval_window(&mut db, SimTime::ZERO, SimTime::from_secs(60));
/// assert_eq!(db.samples_name("job:req:rate"), vec![(60_000_000, 2.0)]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuleEngine {
    rules: Vec<RecordingRule>,
    grouped: Vec<GroupedRule>,
}

impl RuleEngine {
    /// An empty engine.
    pub fn new() -> Self {
        RuleEngine::default()
    }

    /// Adds a scalar rule.
    pub fn with_rule(mut self, rule: RecordingRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Adds a grouped (`sum by`) rule.
    pub fn with_grouped(mut self, rule: GroupedRule) -> Self {
        self.grouped.push(rule);
        self
    }

    /// The scalar rules, in evaluation order.
    pub fn rules(&self) -> &[RecordingRule] {
        &self.rules
    }

    /// Evaluates every rule over `(from, to]`, recording results at `to`.
    /// Expressions yielding no sample record nothing for the window.
    pub fn eval_window(&self, tsdb: &mut Tsdb, from: SimTime, to: SimTime) {
        let (from_us, to_us) = (from.as_micros(), to.as_micros());
        let mut pending: Vec<(SeriesId, f64)> = Vec::new();
        for rule in &self.rules {
            if let Some(v) = rule.expr.eval(tsdb, from_us, to_us) {
                pending.push((rule.output.clone(), v));
            }
        }
        for rule in &self.grouped {
            for (group, v) in sum_by(tsdb, &rule.matcher, &rule.by, from_us, to_us, rule.agg) {
                let id = SeriesId::new(&rule.output).with_label(&rule.by, &group);
                pending.push((id, v));
            }
        }
        for (id, v) in pending {
            tsdb.record(&id, to, v)
                .expect("rule outputs advance with the window clock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_rule_mirrors_shed_fraction() {
        let mut db = Tsdb::new();
        for (t, bad, total) in [(0u64, 0.0, 0.0), (60, 3.0, 50.0), (120, 3.0, 90.0)] {
            db.record_name("bad_total", SimTime::from_secs(t), bad)
                .unwrap();
            db.record_name("sampled_total", SimTime::from_secs(t), total)
                .unwrap();
        }
        let engine = RuleEngine::new().with_rule(RecordingRule::new(
            "metro:shed_fraction",
            RuleExpr::Ratio(
                Box::new(RuleExpr::Increase(SeriesId::new("bad_total"))),
                Box::new(RuleExpr::Increase(SeriesId::new("sampled_total"))),
            ),
        ));
        engine.eval_window(&mut db, SimTime::ZERO, SimTime::from_secs(60));
        engine.eval_window(&mut db, SimTime::from_secs(60), SimTime::from_secs(120));
        let got = db.samples_name("metro:shed_fraction");
        assert_eq!(got[0], (60_000_000, 3.0 / 50.0));
        assert_eq!(got[1], (120_000_000, 0.0), "no bad, no shed");
    }

    #[test]
    fn grouped_rule_emits_one_series_per_label_value() {
        let mut db = Tsdb::new();
        for tier in ["edge", "cloud"] {
            let id = SeriesId::new("req_total").with_label("tier", tier);
            db.record(&id, SimTime::ZERO, 0.0).unwrap();
            db.record(&id, SimTime::from_secs(60), 60.0).unwrap();
        }
        let engine = RuleEngine::new().with_grouped(GroupedRule {
            output: "tier:req:increase".to_string(),
            matcher: Matcher::name("req_total"),
            by: "tier".to_string(),
            agg: SeriesAgg::Increase,
        });
        engine.eval_window(&mut db, SimTime::ZERO, SimTime::from_secs(60));
        let edge = SeriesId::new("tier:req:increase").with_label("tier", "edge");
        assert_eq!(db.samples(&edge), vec![(60_000_000, 60.0)]);
        assert_eq!(db.len(), 4);
    }

    #[test]
    fn quantile_rule_records_window_percentiles() {
        let mut db = Tsdb::new();
        for i in 0..100u64 {
            db.record_name("lat_ms", SimTime::from_micros(i + 1), i as f64)
                .unwrap();
        }
        let engine = RuleEngine::new().with_rule(RecordingRule::new(
            "job:lat:p99",
            RuleExpr::Quantile(SeriesId::new("lat_ms"), 0.99),
        ));
        engine.eval_window(&mut db, SimTime::ZERO, SimTime::from_micros(200));
        assert_eq!(db.samples_name("job:lat:p99"), vec![(200, 98.0)]);
    }
}
