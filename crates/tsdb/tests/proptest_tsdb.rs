//! Property tests for sctsdb: compression must be bit-exact, and the
//! query layer must agree with naive recomputation from raw samples on
//! aligned windows — including when it reads downsampled rollups.

use proptest::prelude::*;
use sctsdb::{
    coarsen, downsample, increase, quantile_over_time, range_agg, rate, GorillaEncoder, RangeAgg,
};

/// Strategy: sorted sample streams with irregular cadence and values
/// spanning sign flips, zeros, and repeats — the XOR encoder's worst
/// terrain.
fn stream() -> impl Strategy<Value = Vec<(u64, f64)>> {
    proptest::collection::vec((0u64..5_000_000u64, -1e9f64..1e9), 1..200).prop_map(|mut raw| {
        let mut t = 0u64;
        for (dt, _) in raw.iter_mut() {
            t += *dt;
            *dt = t;
        }
        raw
    })
}

/// Naive reference: values in `(from, to]` with the epoch included when
/// `from == 0` (the query layer's documented range convention).
fn values_in(samples: &[(u64, f64)], from: u64, to: u64) -> Vec<f64> {
    samples
        .iter()
        .filter(|&&(t, _)| (t > from || (from == 0 && t == 0)) && t <= to)
        .map(|&(_, v)| v)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Compressed round-trip is bit-exact: every timestamp equal, every
    /// value equal through `f64::to_bits`.
    #[test]
    fn gorilla_round_trip_is_bit_exact(samples in stream()) {
        let mut enc = GorillaEncoder::new();
        for &(t, v) in &samples {
            enc.push(t, v).expect("sorted by construction");
        }
        let got = enc.decode_all();
        prop_assert_eq!(got.len(), samples.len());
        for (g, s) in got.iter().zip(&samples) {
            prop_assert_eq!(g.0, s.0);
            prop_assert_eq!(g.1.to_bits(), s.1.to_bits());
        }
    }

    /// Special float values survive compression byte-for-byte, NaN
    /// payloads included.
    #[test]
    fn gorilla_round_trips_special_values(seed in 0u64..1_000) {
        let specials = [
            0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::MAX, f64::MIN_POSITIVE,
            f64::from_bits(0x7ff8_0000_0000_0000 | seed),
        ];
        let mut enc = GorillaEncoder::new();
        for (i, &v) in specials.iter().enumerate() {
            enc.push(seed + i as u64 * 17, v).unwrap();
        }
        for (g, &want) in enc.decode_all().iter().zip(&specials) {
            prop_assert_eq!(g.1.to_bits(), want.to_bits());
        }
    }

    /// Rollup windows equal naive per-window recomputation, and sums are
    /// bit-identical (same fold order).
    #[test]
    fn rollups_match_naive_window_aggregates(
        samples in stream(),
        width_s in 1u64..30,
    ) {
        let width = width_s * 1_000_000;
        let aggs = downsample(&samples, width);
        let total: u64 = aggs.iter().map(|a| a.count).sum();
        prop_assert_eq!(total, samples.len() as u64, "every sample in exactly one window");
        for a in &aggs {
            let in_win: Vec<f64> = samples
                .iter()
                .filter(|&&(t, _)| t >= a.start_us && t < a.start_us + width)
                .map(|&(_, v)| v)
                .collect();
            prop_assert_eq!(a.count, in_win.len() as u64);
            let mut naive_sum = 0.0;
            for v in &in_win {
                naive_sum += v;
            }
            prop_assert_eq!(a.sum.to_bits(), naive_sum.to_bits(), "fold order is fixed");
            prop_assert_eq!(a.min, in_win.iter().copied().fold(f64::INFINITY, f64::min));
            prop_assert_eq!(a.max, in_win.iter().copied().fold(f64::NEG_INFINITY, f64::max));
            prop_assert_eq!(a.last, *in_win.last().unwrap());
        }
    }

    /// Coarsening fine rollups to a multiple of their width matches the
    /// rollup computed directly from raw samples: min/max/count/last are
    /// exactly lossless. Sums agree to float fold-order (coarsening adds
    /// pre-folded fine sums, a different association than the raw fold),
    /// so they are compared within one part in 1e12 — still deterministic,
    /// just not bit-identical to the raw-order fold.
    #[test]
    fn ladder_coarsening_matches_direct_downsample(
        samples in stream(),
        fine_s in 1u64..10,
        factor in 2u64..8,
    ) {
        let fine = fine_s * 1_000_000;
        let coarse = fine * factor;
        let stepped = coarsen(&downsample(&samples, fine), coarse);
        let direct = downsample(&samples, coarse);
        prop_assert_eq!(stepped.len(), direct.len());
        for (s, d) in stepped.iter().zip(&direct) {
            prop_assert_eq!(s.start_us, d.start_us);
            prop_assert_eq!(s.count, d.count);
            prop_assert_eq!(s.min, d.min);
            prop_assert_eq!(s.max, d.max);
            // Error bound scales with the values' magnitude (±1e9 here),
            // not the possibly-cancelled sum.
            let tol = 1e-12 * s.count as f64 * 1e9;
            prop_assert!(
                (s.sum - d.sum).abs() <= tol,
                "sum {} vs {} beyond fold-order tolerance", s.sum, d.sum
            );
            prop_assert_eq!(s.last, d.last);
        }
    }

    /// `increase`/`rate` on a downsampled (last-per-window) counter series
    /// equal the raw computation on aligned window boundaries: boundary
    /// values are all that matter, so downsampling is lossless there.
    #[test]
    fn rate_on_downsampled_counter_matches_raw(
        deltas in proptest::collection::vec(0u64..1_000, 2..100),
        width_s in 1u64..20,
    ) {
        let width = width_s * 1_000_000;
        // A cumulative counter sampled every second, seeded with an
        // explicit 0 at the epoch (the convention every producer in the
        // stack follows, so `increase` has a baseline for window 0).
        let mut raw: Vec<(u64, f64)> = vec![(0, 0.0)];
        let mut cum = 0u64;
        for (i, &d) in deltas.iter().enumerate() {
            cum += d;
            raw.push(((i as u64 + 1) * 1_000_000, cum as f64));
        }
        // Downsample to last-per-window, the counter retention rollup.
        let rolled: Vec<(u64, f64)> = downsample(&raw, width)
            .iter()
            .map(|a| (a.end_us() - 1, a.last))
            .collect();
        let last_t = raw.last().unwrap().0;
        let n_windows = last_t / width + 1;
        for w in 0..n_windows {
            let (from, to) = (w * width, (w + 1) * width - 1);
            prop_assert_eq!(
                increase(&raw, from.saturating_sub(1), to),
                increase(&rolled, from.saturating_sub(1), to),
                "window {}", w
            );
            prop_assert_eq!(
                rate(&raw, from.saturating_sub(1), to).to_bits(),
                rate(&rolled, from.saturating_sub(1), to).to_bits()
            );
        }
    }

    /// `quantile_over_time` and the range aggregations agree with naive
    /// recomputation over the same aligned windows.
    #[test]
    fn range_queries_match_naive_recomputation(
        samples in stream(),
        width_s in 1u64..30,
        q in 0.01f64..1.0,
    ) {
        let width = width_s * 1_000_000;
        let last_t = samples.last().unwrap().0;
        for w in 0..(last_t / width + 1) {
            let (from, to) = (w * width, (w + 1) * width);
            let want = values_in(&samples, from, to);
            let quant = quantile_over_time(&samples, from, to, q);
            if want.is_empty() {
                prop_assert_eq!(quant, None);
                prop_assert_eq!(range_agg(&samples, from, to, RangeAgg::Sum), None);
                continue;
            }
            let mut sorted = want.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            prop_assert_eq!(quant, Some(sorted[rank - 1]));
            let mut naive_sum = 0.0;
            for v in &want {
                naive_sum += v;
            }
            prop_assert_eq!(
                range_agg(&samples, from, to, RangeAgg::Sum).unwrap().to_bits(),
                naive_sum.to_bits()
            );
            prop_assert_eq!(
                range_agg(&samples, from, to, RangeAgg::Avg).unwrap().to_bits(),
                (naive_sum / want.len() as f64).to_bits()
            );
            prop_assert_eq!(range_agg(&samples, from, to, RangeAgg::Count), Some(want.len() as f64));
            prop_assert_eq!(range_agg(&samples, from, to, RangeAgg::Last), want.last().copied());
        }
    }
}
