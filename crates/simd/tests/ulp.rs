//! Accuracy and bit-stability proptests for the scsimd kernels.
//!
//! Two families of properties:
//!
//! 1. **ULP bounds** — the polynomial kernels stay within the documented
//!    worst-case distance of a correctly rounded reference (computed in
//!    f64, then rounded once to f32).
//! 2. **Bit-identity** — the native backend (AVX2 here, NEON on aarch64)
//!    produces exactly the scalar reference's bits for every kernel,
//!    which is the contract that lets one golden set cover every ISA.

use proptest::prelude::*;
use scsimd::{scalar, ulp_diff_f32, Isa};

/// Correctly rounded f32 exp: evaluate in f64, round once.
fn exp_ref(x: f32) -> f32 {
    (x as f64).exp() as f32
}

fn sigmoid_ref(x: f32) -> f32 {
    (1.0 / (1.0 + (-(x as f64)).exp())) as f32
}

fn tanh_ref(x: f32) -> f32 {
    (x as f64).tanh() as f32
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #[test]
    fn exp_within_2_ulp(x in scalar::EXP_LO..scalar::EXP_HI) {
        let got = scalar::exp(x);
        let want = exp_ref(x);
        prop_assert!(
            ulp_diff_f32(got, want) <= 2,
            "exp({x}) = {got} vs {want}: {} ulp", ulp_diff_f32(got, want)
        );
    }

    #[test]
    fn sigmoid_within_3_ulp(x in -87.0f32..87.0) {
        // Beyond |x| ≈ 87.3 the exp clamp saturates the output into the
        // subnormal range (checked separately in `sigmoid_tail_saturates`);
        // the ULP bound holds on the normal-result domain.
        let got = scalar::sigmoid(x);
        let want = sigmoid_ref(x);
        prop_assert!(
            ulp_diff_f32(got, want) <= 3,
            "sigmoid({x}) = {got} vs {want}: {} ulp", ulp_diff_f32(got, want)
        );
    }

    #[test]
    fn tanh_within_3_ulp(x in -20.0f32..20.0) {
        let got = scalar::tanh(x);
        let want = tanh_ref(x);
        prop_assert!(
            ulp_diff_f32(got, want) <= 3,
            "tanh({x}) = {got} vs {want}: {} ulp", ulp_diff_f32(got, want)
        );
    }

    #[test]
    fn softmax_rows_sum_to_one_within_16_ulp(
        rows in 1usize..5,
        cols in 1usize..33,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random logits in a realistic range.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u32 << 24) as f32 - 0.5) * 20.0
        };
        let mut data: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
        scsimd::softmax_rows_f32(&mut data, cols, Isa::Scalar);
        for row in data.chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!(
                ulp_diff_f32(sum, 1.0) <= 16,
                "row sum {sum} is {} ulp from 1", ulp_diff_f32(sum, 1.0)
            );
            prop_assert!(row.iter().all(|p| (0.0..=1.0).contains(p)));
        }
    }

    // ---- bit-identity: native backend vs scalar reference ----

    #[test]
    fn unary_kernels_bit_identical_across_isas(
        xs in proptest::collection::vec(-90.0f32..90.0, 0..67),
    ) {
        let native = Isa::detect_native();
        for op in [
            scsimd::exp_f32,
            scsimd::sigmoid_f32,
            scsimd::tanh_f32,
            scsimd::relu_f32,
        ] {
            let mut a = xs.clone();
            let mut b = xs.clone();
            op(&mut a, Isa::Scalar);
            op(&mut b, native);
            prop_assert_eq!(bits(&a), bits(&b), "{} differs from scalar", native.name());
        }
    }

    #[test]
    fn softmax_bit_identical_across_isas(
        rows in 1usize..4,
        cols in 1usize..41,
        lo in -30.0f32..0.0,
        hi in 0.0f32..30.0,
    ) {
        let n = rows * cols;
        let mut a: Vec<f32> = (0..n)
            .map(|i| lo + (hi - lo) * (i as f32 / n.max(1) as f32))
            .collect();
        let mut b = a.clone();
        scsimd::softmax_rows_f32(&mut a, cols, Isa::Scalar);
        scsimd::softmax_rows_f32(&mut b, cols, Isa::detect_native());
        prop_assert_eq!(bits(&a), bits(&b));
    }

    #[test]
    fn matmul_f32_bit_identical_across_isas(
        rows in 1usize..5,
        k in 1usize..9,
        n in 1usize..70,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (state >> 40) as f32 / (1u32 << 24) as f32 - 0.5;
            // Sprinkle exact zeros to exercise the zero-skip path.
            if v.abs() < 0.05 { 0.0 } else { v * 4.0 }
        };
        let a: Vec<f32> = (0..rows * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let mut out_s = vec![0.25f32; rows * n];
        let mut out_v = out_s.clone();
        scsimd::matmul_panel_f32(&a, &b, k, n, &mut out_s, Isa::Scalar);
        scsimd::matmul_panel_f32(&a, &b, k, n, &mut out_v, Isa::detect_native());
        prop_assert_eq!(bits(&out_s), bits(&out_v));
    }

    #[test]
    fn matmul_f64_bit_identical_across_isas(
        rows in 1usize..5,
        k in 1usize..9,
        n in 1usize..40,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let v = (state >> 40) as f64 / (1u32 << 24) as f64 - 0.5;
            if v.abs() < 0.05 { 0.0 } else { v * 4.0 }
        };
        let a: Vec<f64> = (0..rows * k).map(|_| next()).collect();
        let b: Vec<f64> = (0..k * n).map(|_| next()).collect();
        let mut out_s = vec![0.5f64; rows * n];
        let mut out_v = out_s.clone();
        scsimd::matmul_panel_f64(&a, &b, k, n, &mut out_s, Isa::Scalar);
        scsimd::matmul_panel_f64(&a, &b, k, n, &mut out_v, Isa::detect_native());
        let bs: Vec<u64> = out_s.iter().map(|x| x.to_bits()).collect();
        let bv: Vec<u64> = out_v.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(bs, bv);
    }
}

#[test]
fn exp_edge_bits() {
    // Exhaustive near the clamp edges and around zero: these regions are
    // where the exponent-bit assembly and the hi/lo reduction are most
    // fragile, so pin them with exact comparisons.
    let probes = [
        scalar::EXP_LO,
        scalar::EXP_LO + 1e-3,
        -1.0,
        -f32::MIN_POSITIVE,
        -0.0,
        0.0,
        f32::MIN_POSITIVE,
        1.0,
        scalar::EXP_HI - 1e-3,
        scalar::EXP_HI,
        f32::INFINITY,
        f32::NEG_INFINITY,
    ];
    for &x in &probes {
        let y = scalar::exp(x);
        assert!(
            y.is_finite(),
            "exp({x}) must be finite after clamping, got {y}"
        );
        assert!(y > 0.0, "exp({x}) must be positive, got {y}");
    }
    // NaN behaves like the clamp floor (Rust min/max semantics): still
    // finite, never poisons downstream sums.
    assert!(scalar::exp(f32::NAN).is_finite());
}

#[test]
fn sigmoid_tail_saturates() {
    // Outside the ULP-bounded domain the kernel still behaves: monotone
    // saturation to exactly 1.0 on the right and a positive value on the
    // order of the smallest normal on the left — never 0, inf, or NaN.
    assert_eq!(scalar::sigmoid(100.0), 1.0);
    let left = scalar::sigmoid(-100.0);
    assert!(left > 0.0 && left < 1e-37, "got {left}");
}

#[test]
fn tanh_branch_seam_is_bit_stable() {
    // Walk a fine grid across the small/large split point; the blended
    // vector kernel must agree with the branched scalar kernel exactly.
    let native = Isa::detect_native();
    let xs: Vec<f32> = (0..2000)
        .map(|i| scalar::TANH_SMALL - 0.01 + i as f32 * 1e-5)
        .flat_map(|x| [x, -x])
        .collect();
    let mut a = xs.clone();
    let mut b = xs;
    scsimd::tanh_f32(&mut a, Isa::Scalar);
    scsimd::tanh_f32(&mut b, native);
    assert_eq!(bits(&a), bits(&b));
}

#[test]
fn forced_scalar_env_is_safe() {
    // SCSIMD_FORCE with an unsupported name degrades to scalar rather
    // than faulting; exercised via the public fallback path.
    let unsupported = if cfg!(target_arch = "x86_64") {
        Isa::Neon
    } else {
        Isa::Avx2
    };
    let mut xs = vec![1.0f32, -1.0, 0.5];
    let mut ys = xs.clone();
    scsimd::exp_f32(&mut xs, unsupported); // degrades to scalar
    scsimd::exp_f32(&mut ys, Isa::Scalar);
    assert_eq!(bits(&xs), bits(&ys));
}
