//! AVX2 kernels (x86_64, 256-bit registers: 8 × f32 / 4 × f64).
//!
//! Every function here replays, lane-wise, the exact operation sequence
//! of its [`crate::scalar`] counterpart — separate multiply and add, the
//! same clamp operand order (matching Rust's `min`/`max` NaN behaviour),
//! the same round-to-nearest-even reduction — so outputs are
//! bit-identical to the scalar reference. Safety: all functions are
//! `#[target_feature(enable = "avx2")]` and must only be called after
//! runtime detection (the dispatcher in `lib.rs` guarantees this).

#![allow(clippy::missing_safety_doc)] // module-private; contract stated above
#![allow(clippy::excessive_precision)] // Cephes coefficients keep their exact decimal expansions

use core::arch::x86_64::*;

use crate::scalar;

const ABS_MASK: i32 = 0x7fff_ffff;
const SIGN_MASK: u32 = 0x8000_0000;

/// exp over one vector; the lane-wise mirror of [`scalar::exp`].
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn exp_v(x: __m256) -> __m256 {
    let hi = _mm256_set1_ps(scalar::EXP_HI);
    let lo = _mm256_set1_ps(scalar::EXP_LO);
    // Same operand order as `x.min(EXP_HI).max(EXP_LO)`: min/max return
    // the second operand when the first is NaN, exactly like Rust.
    let x = _mm256_max_ps(_mm256_min_ps(x, hi), lo);

    let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
    // cvtps rounds to nearest even under the default MXCSR mode —
    // identical to the scalar `round_ties_even`.
    let n_i = _mm256_cvtps_epi32(_mm256_mul_ps(x, log2e));
    let n = _mm256_cvtepi32_ps(n_i);

    let r = _mm256_sub_ps(x, _mm256_mul_ps(n, _mm256_set1_ps(0.693_359_375)));
    let r = _mm256_sub_ps(r, _mm256_mul_ps(n, _mm256_set1_ps(-2.121_944_4e-4)));

    let mut p = _mm256_set1_ps(1.987_569_2e-4);
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.398_2e-3));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(8.333_452e-3));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(4.166_579_6e-2));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(1.666_666_6e-1));
    p = _mm256_add_ps(_mm256_mul_ps(p, r), _mm256_set1_ps(5.000_000_3e-1));
    let e = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(p, _mm256_mul_ps(r, r)), r),
        _mm256_set1_ps(1.0),
    );

    let bias = _mm256_set1_epi32(127);
    let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(n_i, bias)));
    _mm256_mul_ps(e, scale)
}

/// sigmoid over one vector; mirror of [`scalar::sigmoid`].
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn sigmoid_v(x: __m256) -> __m256 {
    let neg = _mm256_xor_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(SIGN_MASK as i32)));
    let one = _mm256_set1_ps(1.0);
    _mm256_div_ps(one, _mm256_add_ps(one, exp_v(neg)))
}

/// tanh over one vector; mirror of [`scalar::tanh`] with both branches
/// evaluated and blended (the selected lane equals the scalar branch).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn tanh_v(x: __m256) -> __m256 {
    let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(ABS_MASK));
    let sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(SIGN_MASK as i32));
    let ax = _mm256_and_ps(x, abs_mask);
    let sign = _mm256_and_ps(x, sign_mask);

    // Small path: x + x³·P(x²).
    let s = _mm256_mul_ps(ax, ax);
    let mut p = _mm256_set1_ps(-5.704_988_7e-3);
    p = _mm256_add_ps(_mm256_mul_ps(p, s), _mm256_set1_ps(2.063_908_9e-2));
    p = _mm256_add_ps(_mm256_mul_ps(p, s), _mm256_set1_ps(-5.373_971_6e-2));
    p = _mm256_add_ps(_mm256_mul_ps(p, s), _mm256_set1_ps(1.333_144_2e-1));
    p = _mm256_add_ps(_mm256_mul_ps(p, s), _mm256_set1_ps(-3.333_328_2e-1));
    let small = _mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, s), ax), ax);

    // Large path: 1 − 2/(exp(2|x|) + 1).
    let one = _mm256_set1_ps(1.0);
    let e = exp_v(_mm256_add_ps(ax, ax));
    let large = _mm256_sub_ps(
        one,
        _mm256_div_ps(_mm256_set1_ps(2.0), _mm256_add_ps(e, one)),
    );

    // ax < TANH_SMALL selects the small path; NaN compares false and
    // takes the large path, like the scalar branch.
    let take_small = _mm256_cmp_ps::<_CMP_LT_OQ>(ax, _mm256_set1_ps(scalar::TANH_SMALL));
    let r = _mm256_blendv_ps(large, small, take_small);
    _mm256_or_ps(r, sign)
}

/// Applies a vector kernel over a slice, finishing the tail with the
/// bit-identical scalar kernel.
macro_rules! map_slice {
    ($xs:expr, $vec_fn:expr, $scalar_fn:expr) => {{
        let xs: &mut [f32] = $xs;
        let mut i = 0;
        while i + 8 <= xs.len() {
            let p = xs.as_mut_ptr().add(i);
            _mm256_storeu_ps(p, $vec_fn(_mm256_loadu_ps(p)));
            i += 8;
        }
        for x in &mut xs[i..] {
            *x = $scalar_fn(*x);
        }
    }};
}

/// In-place exp; see [`crate::exp_f32`].
#[target_feature(enable = "avx2")]
pub unsafe fn exp_slice(xs: &mut [f32]) {
    map_slice!(xs, |v| exp_v(v), scalar::exp);
}

/// In-place sigmoid; see [`crate::sigmoid_f32`].
#[target_feature(enable = "avx2")]
pub unsafe fn sigmoid_slice(xs: &mut [f32]) {
    map_slice!(xs, |v| sigmoid_v(v), scalar::sigmoid);
}

/// In-place tanh; see [`crate::tanh_f32`].
#[target_feature(enable = "avx2")]
pub unsafe fn tanh_slice(xs: &mut [f32]) {
    map_slice!(xs, |v| tanh_v(v), scalar::tanh);
}

/// In-place relu (`x > 0 ? x : 0`, so `-0.0` and NaN map to `+0.0` on
/// every backend); see [`crate::relu_f32`].
#[target_feature(enable = "avx2")]
pub unsafe fn relu_slice(xs: &mut [f32]) {
    let zero = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= xs.len() {
        let p = xs.as_mut_ptr().add(i);
        // max_ps returns the second operand on NaN or signed-zero ties.
        _mm256_storeu_ps(p, _mm256_max_ps(_mm256_loadu_ps(p), zero));
        i += 8;
    }
    for x in &mut xs[i..] {
        *x = if *x > 0.0 { *x } else { 0.0 };
    }
}

/// Horizontal max of a vector (for non-NaN inputs).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hmax(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let m = _mm_max_ps(lo, hi);
    let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    let m = _mm_max_ss(m, _mm_shuffle_ps::<1>(m, m));
    _mm_cvtss_f32(m)
}

/// Row-wise softmax; see [`crate::softmax_rows_f32`]. The normalizing
/// sum stays strictly element-ordered (scalar) so the result is
/// bit-identical to [`scalar::softmax_rows`].
#[target_feature(enable = "avx2")]
pub unsafe fn softmax_rows(data: &mut [f32], cols: usize) {
    for row in data.chunks_mut(cols) {
        // Max scan: order-independent for non-NaN rows, so lanes + tail
        // agree with the scalar fold.
        let mut j = 0;
        let mut max = f32::NEG_INFINITY;
        if cols >= 8 {
            let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
            while j + 8 <= cols {
                vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row.as_ptr().add(j)));
                j += 8;
            }
            max = hmax(vmax);
        }
        for &x in &row[j..] {
            max = max.max(x);
        }

        // exp(x − max), vectorized.
        let vmaxb = _mm256_set1_ps(max);
        let mut j = 0;
        while j + 8 <= cols {
            let p = row.as_mut_ptr().add(j);
            _mm256_storeu_ps(p, exp_v(_mm256_sub_ps(_mm256_loadu_ps(p), vmaxb)));
            j += 8;
        }
        for x in &mut row[j..] {
            *x = scalar::exp(*x - max);
        }

        // Element-ordered sum: the one reduction whose order fixes bits.
        let mut sum = 0.0f32;
        for &x in row.iter() {
            sum += x;
        }

        // Divide, vectorized (division is lane-exact).
        let vsum = _mm256_set1_ps(sum);
        let mut j = 0;
        while j + 8 <= cols {
            let p = row.as_mut_ptr().add(j);
            _mm256_storeu_ps(p, _mm256_div_ps(_mm256_loadu_ps(p), vsum));
            j += 8;
        }
        for x in &mut row[j..] {
            *x /= sum;
        }
    }
}

/// f32 matmul panel: ascending-`k` multiply-adds with zero-skip, column
/// dimension tiled 32-wide (4 registers) so accumulators live in
/// registers across the whole `k` loop. Bit-identical to
/// [`scalar::matmul_panel_f32`].
#[target_feature(enable = "avx2")]
pub unsafe fn matmul_panel_f32(a: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    let rows = a.len() / k;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 32 <= n {
            let op = o_row.as_mut_ptr().add(j);
            let mut acc0 = _mm256_loadu_ps(op);
            let mut acc1 = _mm256_loadu_ps(op.add(8));
            let mut acc2 = _mm256_loadu_ps(op.add(16));
            let mut acc3 = _mm256_loadu_ps(op.add(24));
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                let bp = b.as_ptr().add(p * n + j);
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(bp)));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(8))));
                acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(16))));
                acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(24))));
            }
            _mm256_storeu_ps(op, acc0);
            _mm256_storeu_ps(op.add(8), acc1);
            _mm256_storeu_ps(op.add(16), acc2);
            _mm256_storeu_ps(op.add(24), acc3);
            j += 32;
        }
        while j + 8 <= n {
            let op = o_row.as_mut_ptr().add(j);
            let mut acc = _mm256_loadu_ps(op);
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                acc = _mm256_add_ps(
                    acc,
                    _mm256_mul_ps(va, _mm256_loadu_ps(b.as_ptr().add(p * n + j))),
                );
            }
            _mm256_storeu_ps(op, acc);
            j += 8;
        }
        for jj in j..n {
            let mut acc = o_row[jj];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                acc += av * b[p * n + jj];
            }
            o_row[jj] = acc;
        }
    }
}

/// FMA variant of [`matmul_panel_f32`]: contracted multiply-add (one
/// rounding per term). Faster and more accurate, but bit-different from
/// the strict profile — never used for golden-gated outputs.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn matmul_panel_f32_fma(a: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    let rows = a.len() / k;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 32 <= n {
            let op = o_row.as_mut_ptr().add(j);
            let mut acc0 = _mm256_loadu_ps(op);
            let mut acc1 = _mm256_loadu_ps(op.add(8));
            let mut acc2 = _mm256_loadu_ps(op.add(16));
            let mut acc3 = _mm256_loadu_ps(op.add(24));
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                let bp = b.as_ptr().add(p * n + j);
                acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp), acc0);
                acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp.add(8)), acc1);
                acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp.add(16)), acc2);
                acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(bp.add(24)), acc3);
            }
            _mm256_storeu_ps(op, acc0);
            _mm256_storeu_ps(op.add(8), acc1);
            _mm256_storeu_ps(op.add(16), acc2);
            _mm256_storeu_ps(op.add(24), acc3);
            j += 32;
        }
        for jj in j..n {
            let mut acc = o_row[jj];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                acc = av.mul_add(b[p * n + jj], acc);
            }
            o_row[jj] = acc;
        }
    }
}

/// f64 matmul panel (4 lanes, 16-column tiles). Bit-identical to
/// [`scalar::matmul_panel_f64`].
#[target_feature(enable = "avx2")]
pub unsafe fn matmul_panel_f64(a: &[f64], b: &[f64], k: usize, n: usize, out: &mut [f64]) {
    let rows = a.len() / k;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 16 <= n {
            let op = o_row.as_mut_ptr().add(j);
            let mut acc0 = _mm256_loadu_pd(op);
            let mut acc1 = _mm256_loadu_pd(op.add(4));
            let mut acc2 = _mm256_loadu_pd(op.add(8));
            let mut acc3 = _mm256_loadu_pd(op.add(12));
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_pd(av);
                let bp = b.as_ptr().add(p * n + j);
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(bp)));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(bp.add(4))));
                acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(va, _mm256_loadu_pd(bp.add(8))));
                acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(va, _mm256_loadu_pd(bp.add(12))));
            }
            _mm256_storeu_pd(op, acc0);
            _mm256_storeu_pd(op.add(4), acc1);
            _mm256_storeu_pd(op.add(8), acc2);
            _mm256_storeu_pd(op.add(12), acc3);
            j += 16;
        }
        while j + 4 <= n {
            let op = o_row.as_mut_ptr().add(j);
            let mut acc = _mm256_loadu_pd(op);
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_pd(av);
                acc = _mm256_add_pd(
                    acc,
                    _mm256_mul_pd(va, _mm256_loadu_pd(b.as_ptr().add(p * n + j))),
                );
            }
            _mm256_storeu_pd(op, acc);
            j += 4;
        }
        for jj in j..n {
            let mut acc = o_row[jj];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                acc += av * b[p * n + jj];
            }
            o_row[jj] = acc;
        }
    }
}
