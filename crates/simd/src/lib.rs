//! # scsimd — portable SIMD kernels with runtime ISA dispatch
//!
//! The vectorized substrate under scneural's inference kernels (ROADMAP
//! open item 1, modelled after rten's `rten-simd` trait dispatch and
//! wasnn-vecmath's bounded-error transcendentals): blocked matmul panels
//! and the `exp` / `sigmoid` / `tanh` / `softmax` family, each available
//! as an AVX2 (x86_64), NEON (aarch64), or scalar kernel selected at
//! runtime by [`Isa`].
//!
//! ## The strict profile: bits first, speed second
//!
//! The repository's headline guarantee is byte-identical results at any
//! `SCPAR_THREADS`, gated by committed goldens. scsimd extends that
//! guarantee across ISAs instead of weakening it:
//!
//! * **Matmul panels** vectorize across the *output column* dimension and
//!   accumulate with separate multiply and add (no FMA contraction by
//!   default). Every output element therefore sees exactly the IEEE-754
//!   operation sequence of the scalar reference — ascending-`k`
//!   multiply-adds with the same zero-skip — so AVX2, NEON and scalar
//!   kernels agree bit for bit. Register-blocked column tiles buy the
//!   speedup by keeping accumulators out of memory, which changes no
//!   arithmetic.
//! * **Transcendentals** are polynomial range-reduction kernels
//!   ([`scalar::exp`] and friends) built only from operations whose
//!   vector forms are IEEE-exact per lane (mul/add/sub/div/min/max,
//!   round-to-nearest-even, exponent-bit assembly). The vector kernels
//!   replay the identical operation sequence lane-wise, so they are
//!   bit-identical to the scalar reference — there are no per-ISA
//!   goldens to pin; one golden set is valid for every backend.
//!
//! The consequence: `SCSIMD_FORCE=scalar` and `SCSIMD_FORCE=native` must
//! produce byte-identical artifacts, and CI runs the suite under both to
//! prove it.
//!
//! An opt-in FMA profile ([`Profile::Fma`], env `SCSIMD_FMA=1`) contracts
//! the matmul multiply-adds on hosts with FMA units. It changes low-order
//! bits (one rounding instead of two) and is therefore excluded from all
//! golden gating — it exists for benchmarking the headroom the strict
//! profile leaves on the table.
//!
//! ## Accuracy policy
//!
//! Versus a correctly rounded (f64-computed) reference, the polynomial
//! kernels carry documented worst-case error bounds, enforced by proptests
//! in `tests/ulp.rs`:
//!
//! | kernel            | max ULP vs correctly rounded | domain            |
//! |-------------------|------------------------------|-------------------|
//! | [`scalar::exp`]     | ≤ 2                          | clamped to [[`scalar::EXP_LO`], [`scalar::EXP_HI`]] |
//! | [`scalar::sigmoid`] | ≤ 3                          | \|x\| ≤ 87 (saturates monotonically outside) |
//! | [`scalar::tanh`]    | ≤ 3                          | all finite f32    |
//! | softmax           | rows sum to 1 within 16 ULP  | non-NaN rows      |
//!
//! ## Dispatch
//!
//! ```
//! use scsimd::Isa;
//!
//! let isa = Isa::active(); // honors SCSIMD_FORCE, else detects the host
//! let mut xs = vec![0.0f32, 1.0, -2.0];
//! scsimd::exp_f32(&mut xs, isa);
//! assert!((xs[1] - std::f32::consts::E).abs() < 1e-6);
//! ```

use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

#[cfg(target_arch = "aarch64")]
mod neon;

/// Env var forcing the dispatched ISA: `scalar`, `native`, `avx2`, `neon`.
///
/// `native` (and unset) means "best ISA the host supports". Forcing an ISA
/// the host cannot execute falls back to [`Isa::Scalar`] — a safe,
/// deterministic choice — rather than faulting.
pub const FORCE_ENV: &str = "SCSIMD_FORCE";

/// Env var enabling the FMA matmul profile (`SCSIMD_FMA=1`). Changes
/// low-order result bits; never enabled for golden-gated runs.
pub const FMA_ENV: &str = "SCSIMD_FMA";

/// An instruction-set backend for the kernels in this crate.
///
/// All backends are bit-identical under the strict profile (see the crate
/// docs), so the choice is a pure performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Portable scalar reference kernels ([`scalar`]).
    Scalar,
    /// 256-bit AVX2 kernels (x86_64; 8 × f32, 4 × f64 lanes).
    Avx2,
    /// 128-bit NEON kernels (aarch64; 4 × f32, 2 × f64 lanes).
    Neon,
}

/// Arithmetic profile of the matmul panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Separate multiply and add — bit-identical to the scalar reference
    /// on every ISA. The default, and the only profile goldens gate.
    Strict,
    /// Contracted multiply-add where the host has an FMA unit. Faster and
    /// *more* accurate (one rounding), but bit-different; opt-in via
    /// [`FMA_ENV`] and excluded from golden comparisons.
    Fma,
}

impl Isa {
    /// The best ISA the host actually supports.
    pub fn detect_native() -> Isa {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return Isa::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            return Isa::Neon;
        }
        #[allow(unreachable_code)]
        Isa::Scalar
    }

    /// The process-wide ISA: [`FORCE_ENV`] if set (unsupported or unknown
    /// values fall back to [`Isa::Scalar`]), otherwise
    /// [`Isa::detect_native`]. Cached after the first call.
    pub fn active() -> Isa {
        static ACTIVE: OnceLock<Isa> = OnceLock::new();
        *ACTIVE.get_or_init(|| match std::env::var(FORCE_ENV) {
            Err(_) => Isa::detect_native(),
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "" | "native" => Isa::detect_native(),
                "avx2" if Isa::detect_native() == Isa::Avx2 => Isa::Avx2,
                "neon" if Isa::detect_native() == Isa::Neon => Isa::Neon,
                _ => Isa::Scalar,
            },
        })
    }

    /// A short stable name for logs and bench tables.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Neon => "neon",
        }
    }

    /// f32 lanes per vector register (1 for scalar).
    pub fn lanes_f32(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 8,
            Isa::Neon => 4,
        }
    }

    /// f64 lanes per vector register (1 for scalar).
    pub fn lanes_f64(self) -> usize {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 4,
            Isa::Neon => 2,
        }
    }

    /// Whether this ISA can run on the current host.
    pub fn is_supported(self) -> bool {
        self == Isa::Scalar || self == Isa::detect_native()
    }
}

/// The process-wide matmul profile: [`Profile::Fma`] iff [`FMA_ENV`] is
/// set to `1` *and* the host has an FMA unit; [`Profile::Strict`]
/// otherwise. Cached after the first call.
pub fn active_profile() -> Profile {
    static PROFILE: OnceLock<Profile> = OnceLock::new();
    *PROFILE.get_or_init(|| {
        let wants_fma = std::env::var(FMA_ENV).is_ok_and(|v| v == "1");
        #[cfg(target_arch = "x86_64")]
        {
            if wants_fma && std::arch::is_x86_feature_detected!("fma") {
                return Profile::Fma;
            }
        }
        let _ = wants_fma;
        Profile::Strict
    })
}

/// Guards an ISA request against the host: anything the host cannot run
/// degrades to [`Isa::Scalar`] so every call site is safe by construction.
fn usable(isa: Isa) -> Isa {
    if isa.is_supported() {
        isa
    } else {
        Isa::Scalar
    }
}

// ---------------------------------------------------------------------------
// Element-wise transcendentals (in place)
// ---------------------------------------------------------------------------

/// In-place vectorized `exp` over a slice. Bit-identical to mapping
/// [`scalar::exp`] on every backend.
pub fn exp_f32(xs: &mut [f32], isa: Isa) {
    match usable(isa) {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::exp_slice(xs) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::exp_slice(xs),
        _ => {
            for x in xs {
                *x = scalar::exp(*x);
            }
        }
    }
}

/// In-place vectorized logistic sigmoid. Bit-identical to mapping
/// [`scalar::sigmoid`] on every backend.
pub fn sigmoid_f32(xs: &mut [f32], isa: Isa) {
    match usable(isa) {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::sigmoid_slice(xs) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::sigmoid_slice(xs),
        _ => {
            for x in xs {
                *x = scalar::sigmoid(*x);
            }
        }
    }
}

/// In-place vectorized `tanh`. Bit-identical to mapping [`scalar::tanh`]
/// on every backend.
pub fn tanh_f32(xs: &mut [f32], isa: Isa) {
    match usable(isa) {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::tanh_slice(xs) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::tanh_slice(xs),
        _ => {
            for x in xs {
                *x = scalar::tanh(*x);
            }
        }
    }
}

/// In-place vectorized `max(x, 0)`. Bit-identical on every backend.
pub fn relu_f32(xs: &mut [f32], isa: Isa) {
    match usable(isa) {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::relu_slice(xs) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::relu_slice(xs),
        _ => {
            for x in xs {
                *x = x.max(0.0);
            }
        }
    }
}

/// In-place row-wise numerically stable softmax over a `rows × cols`
/// row-major buffer (`data.len()` must be a multiple of `cols`).
///
/// The max scan and the per-element `exp` are vectorized; the
/// normalizing sum is accumulated **in element order on every backend**,
/// which is what keeps scalar and SIMD outputs bit-identical (a lane-wise
/// horizontal sum would reassociate the additions).
///
/// # Panics
///
/// Panics if `cols == 0` while `data` is non-empty, or if `data.len()`
/// is not a multiple of `cols`.
pub fn softmax_rows_f32(data: &mut [f32], cols: usize, isa: Isa) {
    if data.is_empty() {
        return;
    }
    assert!(cols > 0, "softmax over zero columns");
    assert_eq!(data.len() % cols, 0, "buffer is not whole rows");
    match usable(isa) {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::softmax_rows(data, cols) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::softmax_rows(data, cols),
        _ => scalar::softmax_rows(data, cols),
    }
}

// ---------------------------------------------------------------------------
// Matmul panels
// ---------------------------------------------------------------------------

/// Accumulates an f32 row panel `a` (`rows × k`, `rows = a.len() / k`)
/// times `b` (`k × n`) into `out` (`rows × n`).
///
/// Semantics on every backend: for each output element, ascending-`k`
/// multiply-adds with rows of `a` equal to exactly `0.0` skipped — the
/// operation sequence of the classic ikj loop — so results are
/// bit-identical across ISAs under [`Profile::Strict`]. The AVX2/NEON
/// kernels tile the column dimension in registers for throughput.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `k` and `n`.
pub fn matmul_panel_f32(a: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32], isa: Isa) {
    check_panel(a.len(), b.len(), out.len(), k, n);
    if k == 0 || n == 0 {
        return;
    }
    match usable(isa) {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            if active_profile() == Profile::Fma {
                unsafe { avx2::matmul_panel_f32_fma(a, b, k, n, out) }
            } else {
                unsafe { avx2::matmul_panel_f32(a, b, k, n, out) }
            }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::matmul_panel_f32(a, b, k, n, out),
        _ => scalar::matmul_panel_f32(a, b, k, n, out),
    }
}

/// f64 counterpart of [`matmul_panel_f32`], with the same bit-stability
/// contract (4 lanes on AVX2, 2 on NEON).
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent with `k` and `n`.
pub fn matmul_panel_f64(a: &[f64], b: &[f64], k: usize, n: usize, out: &mut [f64], isa: Isa) {
    check_panel(a.len(), b.len(), out.len(), k, n);
    if k == 0 || n == 0 {
        return;
    }
    match usable(isa) {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => unsafe { avx2::matmul_panel_f64(a, b, k, n, out) },
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::matmul_panel_f64(a, b, k, n, out),
        _ => scalar::matmul_panel_f64(a, b, k, n, out),
    }
}

fn check_panel(a_len: usize, b_len: usize, out_len: usize, k: usize, n: usize) {
    if k == 0 {
        assert_eq!(a_len, 0, "k = 0 requires an empty panel");
        return;
    }
    assert_eq!(a_len % k, 0, "panel is not whole rows of width k");
    assert_eq!(b_len, k * n, "b must be k × n");
    assert_eq!(out_len, (a_len / k) * n, "out must be rows × n");
}

// ---------------------------------------------------------------------------
// ULP helpers (shared by the accuracy tests and callers documenting bounds)
// ---------------------------------------------------------------------------

/// Distance in units-in-the-last-place between two finite f32 values
/// (`u32::MAX` if either is NaN). Adjacent floats are 1 apart; equal
/// values (including `+0.0` vs `-0.0`) are 0 apart.
pub fn ulp_diff_f32(a: f32, b: f32) -> u32 {
    if a.is_nan() || b.is_nan() {
        return u32::MAX;
    }
    // Map the float line onto a monotone integer line (sign-magnitude to
    // offset encoding), then take the absolute difference.
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        let k = if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        };
        k as i64
    }
    let d = (key(a) - key(b)).unsigned_abs();
    u32::try_from(d).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_native_is_supported() {
        assert!(Isa::detect_native().is_supported());
        assert!(Isa::Scalar.is_supported());
    }

    #[test]
    fn active_is_stable() {
        assert_eq!(Isa::active(), Isa::active());
    }

    #[test]
    fn names_and_lanes() {
        assert_eq!(Isa::Scalar.name(), "scalar");
        assert_eq!(Isa::Avx2.lanes_f32(), 8);
        assert_eq!(Isa::Avx2.lanes_f64(), 4);
        assert_eq!(Isa::Neon.lanes_f32(), 4);
        assert_eq!(Isa::Scalar.lanes_f64(), 1);
        assert!(!Isa::Neon.name().is_empty());
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_diff_f32(1.0, 1.0), 0);
        assert_eq!(ulp_diff_f32(0.0, -0.0), 0);
        assert_eq!(ulp_diff_f32(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_diff_f32(f32::NAN, 1.0), u32::MAX);
        // Straddling zero: smallest positive and negative subnormals are
        // two ULPs apart (one step to ±0 each).
        assert_eq!(ulp_diff_f32(f32::from_bits(1), -f32::from_bits(1)), 2);
    }

    #[test]
    fn native_matches_scalar_on_all_ops() {
        // The strict-profile contract, checked directly on this host.
        let native = Isa::detect_native();
        let xs: Vec<f32> = (-40..40).map(|i| i as f32 * 0.37).collect();

        let mut a = xs.clone();
        let mut b = xs.clone();
        exp_f32(&mut a, Isa::Scalar);
        exp_f32(&mut b, native);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "exp must be bit-identical across ISAs"
        );

        let mut a = xs.clone();
        let mut b = xs.clone();
        tanh_f32(&mut a, Isa::Scalar);
        tanh_f32(&mut b, native);
        assert_eq!(a, b, "tanh must be bit-identical across ISAs");

        let mut a = xs.clone();
        let mut b = xs.clone();
        sigmoid_f32(&mut a, Isa::Scalar);
        sigmoid_f32(&mut b, native);
        assert_eq!(a, b, "sigmoid must be bit-identical across ISAs");

        let mut a = xs.clone();
        let mut b = xs.clone();
        softmax_rows_f32(&mut a, 8, Isa::Scalar);
        softmax_rows_f32(&mut b, 8, native);
        assert_eq!(a, b, "softmax must be bit-identical across ISAs");
    }

    #[test]
    fn panel_shape_checks() {
        let a = vec![0.0f32; 6];
        let b = vec![0.0f32; 6];
        let mut out = vec![0.0f32; 4];
        matmul_panel_f32(&a, &b, 3, 2, &mut out, Isa::Scalar);
        assert_eq!(out, vec![0.0; 4]);
        // k = 0 with empty slices is a no-op.
        matmul_panel_f32(&[], &[], 0, 2, &mut [], Isa::Scalar);
    }

    #[test]
    #[should_panic(expected = "b must be k × n")]
    fn panel_rejects_bad_b() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 3];
        let mut out = vec![0.0f32; 4];
        matmul_panel_f32(&a, &b, 2, 2, &mut out, Isa::Scalar);
    }
}
