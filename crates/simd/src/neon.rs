//! NEON kernels (aarch64, 128-bit registers: 4 × f32 / 2 × f64).
//!
//! Lane-wise mirrors of the [`crate::scalar`] reference, with the same
//! no-FMA strict profile as the AVX2 backend. NEON `vmin`/`vmax`
//! propagate NaN (unlike Rust's `min`/`max`, which return the other
//! operand), so the exp clamp uses explicit compare + select to land on
//! the scalar semantics bit-for-bit. NEON is baseline on aarch64, so
//! these functions are safe to call unconditionally there.

use core::arch::aarch64::*;

use crate::scalar;

/// `x.min(hi)` with Rust semantics (NaN → `hi`): `x < hi ? x : hi`.
#[inline]
fn min_rs(x: float32x4_t, hi: float32x4_t) -> float32x4_t {
    unsafe { vbslq_f32(vcltq_f32(x, hi), x, hi) }
}

/// `x.max(lo)` with Rust semantics (NaN → `lo`): `x > lo ? x : lo`.
#[inline]
fn max_rs(x: float32x4_t, lo: float32x4_t) -> float32x4_t {
    unsafe { vbslq_f32(vcgtq_f32(x, lo), x, lo) }
}

/// exp over one vector; the lane-wise mirror of [`scalar::exp`].
#[inline]
fn exp_v(x: float32x4_t) -> float32x4_t {
    unsafe {
        let x = max_rs(
            min_rs(x, vdupq_n_f32(scalar::EXP_HI)),
            vdupq_n_f32(scalar::EXP_LO),
        );

        // vcvtnq rounds to nearest even, matching `round_ties_even`.
        let n_i = vcvtnq_s32_f32(vmulq_f32(x, vdupq_n_f32(std::f32::consts::LOG2_E)));
        let n = vcvtq_f32_s32(n_i);

        let r = vsubq_f32(x, vmulq_f32(n, vdupq_n_f32(0.693_359_375)));
        let r = vsubq_f32(r, vmulq_f32(n, vdupq_n_f32(-2.121_944_4e-4)));

        let mut p = vdupq_n_f32(1.987_569_2e-4);
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(1.398_2e-3));
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(8.333_452e-3));
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(4.166_579_6e-2));
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(1.666_666_6e-1));
        p = vaddq_f32(vmulq_f32(p, r), vdupq_n_f32(5.000_000_3e-1));
        let e = vaddq_f32(
            vaddq_f32(vmulq_f32(p, vmulq_f32(r, r)), r),
            vdupq_n_f32(1.0),
        );

        let scale = vreinterpretq_f32_s32(vshlq_n_s32::<23>(vaddq_s32(n_i, vdupq_n_s32(127))));
        vmulq_f32(e, scale)
    }
}

/// sigmoid over one vector; mirror of [`scalar::sigmoid`].
#[inline]
fn sigmoid_v(x: float32x4_t) -> float32x4_t {
    unsafe {
        let neg = vreinterpretq_f32_u32(veorq_u32(
            vreinterpretq_u32_f32(x),
            vdupq_n_u32(0x8000_0000),
        ));
        let one = vdupq_n_f32(1.0);
        vdivq_f32(one, vaddq_f32(one, exp_v(neg)))
    }
}

/// tanh over one vector; mirror of [`scalar::tanh`], both paths blended.
#[inline]
fn tanh_v(x: float32x4_t) -> float32x4_t {
    unsafe {
        let bits = vreinterpretq_u32_f32(x);
        let ax = vreinterpretq_f32_u32(vandq_u32(bits, vdupq_n_u32(0x7fff_ffff)));
        let sign = vandq_u32(bits, vdupq_n_u32(0x8000_0000));

        let s = vmulq_f32(ax, ax);
        let mut p = vdupq_n_f32(-5.704_988_7e-3);
        p = vaddq_f32(vmulq_f32(p, s), vdupq_n_f32(2.063_908_9e-2));
        p = vaddq_f32(vmulq_f32(p, s), vdupq_n_f32(-5.373_971_6e-2));
        p = vaddq_f32(vmulq_f32(p, s), vdupq_n_f32(1.333_144_2e-1));
        p = vaddq_f32(vmulq_f32(p, s), vdupq_n_f32(-3.333_328_2e-1));
        let small = vaddq_f32(vmulq_f32(vmulq_f32(p, s), ax), ax);

        let one = vdupq_n_f32(1.0);
        let e = exp_v(vaddq_f32(ax, ax));
        let large = vsubq_f32(one, vdivq_f32(vdupq_n_f32(2.0), vaddq_f32(e, one)));

        // ax < TANH_SMALL → small path; NaN compares false → large path.
        let take_small = vcltq_f32(ax, vdupq_n_f32(scalar::TANH_SMALL));
        let r = vbslq_f32(take_small, small, large);
        vreinterpretq_f32_u32(vorrq_u32(vreinterpretq_u32_f32(r), sign))
    }
}

macro_rules! map_slice {
    ($xs:expr, $vec_fn:expr, $scalar_fn:expr) => {{
        let xs: &mut [f32] = $xs;
        let mut i = 0;
        while i + 4 <= xs.len() {
            unsafe {
                let p = xs.as_mut_ptr().add(i);
                vst1q_f32(p, $vec_fn(vld1q_f32(p)));
            }
            i += 4;
        }
        for x in &mut xs[i..] {
            *x = $scalar_fn(*x);
        }
    }};
}

/// In-place exp; see [`crate::exp_f32`].
pub fn exp_slice(xs: &mut [f32]) {
    map_slice!(xs, exp_v, scalar::exp);
}

/// In-place sigmoid; see [`crate::sigmoid_f32`].
pub fn sigmoid_slice(xs: &mut [f32]) {
    map_slice!(xs, sigmoid_v, scalar::sigmoid);
}

/// In-place tanh; see [`crate::tanh_f32`].
pub fn tanh_slice(xs: &mut [f32]) {
    map_slice!(xs, tanh_v, scalar::tanh);
}

/// In-place relu (`x > 0 ? x : 0`); see [`crate::relu_f32`].
pub fn relu_slice(xs: &mut [f32]) {
    let mut i = 0;
    while i + 4 <= xs.len() {
        unsafe {
            let p = xs.as_mut_ptr().add(i);
            let x = vld1q_f32(p);
            let zero = vdupq_n_f32(0.0);
            // compare + select (not vmax): NaN and -0.0 map to +0.0,
            // matching the scalar contract.
            vst1q_f32(p, vbslq_f32(vcgtq_f32(x, zero), x, zero));
        }
        i += 4;
    }
    for x in &mut xs[i..] {
        *x = if *x > 0.0 { *x } else { 0.0 };
    }
}

/// Row-wise softmax; see [`crate::softmax_rows_f32`]. Element-ordered
/// normalizing sum, like every other backend.
pub fn softmax_rows(data: &mut [f32], cols: usize) {
    for row in data.chunks_mut(cols) {
        let mut j = 0;
        let mut max = f32::NEG_INFINITY;
        if cols >= 4 {
            unsafe {
                let mut vmax = vdupq_n_f32(f32::NEG_INFINITY);
                while j + 4 <= cols {
                    vmax = vmaxq_f32(vmax, vld1q_f32(row.as_ptr().add(j)));
                    j += 4;
                }
                max = vmaxvq_f32(vmax);
            }
        }
        for &x in &row[j..] {
            max = max.max(x);
        }

        let mut j = 0;
        unsafe {
            let vmaxb = vdupq_n_f32(max);
            while j + 4 <= cols {
                let p = row.as_mut_ptr().add(j);
                vst1q_f32(p, exp_v(vsubq_f32(vld1q_f32(p), vmaxb)));
                j += 4;
            }
        }
        for x in &mut row[j..] {
            *x = scalar::exp(*x - max);
        }

        let mut sum = 0.0f32;
        for &x in row.iter() {
            sum += x;
        }

        let mut j = 0;
        unsafe {
            let vsum = vdupq_n_f32(sum);
            while j + 4 <= cols {
                let p = row.as_mut_ptr().add(j);
                vst1q_f32(p, vdivq_f32(vld1q_f32(p), vsum));
                j += 4;
            }
        }
        for x in &mut row[j..] {
            *x /= sum;
        }
    }
}

/// f32 matmul panel; bit-identical to [`scalar::matmul_panel_f32`].
/// 16-column tiles (4 registers), ascending-`k`, zero-skip, no FMA.
pub fn matmul_panel_f32(a: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    let rows = a.len() / k;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 16 <= n {
            unsafe {
                let op = o_row.as_mut_ptr().add(j);
                let mut acc0 = vld1q_f32(op);
                let mut acc1 = vld1q_f32(op.add(4));
                let mut acc2 = vld1q_f32(op.add(8));
                let mut acc3 = vld1q_f32(op.add(12));
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let va = vdupq_n_f32(av);
                    let bp = b.as_ptr().add(p * n + j);
                    acc0 = vaddq_f32(acc0, vmulq_f32(va, vld1q_f32(bp)));
                    acc1 = vaddq_f32(acc1, vmulq_f32(va, vld1q_f32(bp.add(4))));
                    acc2 = vaddq_f32(acc2, vmulq_f32(va, vld1q_f32(bp.add(8))));
                    acc3 = vaddq_f32(acc3, vmulq_f32(va, vld1q_f32(bp.add(12))));
                }
                vst1q_f32(op, acc0);
                vst1q_f32(op.add(4), acc1);
                vst1q_f32(op.add(8), acc2);
                vst1q_f32(op.add(12), acc3);
            }
            j += 16;
        }
        while j + 4 <= n {
            unsafe {
                let op = o_row.as_mut_ptr().add(j);
                let mut acc = vld1q_f32(op);
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    acc = vaddq_f32(
                        acc,
                        vmulq_f32(vdupq_n_f32(av), vld1q_f32(b.as_ptr().add(p * n + j))),
                    );
                }
                vst1q_f32(op, acc);
            }
            j += 4;
        }
        for jj in j..n {
            let mut acc = o_row[jj];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                acc += av * b[p * n + jj];
            }
            o_row[jj] = acc;
        }
    }
}

/// f64 matmul panel; bit-identical to [`scalar::matmul_panel_f64`].
pub fn matmul_panel_f64(a: &[f64], b: &[f64], k: usize, n: usize, out: &mut [f64]) {
    let rows = a.len() / k;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 8 <= n {
            unsafe {
                let op = o_row.as_mut_ptr().add(j);
                let mut acc0 = vld1q_f64(op);
                let mut acc1 = vld1q_f64(op.add(2));
                let mut acc2 = vld1q_f64(op.add(4));
                let mut acc3 = vld1q_f64(op.add(6));
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let va = vdupq_n_f64(av);
                    let bp = b.as_ptr().add(p * n + j);
                    acc0 = vaddq_f64(acc0, vmulq_f64(va, vld1q_f64(bp)));
                    acc1 = vaddq_f64(acc1, vmulq_f64(va, vld1q_f64(bp.add(2))));
                    acc2 = vaddq_f64(acc2, vmulq_f64(va, vld1q_f64(bp.add(4))));
                    acc3 = vaddq_f64(acc3, vmulq_f64(va, vld1q_f64(bp.add(6))));
                }
                vst1q_f64(op, acc0);
                vst1q_f64(op.add(2), acc1);
                vst1q_f64(op.add(4), acc2);
                vst1q_f64(op.add(6), acc3);
            }
            j += 8;
        }
        while j + 2 <= n {
            unsafe {
                let op = o_row.as_mut_ptr().add(j);
                let mut acc = vld1q_f64(op);
                for (p, &av) in a_row.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    acc = vaddq_f64(
                        acc,
                        vmulq_f64(vdupq_n_f64(av), vld1q_f64(b.as_ptr().add(p * n + j))),
                    );
                }
                vst1q_f64(op, acc);
            }
            j += 2;
        }
        for jj in j..n {
            let mut acc = o_row[jj];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                acc += av * b[p * n + jj];
            }
            o_row[jj] = acc;
        }
    }
}
