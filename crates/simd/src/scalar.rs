//! Scalar reference kernels — the bit-level ground truth for every
//! vector backend.
//!
//! The transcendentals are polynomial range-reduction kernels built only
//! from operations whose vector counterparts are IEEE-754-exact per lane:
//! multiply, add, subtract, divide, min/max, round-to-nearest-even (via
//! int conversion), and exponent-bit assembly. A vector lane replaying
//! the operation sequence written here lands on exactly the same bits,
//! which is what lets one golden set cover every ISA.
//!
//! Coefficients follow the classic Cephes single-precision `expf` /
//! `tanhf` kernels — the same lineage wasnn-vecmath uses — with measured
//! worst-case error ≤ 2 ULP (`exp`) and ≤ 3 ULP (`sigmoid`, `tanh`)
//! versus a correctly rounded f64 reference (enforced in `tests/ulp.rs`).

// The Cephes coefficients are written with their full decimal expansions
// so the exact bit patterns shared with the vector backends stay visible;
// trimming digits (as clippy suggests) would obscure that contract.
#![allow(clippy::excessive_precision)]

/// Inputs below this are clamped before exponentiation; `exp(EXP_LO)` is
/// on the order of the smallest normal f32.
pub const EXP_LO: f32 = -87.336_55;

/// Inputs above this are clamped before exponentiation, keeping the
/// scaled exponent within the normal range (no infinity from the
/// exponent-bit assembly).
pub const EXP_HI: f32 = 88.376_26;

const LOG2E: f32 = std::f32::consts::LOG2_E;
// ln(2) split hi/lo so `x - n*ln2` stays accurate without FMA.
const LN2_HI: f32 = 0.693_359_375;
const LN2_LO: f32 = -2.121_944_4e-4;

const EXP_C5: f32 = 1.987_569_2e-4;
const EXP_C4: f32 = 1.398_2e-3;
const EXP_C3: f32 = 8.333_452e-3;
const EXP_C2: f32 = 4.166_579_6e-2;
const EXP_C1: f32 = 1.666_666_6e-1;
const EXP_C0: f32 = 5.000_000_3e-1;

const TANH_P0: f32 = -5.704_988_7e-3;
const TANH_P1: f32 = 2.063_908_9e-2;
const TANH_P2: f32 = -5.373_971_6e-2;
const TANH_P3: f32 = 1.333_144_2e-1;
const TANH_P4: f32 = -3.333_328_2e-1;

/// Below this magnitude `tanh` uses the odd polynomial; above, the
/// exp-based identity (the Cephes split point).
pub const TANH_SMALL: f32 = 0.625;

/// Polynomial `exp` with inputs clamped to `[EXP_LO, EXP_HI]`.
///
/// Algorithm: `n = round(x·log2 e)` (round half to even), `r = x − n·ln 2`
/// via a hi/lo split, degree-7 polynomial for `exp(r)`, then scaling by
/// `2^n` assembled directly into the exponent bits. Every step is a
/// plain IEEE op — no FMA, no table lookups — so vector lanes reproduce
/// it exactly.
#[inline]
// Not `clamp`: `min(HI).max(LO)` maps NaN to a bound (the semantics the
// AVX2 `min_ps`/`max_ps` sequence reproduces), while `clamp` returns NaN.
#[allow(clippy::manual_clamp)]
pub fn exp(x: f32) -> f32 {
    let x = x.min(EXP_HI).max(EXP_LO);
    // Round-to-nearest-even, matching the vector int-conversion rounding.
    let n = (x * LOG2E).round_ties_even();
    let r = x - n * LN2_HI;
    let r = r - n * LN2_LO;
    let mut p = EXP_C5;
    p = p * r + EXP_C4;
    p = p * r + EXP_C3;
    p = p * r + EXP_C2;
    p = p * r + EXP_C1;
    p = p * r + EXP_C0;
    let e = p * (r * r) + r + 1.0;
    // 2^n for n in [-126, 127]: exponent bits only, mantissa zero.
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    e * scale
}

/// Logistic sigmoid `1 / (1 + exp(−x))` on the polynomial [`exp`].
///
/// Saturates cleanly at both ends thanks to the `exp` clamp: large
/// positive inputs return exactly `1.0`, large negative inputs a
/// positive value on the order of the smallest normal.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + exp(-x))
}

/// Polynomial `tanh`.
///
/// `|x| < TANH_SMALL` uses the odd polynomial `x + x³·P(x²)` (no
/// cancellation near zero); larger magnitudes use
/// `1 − 2/(exp(2|x|) + 1)` with the sign reapplied bitwise. The vector
/// kernels evaluate both paths and blend, which selects exactly the
/// value the taken scalar branch computes.
#[inline]
pub fn tanh(x: f32) -> f32 {
    let ax = f32::from_bits(x.to_bits() & 0x7fff_ffff);
    let sign = x.to_bits() & 0x8000_0000;
    let r = if ax < TANH_SMALL {
        let s = ax * ax;
        let mut p = TANH_P0;
        p = p * s + TANH_P1;
        p = p * s + TANH_P2;
        p = p * s + TANH_P3;
        p = p * s + TANH_P4;
        (p * s) * ax + ax
    } else {
        let e = exp(ax + ax);
        1.0 - 2.0 / (e + 1.0)
    };
    f32::from_bits(r.to_bits() | sign)
}

/// Row-wise numerically stable softmax over a row-major buffer; the
/// scalar form of [`crate::softmax_rows_f32`].
///
/// Per row: order-independent max scan, `exp(x − max)` per element, a
/// **strictly element-ordered** normalizing sum (the one reduction whose
/// order matters for bits), then an element-wise divide.
pub fn softmax_rows(data: &mut [f32], cols: usize) {
    for row in data.chunks_mut(cols) {
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        for x in row.iter_mut() {
            *x = exp(*x - max);
        }
        let mut sum = 0.0f32;
        for &x in row.iter() {
            sum += x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

/// Scalar f32 matmul panel: ascending-`k` multiply-adds into each output
/// element, skipping `a` entries that are exactly `0.0` (the fast path
/// for one-hot and padded inputs). This operation sequence is the
/// contract every vector backend reproduces.
pub fn matmul_panel_f32(a: &[f32], b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    let rows = a.len() / k;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Scalar f64 matmul panel; same contract as [`matmul_panel_f32`].
pub fn matmul_panel_f64(a: &[f64], b: &[f64], k: usize, n: usize, out: &mut [f64]) {
    let rows = a.len() / k;
    for i in 0..rows {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_exact_points() {
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(-0.0), 1.0);
        assert!((exp(1.0) - std::f32::consts::E).abs() < 1e-6);
        assert!(exp(EXP_HI).is_finite());
        assert!(exp(1000.0).is_finite(), "clamped, never inf");
        assert!(exp(-1000.0) > 0.0, "clamped, never zero");
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert_eq!(sigmoid(0.0), 0.5);
        assert_eq!(sigmoid(100.0), 1.0);
        assert!(sigmoid(-100.0) > 0.0 && sigmoid(-100.0) < 1e-30);
        for i in -50..=50 {
            let x = i as f32 * 0.3;
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn tanh_odd_and_saturating() {
        assert_eq!(tanh(0.0), 0.0);
        assert_eq!(tanh(-0.0).to_bits(), (-0.0f32).to_bits());
        assert_eq!(tanh(20.0), 1.0);
        assert_eq!(tanh(-20.0), -1.0);
        for i in 1..60 {
            let x = i as f32 * 0.17;
            assert_eq!(tanh(-x).to_bits(), (-tanh(x)).to_bits(), "odd at {x}");
        }
    }

    #[test]
    fn softmax_rows_normalize() {
        let mut data = vec![1.0f32, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut data, 3);
        for row in data.chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let mut data = vec![1000.0f32, 0.0];
        softmax_rows(&mut data, 2);
        assert!((data[0] - 1.0).abs() < 1e-6);
        assert!(data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn panel_matches_naive_triple_loop() {
        let (rows, k, n) = (3, 5, 7);
        let a: Vec<f32> = (0..rows * k).map(|i| (i as f32) * 0.3 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.1 - 1.5).collect();
        let mut got = vec![0.0f32; rows * n];
        matmul_panel_f32(&a, &b, k, n, &mut got);
        let mut want = vec![0.0f32; rows * n];
        for i in 0..rows {
            for j in 0..n {
                for p in 0..k {
                    want[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn f64_panel_zero_skip_consistency() {
        // A panel with explicit zeros must equal the dense accumulation
        // (adding av*b when av == 0 contributes nothing representable).
        let a = vec![0.0f64, 2.0, 1.0, 0.0];
        let b = vec![1.0f64, 2.0, 3.0, 4.0];
        let mut out = vec![0.0f64; 4];
        matmul_panel_f64(&a, &b, 2, 2, &mut out);
        assert_eq!(out, vec![6.0, 8.0, 1.0, 2.0]);
    }
}
