//! # scpar — deterministic parallel runtime for the smart-city stack
//!
//! The paper's four-tier fog model exists because one machine cannot keep up
//! with city-scale load; this crate is the shared-memory half of that
//! argument. It provides a fixed-size worker pool (plain `std::thread` scoped
//! threads fed over `crossbeam` channels) with one non-negotiable contract:
//!
//! > **Determinism.** For a given input and seed, every thread count — 1, 2,
//! > 8, 64 — produces byte-identical outputs and byte-identical telemetry
//! > snapshots.
//!
//! Two rules make that hold:
//!
//! 1. **Chunk boundaries are a function of the input only.** Callers pass an
//!    explicit chunk size; `scpar` never derives chunking from the thread
//!    count, so the set of partial results is the same no matter how many
//!    workers raced over the queue.
//! 2. **Results are combined in submission order.** [`par_map_chunks`]
//!    returns chunk results indexed by chunk, and [`par_reduce`] folds the
//!    partials left-to-right in chunk order. Floating-point accumulation is
//!    non-associative, so this ordering — not just "all results present" —
//!    is what makes `f32`/`f64` reductions bit-stable across thread counts.
//!
//! The pool size comes from [`ScparConfig`]: explicit via
//! [`ScparConfig::with_threads`], or ambient via [`ScparConfig::from_env`]
//! which honours the `SCPAR_THREADS` environment variable and falls back to
//! [`std::thread::available_parallelism`].
//!
//! # Examples
//!
//! ```
//! use scpar::{par_reduce, ScparConfig};
//!
//! let xs: Vec<f64> = (0..10_000).map(|i| 1.0 / (1.0 + i as f64)).collect();
//! let serial = par_reduce(
//!     &ScparConfig::serial(),
//!     &xs,
//!     256,
//!     |_ci, chunk| chunk.iter().sum::<f64>(),
//!     |a, b| a + b,
//! );
//! let parallel = par_reduce(
//!     &ScparConfig::with_threads(8),
//!     &xs,
//!     256,
//!     |_ci, chunk| chunk.iter().sum::<f64>(),
//!     |a, b| a + b,
//! );
//! assert_eq!(serial, parallel); // bit-identical, not merely close
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use crossbeam::channel;

/// Environment variable that overrides the default worker count used by
/// [`ScparConfig::from_env`].
pub const THREADS_ENV: &str = "SCPAR_THREADS";

/// Worker-pool configuration threaded through the stack's run APIs.
///
/// The thread count only controls *how fast* work finishes, never *what* the
/// result is — see the crate docs for the determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScparConfig {
    threads: usize,
}

impl ScparConfig {
    /// A single-threaded configuration: every combinator runs inline on the
    /// calling thread.
    pub fn serial() -> Self {
        ScparConfig { threads: 1 }
    }

    /// A configuration with exactly `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        ScparConfig {
            threads: threads.max(1),
        }
    }

    /// Reads the ambient configuration: `SCPAR_THREADS` if set to a positive
    /// integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        let from_var = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0);
        let threads = from_var.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ScparConfig { threads }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether parallel combinators will actually spawn workers.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }
}

impl Default for ScparConfig {
    /// Equivalent to [`ScparConfig::from_env`].
    fn default() -> Self {
        ScparConfig::from_env()
    }
}

pub use crossbeam::thread::{Scope, ScopedJoinHandle};

/// Runs `f` inside a scope in which borrowed threads can be spawned,
/// propagating any worker panic to the caller.
///
/// This is a thin convenience over `crossbeam::thread::scope` that unwraps
/// the `Result`, matching how every call site in this workspace uses it.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    match crossbeam::thread::scope(f) {
        Ok(r) => r,
        Err(panic) => std::panic::resume_unwind(panic),
    }
}

/// Number of chunks of size `chunk` needed to cover `len` items.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn chunk_count(len: usize, chunk: usize) -> usize {
    assert!(chunk > 0, "chunk size must be positive");
    len.div_ceil(chunk)
}

/// Maps fixed-size chunks of `items` through `f` on the worker pool,
/// returning one result per chunk **in chunk order**.
///
/// `f` receives `(chunk_index, chunk_slice)`; chunk `ci` covers
/// `items[ci * chunk .. min((ci + 1) * chunk, len)]`. Because the chunk
/// boundaries depend only on `items.len()` and `chunk`, and the returned
/// `Vec` is ordered by chunk index, the output is identical for any thread
/// count — including the inline serial path taken when `cfg` has one thread
/// or there is at most one chunk.
///
/// # Panics
///
/// Panics if `chunk` is zero, or propagates the panic if `f` panics on any
/// worker.
pub fn par_map_chunks<T, R, F>(cfg: &ScparConfig, items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let n_chunks = chunk_count(items.len(), chunk);
    let workers = cfg.threads.min(n_chunks);
    if workers <= 1 {
        return (0..n_chunks)
            .map(|ci| {
                let start = ci * chunk;
                let end = (start + chunk).min(items.len());
                f(ci, &items[start..end])
            })
            .collect();
    }

    // Fixed-size pool: `workers` scoped threads drain a shared job queue of
    // chunk indices and send `(chunk_index, result)` back; the caller
    // reassembles by index, so arrival order is irrelevant.
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for ci in 0..n_chunks {
        job_tx.send(ci).expect("receiver alive");
    }
    drop(job_tx);
    let (res_tx, res_rx) = channel::unbounded::<(usize, R)>();

    let mut slots: Vec<Option<R>> = scope(|s| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            s.spawn(move |_| {
                while let Ok(ci) = job_rx.recv() {
                    let start = ci * chunk;
                    let end = (start + chunk).min(items.len());
                    let r = f(ci, &items[start..end]);
                    if res_tx.send((ci, r)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        let mut slots: Vec<Option<R>> = (0..n_chunks).map(|_| None).collect();
        // Ends when every worker dropped its sender (finished or panicked);
        // a worker panic leaves a hole here and then propagates via `scope`.
        while let Ok((ci, r)) = res_rx.recv() {
            slots[ci] = Some(r);
        }
        slots
    });

    slots
        .iter_mut()
        .map(|s| s.take().expect("worker panics propagate before this"))
        .collect()
}

/// Maps every item of `items` through `f` on the worker pool, preserving
/// item order.
///
/// Unlike [`par_map_chunks`], the internal chunking here is free to consider
/// the worker count, because the output is per-*item*: chunk boundaries
/// cannot be observed in the result, so determinism holds regardless.
pub fn par_map<T, R, F>(cfg: &ScparConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    // Aim for a few chunks per worker so stragglers rebalance.
    let chunk = items.len().div_ceil(cfg.threads * 4).max(1);
    let chunked = par_map_chunks(cfg, items, chunk, |_ci, part| {
        part.iter().map(&f).collect::<Vec<R>>()
    });
    chunked.into_iter().flatten().collect()
}

/// Deterministic parallel reduction: maps each fixed-size chunk through
/// `map`, then folds the per-chunk partials **left-to-right in chunk order**
/// with `fold`.
///
/// The ordered fold is the load-bearing part: floating-point addition is not
/// associative, so folding partials in a thread-dependent order would make
/// the result depend on scheduling. Here it never does — `par_reduce` with 8
/// threads returns the same bits as with 1.
///
/// Returns `None` when `items` is empty.
///
/// # Panics
///
/// Panics if `chunk` is zero.
pub fn par_reduce<T, A, F, G>(
    cfg: &ScparConfig,
    items: &[T],
    chunk: usize,
    map: F,
    fold: G,
) -> Option<A>
where
    T: Sync,
    A: Send,
    F: Fn(usize, &[T]) -> A + Sync,
    G: FnMut(A, A) -> A,
{
    if items.is_empty() {
        return None;
    }
    let mut parts = par_map_chunks(cfg, items, chunk, map).into_iter();
    let first = parts.next().expect("non-empty input yields a chunk");
    Some(parts.fold(first, {
        let mut fold = fold;
        move |acc, x| fold(acc, x)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_clamps_and_reports() {
        assert_eq!(ScparConfig::with_threads(0).threads(), 1);
        assert_eq!(ScparConfig::with_threads(6).threads(), 6);
        assert!(!ScparConfig::serial().is_parallel());
        assert!(ScparConfig::with_threads(2).is_parallel());
    }

    #[test]
    fn chunk_count_covers_all() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(7, 4), 2);
        assert_eq!(chunk_count(8, 4), 2);
        assert_eq!(chunk_count(9, 4), 3);
    }

    #[test]
    fn map_chunks_results_in_chunk_order() {
        let items: Vec<u32> = (0..103).collect();
        for threads in [1, 2, 4, 8] {
            let cfg = ScparConfig::with_threads(threads);
            let got = par_map_chunks(&cfg, &items, 10, |ci, part| (ci, part.to_vec()));
            assert_eq!(got.len(), 11);
            for (i, (ci, part)) in got.iter().enumerate() {
                assert_eq!(*ci, i);
                assert_eq!(part[0], (i * 10) as u32);
            }
            assert_eq!(got[10].1.len(), 3, "tail chunk is short");
        }
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<i64> = (0..1000).collect();
        let cfg = ScparConfig::with_threads(4);
        let got = par_map(&cfg, &items, |&x| x * 2);
        let want: Vec<i64> = items.iter().map(|&x| x * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn reduce_is_bitwise_thread_independent() {
        // Sums of reciprocals: any reordering of the fold changes the bits.
        let xs: Vec<f64> = (0..9999).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let run = |threads| {
            par_reduce(
                &ScparConfig::with_threads(threads),
                &xs,
                128,
                |_ci, c| c.iter().sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap()
        };
        let serial = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(serial.to_bits(), run(threads).to_bits());
        }
    }

    #[test]
    fn reduce_empty_is_none() {
        let none = par_reduce(
            &ScparConfig::serial(),
            &[] as &[f64],
            8,
            |_ci, c| c.iter().sum::<f64>(),
            |a, b| a + b,
        );
        assert!(none.is_none());
    }

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3];
        let sum = scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u64>());
            h.join().unwrap()
        });
        assert_eq!(sum, 6);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let cfg = ScparConfig::with_threads(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map_chunks(&cfg, &items, 4, |ci, _part| {
                assert!(ci != 7, "deliberate test panic");
                ci
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn from_env_default_is_positive() {
        assert!(ScparConfig::from_env().threads() >= 1);
    }
}
