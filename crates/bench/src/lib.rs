//! Shared helpers for the experiment benches.
//!
//! Every bench in `benches/` follows the same pattern: print the
//! paper-shaped table/series once (the "figure regeneration"), then let
//! Criterion measure the representative kernel. The printed rows are what
//! `EXPERIMENTS.md` records.

/// Prints an experiment header.
pub fn header(id: &str, anchor: &str, description: &str) {
    println!("\n================================================================");
    println!("{id} — {anchor}");
    println!("{description}");
    println!("================================================================");
}

/// Prints a table of rows with a column header line.
pub fn table(columns: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(c.len()))
                .max()
                .unwrap_or(c.len())
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(columns.iter().map(|s| s.to_string()).collect())
    );
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}

/// Formats a float to 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float to 1 decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }

    #[test]
    fn table_does_not_panic_on_ragged_rows() {
        table(
            &["a", "b"],
            &[vec!["1".into()], vec!["22".into(), "333".into()]],
        );
    }
}
