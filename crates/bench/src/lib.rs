//! Shared helpers for the experiment benches.
//!
//! Every bench in `benches/` follows the same pattern: print the
//! paper-shaped table/series once (the "figure regeneration"), then let
//! Criterion measure the representative kernel. The printed rows are what
//! `EXPERIMENTS.md` records.
//!
//! On top of the printing helpers this crate hosts the *perf observatory*:
//!
//! * [`quick`] — the consolidated quick-mode switch. `SCBENCH_QUICK=1`
//!   shrinks every experiment; the legacy per-experiment flags
//!   (`E14_QUICK` .. `E18_QUICK`) are still honored.
//! * [`BenchJson`] — a schema-versioned `BENCH_<name>.json` emitter. Each
//!   bench records its deterministic outputs (counts, rates derived from
//!   the simulated clock) and its measured wall-clock metrics, plus an
//!   optional per-kernel profile table from [`scprof`].
//! * [`gate`] — the comparison logic behind the `perf_gate` binary:
//!   deterministic fields must match a committed baseline exactly, measured
//!   fields are held to direction-aware tolerance bands.

use serde_json::{json, Map, Value};
use std::path::PathBuf;

/// Schema version stamped into every `BENCH_<name>.json`.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Env var that shrinks every experiment to a fast smoke-sized run.
pub const QUICK_ENV: &str = "SCBENCH_QUICK";

/// Env var overriding the output directory for `BENCH_<name>.json` files.
pub const JSON_DIR_ENV: &str = "SCBENCH_JSON_DIR";

/// Env var multiplying time-like measured metrics, used by the perf-gate
/// self-test to prove the gate trips on an injected slowdown.
pub const SLOWDOWN_ENV: &str = "SCPROF_TEST_SLOWDOWN";

/// Prints an experiment header.
pub fn header(id: &str, anchor: &str, description: &str) {
    println!("\n================================================================");
    println!("{id} — {anchor}");
    println!("{description}");
    println!("================================================================");
}

/// Prints a table of rows with a column header line.
pub fn table(columns: &[&str], rows: &[Vec<String>]) {
    let widths: Vec<usize> = columns
        .iter()
        .enumerate()
        .map(|(i, c)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, String::len))
                .chain(std::iter::once(c.len()))
                .max()
                .unwrap_or(c.len())
        })
        .collect();
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(columns.iter().map(|s| s.to_string()).collect())
    );
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}

/// Formats a float to 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float to 1 decimal place.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Consolidated quick-mode switch for an experiment id such as `"e15"`.
///
/// Returns true when `SCBENCH_QUICK` is set, or when the legacy
/// per-experiment flag (`E15_QUICK` for `"e15"`, and so on) is set. The
/// legacy flags predate the shared switch and stay honored so existing
/// invocations keep working.
pub fn quick(experiment: &str) -> bool {
    if std::env::var_os(QUICK_ENV).is_some() {
        return true;
    }
    let legacy = format!("{}_QUICK", experiment.to_ascii_uppercase());
    std::env::var_os(legacy).is_some()
}

/// Slowdown factor injected by the perf-gate self-test (default 1.0).
pub fn test_slowdown() -> f64 {
    std::env::var(SLOWDOWN_ENV)
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| v.is_finite() && *v > 0.0)
        .unwrap_or(1.0)
}

/// Directory where `BENCH_<name>.json` files are written.
pub fn json_dir() -> PathBuf {
    match std::env::var_os(JSON_DIR_ENV) {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target/bench-json"),
    }
}

/// Direction of a measured metric, inferred from its name suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricDirection {
    /// Time-like (`_ms`, `_s`, `_us`, `_ns`): smaller is better.
    LowerIsBetter,
    /// Throughput-like (`_per_s`, `_rps`, `_gflops`): larger is better.
    HigherIsBetter,
    /// Unknown suffix: held to the band in both directions.
    Unknown,
}

/// Classifies a measured metric name into a comparison direction.
pub fn metric_direction(name: &str) -> MetricDirection {
    if name.ends_with("_per_s") || name.ends_with("_rps") || name.ends_with("_gflops") {
        MetricDirection::HigherIsBetter
    } else if name.ends_with("_ms")
        || name.ends_with("_us")
        || name.ends_with("_ns")
        || name.ends_with("_s")
        || name.ends_with("_secs")
    {
        MetricDirection::LowerIsBetter
    } else {
        MetricDirection::Unknown
    }
}

/// Builder for a schema-versioned `BENCH_<name>.json` artifact.
///
/// Deterministic metrics are exact-compared by the perf gate and must be
/// byte-identical for identical seeds at any `SCPAR_THREADS`. Measured
/// metrics carry wall-clock noise and are compared with tolerance bands
/// (or skipped entirely with `perf_gate --skip-measured`).
pub struct BenchJson {
    name: String,
    quick: bool,
    deterministic: Map<String, Value>,
    measured: Map<String, Value>,
    profile: Option<Value>,
    tuning: Option<Value>,
}

impl BenchJson {
    /// Starts a report for the experiment `name` (e.g. `"e15"`).
    pub fn new(name: &str, quick: bool) -> Self {
        Self {
            name: name.to_string(),
            quick,
            deterministic: Map::new(),
            measured: Map::new(),
            profile: None,
            tuning: None,
        }
    }

    /// Records a deterministic (exact-compared) metric.
    pub fn det(&mut self, key: &str, value: Value) -> &mut Self {
        self.deterministic.insert(key.to_string(), value);
        self
    }

    /// Records a deterministic integer metric.
    pub fn det_u(&mut self, key: &str, value: u64) -> &mut Self {
        self.det(key, json!(value))
    }

    /// Records a deterministic float, rounded to 6 decimals so the JSON
    /// text is stable across formatting quirks.
    pub fn det_f(&mut self, key: &str, value: f64) -> &mut Self {
        let rounded = (value * 1e6).round() / 1e6;
        self.deterministic.insert(key.to_string(), json!(rounded));
        self
    }

    /// Records a measured (tolerance-compared) metric. Time-like metrics
    /// are scaled by [`test_slowdown`] at emission so the gate self-test
    /// can inject a regression without touching the kernels.
    pub fn measured(&mut self, key: &str, value: f64) -> &mut Self {
        let slow = test_slowdown();
        let v = match metric_direction(key) {
            MetricDirection::LowerIsBetter => value * slow,
            MetricDirection::HigherIsBetter => value / slow,
            MetricDirection::Unknown => value,
        };
        let rounded = (v * 1e6).round() / 1e6;
        self.measured.insert(key.to_string(), json!(rounded));
        self
    }

    /// Attaches a per-kernel profile table from an [`scprof`] report.
    /// `elapsed_s` is the (simulated or measured) window used for rates.
    pub fn profile(&mut self, report: &scprof::ProfileReport, elapsed_s: f64) -> &mut Self {
        let kernels: Vec<Value> = report
            .top_by_cost(usize::MAX)
            .iter()
            .map(|k| {
                json!({
                    "name": k.name,
                    "flops": k.work.flops,
                    "bytes": k.work.bytes,
                    "items": k.work.items,
                    "pct_cost": format!("{:.2}", report.pct_cost(k)),
                    "gflops_per_s": format!("{:.6}", k.gflops_per_s(elapsed_s)),
                })
            })
            .collect();
        self.profile = Some(json!({
            "elapsed_s": format!("{elapsed_s:.6}"),
            "kernels": kernels,
        }));
        self
    }

    /// Attaches the scheduling decisions an [`sctune::Tuner`] recorded
    /// while the bench ran, so the artifact shows which config actually
    /// executed each kernel shape. Lives outside the `deterministic`
    /// section because tune keys carry the thread count — exact-comparing
    /// them across the CI thread matrix would always trip the gate.
    pub fn tuning(&mut self, decisions: &[sctune::Decision]) -> &mut Self {
        let rows: Vec<Value> = decisions
            .iter()
            .map(|d| {
                json!({
                    "key": d.key,
                    "param": d.param,
                    "value": d.value as u64,
                    "source": d.source.label(),
                })
            })
            .collect();
        self.tuning = Some(Value::Array(rows));
        self
    }

    /// Serializes the report to its JSON document.
    pub fn to_value(&self) -> Value {
        let threads = std::env::var("SCPAR_THREADS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get() as u64));
        let git_rev = git_rev();
        let mut doc = Map::new();
        doc.insert("schema_version".into(), json!(BENCH_SCHEMA_VERSION));
        doc.insert("name".into(), json!(self.name));
        doc.insert(
            "env".into(),
            json!({
                "threads": threads,
                "quick": self.quick,
                "git_rev": git_rev,
            }),
        );
        doc.insert(
            "deterministic".into(),
            Value::Object(self.deterministic.clone()),
        );
        doc.insert("measured".into(), Value::Object(self.measured.clone()));
        if let Some(profile) = &self.profile {
            doc.insert("profile".into(), profile.clone());
        }
        if let Some(tuning) = &self.tuning {
            doc.insert("tuning".into(), tuning.clone());
        }
        Value::Object(doc)
    }

    /// Writes `BENCH_<name>.json` into [`json_dir`] and returns the path.
    /// Failures are printed, not fatal: a bench must never die because the
    /// observatory directory is read-only.
    pub fn write(&self) -> Option<PathBuf> {
        let dir = json_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("scbench: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("BENCH_{}.json", self.name));
        let text = serde_json::to_string_pretty(&self.to_value()).unwrap_or_default();
        match std::fs::write(&path, text + "\n") {
            Ok(()) => {
                println!("bench-json: wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("scbench: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Best-effort short git revision for the env fingerprint.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("SCBENCH_GIT_REV") {
        return rev;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

pub mod gate {
    //! Baseline comparison used by the `perf_gate` binary.
    //!
    //! Deterministic fields must match the committed baseline exactly;
    //! measured fields are held to a direction-aware relative tolerance.
    //! The injected-slowdown self-test sets [`super::SLOWDOWN_ENV`], which
    //! scales time-like measured metrics of the *fresh* side at load time,
    //! so gating a directory against itself deterministically trips.

    use super::{metric_direction, MetricDirection};
    use serde_json::Value;
    use std::path::Path;

    /// One divergence between baseline and fresh run.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Regression {
        pub bench: String,
        pub metric: String,
        pub detail: String,
    }

    /// Outcome of comparing one pair of BENCH documents.
    #[derive(Debug, Default)]
    pub struct Comparison {
        pub regressions: Vec<Regression>,
        pub checked_deterministic: usize,
        pub checked_measured: usize,
    }

    fn object<'v>(doc: &'v Value, key: &str) -> Option<&'v serde_json::Map<String, Value>> {
        doc.get(key).and_then(Value::as_object)
    }

    /// Compares one baseline document against one fresh document.
    ///
    /// `tolerance` is the allowed relative slack on measured metrics
    /// (0.5 = a time metric may be up to 1.5x the baseline). `slowdown`
    /// scales time-like fresh metrics before comparison (the self-test
    /// hook); pass 1.0 for a real gate run.
    pub fn compare_docs(
        bench: &str,
        baseline: &Value,
        fresh: &Value,
        tolerance: f64,
        skip_measured: bool,
        slowdown: f64,
    ) -> Comparison {
        let mut out = Comparison::default();
        let mut push = |metric: &str, detail: String| {
            out.regressions.push(Regression {
                bench: bench.to_string(),
                metric: metric.to_string(),
                detail,
            });
        };

        let base_schema = baseline.get("schema_version").and_then(Value::as_u64);
        let fresh_schema = fresh.get("schema_version").and_then(Value::as_u64);
        if base_schema != fresh_schema {
            push(
                "schema_version",
                format!("baseline {base_schema:?} vs fresh {fresh_schema:?}"),
            );
            return out;
        }

        let base_det = object(baseline, "deterministic");
        let fresh_det = object(fresh, "deterministic");
        if let (Some(base_det), Some(fresh_det)) = (base_det, fresh_det) {
            for (key, expect) in base_det {
                out.checked_deterministic += 1;
                match fresh_det.get(key) {
                    None => push(key, "missing in fresh run".to_string()),
                    Some(got) if got != expect => push(key, format!("expected {expect} got {got}")),
                    Some(_) => {}
                }
            }
        } else if base_det.is_some() {
            push("deterministic", "section missing in fresh run".to_string());
        }

        if !skip_measured {
            let base_meas = object(baseline, "measured");
            let fresh_meas = object(fresh, "measured");
            if let (Some(base_meas), Some(fresh_meas)) = (base_meas, fresh_meas) {
                for (key, expect) in base_meas {
                    let (Some(base_v), Some(fresh_v)) =
                        (expect.as_f64(), fresh_meas.get(key).and_then(Value::as_f64))
                    else {
                        push(key, "missing or non-numeric in fresh run".to_string());
                        continue;
                    };
                    out.checked_measured += 1;
                    let dir = metric_direction(key);
                    let fresh_v = match dir {
                        MetricDirection::LowerIsBetter => fresh_v * slowdown,
                        MetricDirection::HigherIsBetter => fresh_v / slowdown,
                        MetricDirection::Unknown => fresh_v,
                    };
                    if base_v == 0.0 {
                        continue; // no meaningful relative band
                    }
                    let ratio = fresh_v / base_v;
                    let bad = match dir {
                        MetricDirection::LowerIsBetter => ratio > 1.0 + tolerance,
                        MetricDirection::HigherIsBetter => ratio < 1.0 / (1.0 + tolerance),
                        MetricDirection::Unknown => {
                            ratio > 1.0 + tolerance || ratio < 1.0 / (1.0 + tolerance)
                        }
                    };
                    if bad {
                        push(
                            key,
                            format!(
                                "baseline {base_v:.6} vs fresh {fresh_v:.6} (ratio {ratio:.3}, tolerance {tolerance:.2})"
                            ),
                        );
                    }
                }
            } else if base_meas.is_some() {
                push("measured", "section missing in fresh run".to_string());
            }
        }
        out
    }

    /// Compares every `BENCH_*.json` in `baseline_dir` against its
    /// counterpart in `fresh_dir`. A baseline file with no fresh
    /// counterpart is a regression (the bench stopped emitting).
    pub fn compare_dirs(
        baseline_dir: &Path,
        fresh_dir: &Path,
        tolerance: f64,
        skip_measured: bool,
        slowdown: f64,
    ) -> std::io::Result<Comparison> {
        let mut out = Comparison::default();
        let mut names: Vec<String> = std::fs::read_dir(baseline_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect();
        names.sort();
        if names.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no BENCH_*.json in {}", baseline_dir.display()),
            ));
        }
        for name in names {
            let bench = name
                .trim_start_matches("BENCH_")
                .trim_end_matches(".json")
                .to_string();
            let baseline: Value =
                serde_json::from_str(&std::fs::read_to_string(baseline_dir.join(&name))?)
                    .map_err(std::io::Error::other)?;
            let fresh_path = fresh_dir.join(&name);
            if !fresh_path.exists() {
                out.regressions.push(Regression {
                    bench,
                    metric: "<file>".to_string(),
                    detail: format!("fresh run did not emit {name}"),
                });
                continue;
            }
            let fresh: Value = serde_json::from_str(&std::fs::read_to_string(&fresh_path)?)
                .map_err(std::io::Error::other)?;
            let one = compare_docs(
                &bench,
                &baseline,
                &fresh,
                tolerance,
                skip_measured,
                slowdown,
            );
            out.regressions.extend(one.regressions);
            out.checked_deterministic += one.checked_deterministic;
            out.checked_measured += one.checked_measured;
        }
        Ok(out)
    }
}

/// Re-exported for benches that build profile tables.
pub use scprof::{ProfileReport, Profiler};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f1(1.26), "1.3");
    }

    #[test]
    fn table_does_not_panic_on_ragged_rows() {
        table(
            &["a", "b"],
            &[vec!["1".into()], vec!["22".into(), "333".into()]],
        );
    }

    #[test]
    fn metric_directions_follow_suffix() {
        assert_eq!(metric_direction("wall_ms"), MetricDirection::LowerIsBetter);
        assert_eq!(
            metric_direction("elapsed_s"),
            MetricDirection::LowerIsBetter
        );
        assert_eq!(
            metric_direction("throughput_per_s"),
            MetricDirection::HigherIsBetter
        );
        assert_eq!(metric_direction("accuracy"), MetricDirection::Unknown);
    }

    #[test]
    fn bench_json_document_shape() {
        let mut b = BenchJson::new("e99", true);
        b.det_u("items", 42).det_f("ratio", 0.123456789);
        b.measured("wall_ms", 12.5);
        let doc = b.to_value();
        assert_eq!(doc["schema_version"], json!(BENCH_SCHEMA_VERSION));
        assert_eq!(doc["name"], json!("e99"));
        assert_eq!(doc["deterministic"]["items"], json!(42));
        assert_eq!(doc["deterministic"]["ratio"], json!(0.123457));
        assert_eq!(doc["measured"]["wall_ms"], json!(12.5));
        assert!(doc["env"].get("threads").is_some());
        assert!(doc["env"].get("git_rev").is_some());
    }

    #[test]
    fn gate_passes_identical_and_trips_on_slowdown() {
        let mut b = BenchJson::new("e99", true);
        b.det_u("items", 42);
        b.measured("wall_ms", 10.0);
        let doc = b.to_value();
        let same = gate::compare_docs("e99", &doc, &doc, 0.5, false, 1.0);
        assert!(same.regressions.is_empty(), "{:?}", same.regressions);
        assert_eq!(same.checked_deterministic, 1);
        assert_eq!(same.checked_measured, 1);

        // Injected 2x slowdown on the fresh side must trip the band.
        let slow = gate::compare_docs("e99", &doc, &doc, 0.5, false, 2.0);
        assert_eq!(slow.regressions.len(), 1);
        assert!(slow.regressions[0].metric == "wall_ms");

        // ... unless measured comparison is skipped.
        let skipped = gate::compare_docs("e99", &doc, &doc, 0.5, true, 2.0);
        assert!(skipped.regressions.is_empty());
    }

    #[test]
    fn gate_trips_on_deterministic_drift() {
        let mut a = BenchJson::new("e99", true);
        a.det_u("items", 42);
        let mut b = BenchJson::new("e99", true);
        b.det_u("items", 43);
        let cmp = gate::compare_docs("e99", &a.to_value(), &b.to_value(), 0.5, true, 1.0);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].metric, "items");
    }

    #[test]
    fn quick_honors_shared_and_legacy_flags() {
        // Can't mutate process env safely under the parallel test runner,
        // so only assert the negative path for a flag nobody sets.
        assert!(!quick("e99"));
    }
}
