//! Regenerates `tuning_table.json`: scores every candidate schedule for a
//! fixed grid of problem shapes and writes the winners.
//!
//! Two scoring modes:
//!
//! * **cost-model** (default) — the seeded analytic [`sctune::CostModel`].
//!   Fully reproducible: the same seed writes the same table on every
//!   host, which is why the committed table is generated this way.
//! * **measure** (`--measure`) — median-of-5 wall clock per candidate for
//!   the compute kernels, on *this* host. Use it when retuning for new
//!   hardware (see PERF.md); the output is honest but machine-specific,
//!   so don't commit it from a noisy laptop. `micro_batch` always scores
//!   by cost model: its wall time is dominated by the model flush, which
//!   the candidate barely moves, so measurement is pure noise there.
//!
//! `--check <path>` instead verifies the committed table: parse, validate,
//! re-serialize, and compare byte-for-byte (CI runs this).
//!
//! Usage:
//!
//! ```text
//! tune_gen [--out tuning_table.json] [--seed 42] [--measure]
//! tune_gen --check tuning_table.json
//! ```

use scneural::exec::ExecCtx;
use scneural::layers::{Dense, Relu};
use scneural::linalg::Mat;
use scneural::net::Sequential;
use scneural::tensor::Tensor;
use scpar::ScparConfig;
use sctune::{candidates, measure, CostModel, KernelId, TuneKey, Tuner, TuningTable};
use std::path::Path;
use std::process::ExitCode;

/// Thread counts every thread-keyed shape is tuned for.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// The seed every committed table is generated with.
const DEFAULT_SEED: u64 = 42;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::from(sctune::DEFAULT_TABLE_PATH);
    let mut seed = DEFAULT_SEED;
    let mut measure_mode = false;
    let mut check: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => return usage("--out needs a path"),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--measure" => measure_mode = true,
            "--check" => match it.next() {
                Some(v) => check = Some(v.clone()),
                None => return usage("--check needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    if let Some(path) = check {
        return check_table(Path::new(&path));
    }

    let mut table = TuningTable::empty();
    table.generated_by = Some("tune_gen".into());
    table.mode = Some(
        if measure_mode {
            "measure"
        } else {
            "cost-model"
        }
        .into(),
    );
    table.seed = if measure_mode { None } else { Some(seed) };
    let model = CostModel::new(seed);
    for key in shape_grid() {
        let winner = if measure_mode {
            measured_winner(&key).unwrap_or_else(|| model_winner(&model, &key))
        } else {
            model_winner(&model, &key)
        };
        println!(
            "{:<44} {} = {winner}",
            key.canonical(),
            key.kernel().param()
        );
        table.insert(key, winner);
    }

    match table.save(Path::new(&out)) {
        Ok(()) => {
            println!("tune_gen: wrote {} entries to {out}", table.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("tune_gen: cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tune_gen: {msg}");
    eprintln!("usage: tune_gen [--out PATH] [--seed N] [--measure] | --check PATH");
    ExitCode::from(2)
}

/// Validates a committed table: it must parse cleanly and re-serialize to
/// the exact bytes on disk (so hand edits stay canonical and diffs stay
/// honest).
fn check_table(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tune_gen: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let table = match TuningTable::from_json(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("tune_gen: {} is invalid: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if table.to_json_string() != text {
        eprintln!(
            "tune_gen: {} is not in canonical form (run tune_gen to regenerate)",
            path.display()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "tune_gen: {} OK ({} entries, canonical round-trip)",
        path.display(),
        table.len()
    );
    ExitCode::SUCCESS
}

/// The fixed shape grid: every hot shape the benches and the serving path
/// actually hit, so run-time lookups are exact rather than nearest-key.
/// ISA is always `any` — the strict SIMD profile gives every backend the
/// same task-count economics, and `any` keys serve all of them.
fn shape_grid() -> Vec<TuneKey> {
    let mut grid = Vec::new();
    // f64 matmuls: E15's square products (quick and full sizes) plus the
    // tall-skinny overhead-dominated shapes the tuned-vs-untuned section
    // exercises.
    for (m, k, n) in [
        (192, 192, 192),
        (512, 512, 512),
        (2048, 16, 16),
        (8192, 16, 16),
    ] {
        for t in THREADS {
            grid.push(TuneKey::matmul_f64(m, k, n, t, "any"));
        }
    }
    // f32 matmuls: E15's profile/SIMD sections run the same square sizes
    // through `Tensor::matmul_ctx`.
    for (m, k, n) in [(192, 192, 192), (512, 512, 512), (4096, 64, 8)] {
        for t in THREADS {
            grid.push(TuneKey::matmul_f32(m, k, n, t, "any"));
        }
    }
    // Batched inference: E15's 64-feature net at quick and full batch
    // sizes.
    for (rows, elems) in [(256, 64), (2048, 64)] {
        for t in THREADS {
            grid.push(TuneKey::predict(rows, elems, t));
        }
    }
    // k-means: the E10 data-mining clustering shapes.
    for (points, dim, k) in [(2048, 4, 8), (10_000, 8, 16)] {
        for t in THREADS {
            grid.push(TuneKey::kmeans(points, dim, k, t));
        }
    }
    // Micro-batching, keyed on model parameter count (thread-free): the
    // E15/E17 serving net.
    grid.push(TuneKey::micro_batch(serving_net().param_count()));
    grid
}

/// The inference net E15 and E17 serve (64 features → 8 classes).
fn serving_net() -> Sequential {
    Sequential::new()
        .with(Dense::new(64, 128, 15))
        .with(Relu::new())
        .with(Dense::new(128, 64, 16))
        .with(Relu::new())
        .with(Dense::new(64, 8, 17))
}

/// Lowest modelled cost wins; ties go to the smaller candidate so the
/// output is independent of ladder order.
fn model_winner(model: &CostModel, key: &TuneKey) -> usize {
    candidates(key.kernel())
        .iter()
        .copied()
        .min_by(|&a, &b| {
            model
                .score(key, a)
                .total_cmp(&model.score(key, b))
                .then(a.cmp(&b))
        })
        .expect("every kernel has a non-empty ladder")
}

/// Median-of-5 wall clock per candidate, smaller median wins (ties to the
/// smaller candidate). Returns `None` for kernels measurement cannot
/// meaningfully score (micro_batch).
fn measured_winner(key: &TuneKey) -> Option<usize> {
    let mut best: Option<(f64, usize)> = None;
    for &cand in candidates(key.kernel()) {
        let mut single = TuningTable::empty();
        single.insert(key.clone(), cand);
        let ctx = ExecCtx::serial()
            .with_par(ScparConfig::with_threads(key.threads() as usize))
            .with_tuner(Tuner::from_table(single));
        let secs = match key.kernel() {
            KernelId::MatmulF64 => {
                let [m, k, n] = key.dims()[..] else {
                    return None;
                };
                let a = Mat::from_vec(m as usize, k as usize, vec![1.0; (m * k) as usize]);
                let b = Mat::from_vec(k as usize, n as usize, vec![1.0; (k * n) as usize]);
                measure::median_of(measure::DEFAULT_SAMPLES, || {
                    std::hint::black_box(a.matmul_ctx(&b, &ctx));
                })
            }
            KernelId::MatmulF32 => {
                let [m, k, n] = key.dims()[..] else {
                    return None;
                };
                let a = Tensor::full(vec![m as usize, k as usize], 1.0);
                let b = Tensor::full(vec![k as usize, n as usize], 1.0);
                measure::median_of(measure::DEFAULT_SAMPLES, || {
                    std::hint::black_box(a.matmul_ctx(&b, &ctx).expect("shapes agree"));
                })
            }
            KernelId::Predict => {
                let [rows, elems] = key.dims()[..] else {
                    return None;
                };
                let net = serving_net();
                let input = Tensor::full(vec![rows as usize, elems as usize], 0.5);
                measure::median_of(measure::DEFAULT_SAMPLES, || {
                    std::hint::black_box(net.predict_ctx(&input, &ctx));
                })
            }
            KernelId::Kmeans => {
                let [points, dim, k] = key.dims()[..] else {
                    return None;
                };
                let pts: Vec<Vec<f64>> = (0..points)
                    .map(|i| (0..dim).map(|d| ((i * 31 + d) % 97) as f64).collect())
                    .collect();
                measure::median_of(measure::DEFAULT_SAMPLES, || {
                    std::hint::black_box(sccompute::mllib::kmeans_ctx(
                        &pts, k as usize, 5, 7, &ctx,
                    ));
                })
            }
            KernelId::MicroBatch => return None,
        };
        let better = match best {
            None => true,
            Some((b, _)) => secs < b,
        };
        if better {
            best = Some((secs, cand));
        }
    }
    best.map(|(_, c)| c)
}
