//! perf_gate — compares fresh `BENCH_<name>.json` runs against a committed
//! baseline directory and exits nonzero on regression.
//!
//! ```text
//! perf_gate --baseline tests/golden/bench_baseline --fresh target/bench-json \
//!           [--tolerance 0.5] [--skip-measured]
//! ```
//!
//! * Deterministic fields must match the baseline exactly.
//! * Measured fields are held to a direction-aware relative band
//!   (`_ms`/`_s` lower-is-better, `_per_s` higher-is-better); the default
//!   tolerance of 0.5 allows a time metric up to 1.5x the baseline.
//! * `SCPROF_TEST_SLOWDOWN=<f>` scales time-like fresh metrics at load
//!   time — gating a directory against itself with a 2x slowdown must
//!   fail, which is the CI self-test that proves the gate has teeth.
//!
//! Exit codes: 0 = pass, 1 = regression, 2 = usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: perf_gate --baseline <dir> --fresh <dir> [--tolerance <frac>] [--skip-measured]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut baseline: Option<PathBuf> = None;
    let mut fresh: Option<PathBuf> = None;
    let mut tolerance = 0.5_f64;
    let mut skip_measured = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(v) => baseline = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--fresh" => match args.next() {
                Some(v) => fresh = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--tolerance" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v.is_finite() && v >= 0.0 => tolerance = v,
                _ => return usage(),
            },
            "--skip-measured" => skip_measured = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
    }
    let (Some(baseline), Some(fresh)) = (baseline, fresh) else {
        return usage();
    };

    let slowdown = scbench::test_slowdown();
    if slowdown != 1.0 {
        println!("perf-gate: applying injected slowdown x{slowdown} to fresh time metrics");
    }

    match scbench::gate::compare_dirs(&baseline, &fresh, tolerance, skip_measured, slowdown) {
        Err(e) => {
            eprintln!("perf-gate: error: {e}");
            ExitCode::from(2)
        }
        Ok(cmp) => {
            println!(
                "perf-gate: checked {} deterministic and {} measured metrics (tolerance {tolerance}, skip_measured={skip_measured})",
                cmp.checked_deterministic, cmp.checked_measured
            );
            if cmp.regressions.is_empty() {
                println!("perf-gate: PASS");
                ExitCode::SUCCESS
            } else {
                for r in &cmp.regressions {
                    println!(
                        "perf-gate: REGRESSION {}::{} — {}",
                        r.bench, r.metric, r.detail
                    );
                }
                println!("perf-gate: FAIL ({} regressions)", cmp.regressions.len());
                ExitCode::from(1)
            }
        }
    }
}
