#![allow(clippy::needless_range_loop)]

//! E12 (§III-C): multi-modal fusion for gunshot detection — single-modality
//! vs fused accuracy (nearest-centroid in latent space) and the CCA
//! correlation recovery. Measures fusion inference latency.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scneural::autoencoder::{Autoencoder, FusionAutoencoder};
use scneural::cca::Cca;
use scneural::optim::Adam;
use scneural::tensor::Tensor;
use simclock::SeededRng;

/// Synthetic gunshot events as audio (6-dim) + video (10-dim) feature
/// vectors sharing a latent intensity. Intentionally noisy per modality so
/// fusion has headroom over single-modal detectors.
fn gunshot_data(n: usize, noise: f64, seed: u64) -> (Tensor, Tensor, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let (da, dv) = (6, 10);
    let mut audio = Vec::new();
    let mut video = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let shot = i % 2 == 0;
        let z: f64 = if shot {
            rng.range_f64(0.65, 1.0)
        } else {
            rng.range_f64(0.0, 0.35)
        };
        for j in 0..da {
            let base = if j < 2 { z } else { 0.25 };
            audio.push((base + rng.gaussian(0.0, noise)).clamp(0.0, 1.0) as f32);
        }
        for j in 0..dv {
            let base = if j % 3 == 0 { z } else { 0.35 };
            video.push((base + rng.gaussian(0.0, noise)).clamp(0.0, 1.0) as f32);
        }
        labels.push(usize::from(shot));
    }
    (
        Tensor::from_vec(vec![n, da], audio).unwrap(),
        Tensor::from_vec(vec![n, dv], video).unwrap(),
        labels,
    )
}

/// Nearest-centroid accuracy in a latent space.
fn centroid_accuracy(z: &Tensor, labels: &[usize]) -> f64 {
    let k = z.cols();
    let mut centroids = [vec![0.0f64; k], vec![0.0f64; k]];
    let mut counts = [0usize; 2];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for j in 0..k {
            centroids[l][j] += z.at(i, j) as f64;
        }
    }
    for (c, n) in centroids.iter_mut().zip(counts) {
        for v in c.iter_mut() {
            *v /= n.max(1) as f64;
        }
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(i, &l)| {
            let d = |c: &[f64]| {
                (0..k)
                    .map(|j| (z.at(*i, j) as f64 - c[j]).powi(2))
                    .sum::<f64>()
            };
            usize::from(d(&centroids[1]) < d(&centroids[0])) == l
        })
        .count();
    correct as f64 / labels.len() as f64
}

fn regenerate_figure() -> (FusionAutoencoder, Tensor, Tensor) {
    header(
        "E12",
        "§III-C",
        "Multi-modal fusion (AE) + CCA on synthetic gunshot audio/video",
    );
    let quick = scbench::quick("e12");
    let noise = 0.22; // high per-modality noise: fusion should win
    let (audio, video, labels) = gunshot_data(if quick { 160 } else { 240 }, noise, 50);
    let wall = std::time::Instant::now();

    // Single-modality AEs vs fused AE.
    let mut ae_audio = Autoencoder::new(6, &[5], 2, 51);
    let mut ae_video = Autoencoder::new(10, &[7], 2, 52);
    let mut fused = FusionAutoencoder::new(6, 5, 10, 6, 3, 53);
    let mut opt_a = Adam::new(0.01);
    let mut opt_v = Adam::new(0.01);
    let mut opt_f = Adam::new(0.01);
    for _ in 0..if quick { 100 } else { 250 } {
        ae_audio.train_step(&audio, &mut opt_a);
        ae_video.train_step(&video, &mut opt_v);
        fused.train_step(&audio, &video, &mut opt_f);
    }
    let acc_audio = centroid_accuracy(&ae_audio.encode(&audio), &labels);
    let acc_video = centroid_accuracy(&ae_video.encode(&video), &labels);
    let z = fused.fuse(&audio, &video);
    let acc_fused = centroid_accuracy(&z, &labels);
    let acc_audio_only_fused = centroid_accuracy(&fused.fuse_a_only(&audio), &labels);
    table(
        &["detector", "latent_dim", "accuracy"],
        &[
            vec!["audio-only AE".into(), "2".into(), f3(acc_audio)],
            vec!["video-only AE".into(), "2".into(), f3(acc_video)],
            vec!["fused AE (paper)".into(), "3".into(), f3(acc_fused)],
            vec![
                "fused AE, audio only at test".into(),
                "3".into(),
                f3(acc_audio_only_fused),
            ],
        ],
    );

    // CCA correlation recovery across noise levels.
    println!("\nCCA top canonical correlation vs modality noise:");
    let mut json = BenchJson::new("e12", quick);
    json.det_f("accuracy_audio_only", acc_audio)
        .det_f("accuracy_video_only", acc_video)
        .det_f("accuracy_fused", acc_fused);
    let mut rows = Vec::new();
    for &nz in &[0.05, 0.15, 0.3, 0.5] {
        let (a, v, _) = gunshot_data(if quick { 200 } else { 300 }, nz, 54);
        let cca = Cca::fit(&a, &v, 2, 1e-5).unwrap();
        if (nz - 0.15).abs() < 1e-9 {
            json.det_f("cca_rho1_noise_0_15", cca.correlations()[0]);
        }
        rows.push(vec![
            f3(nz),
            f3(cca.correlations()[0]),
            f3(cca.correlations()[1]),
        ]);
    }
    table(&["noise", "rho_1", "rho_2"], &rows);
    json.measured("training_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
    (fused, audio, video)
}

fn bench(c: &mut Criterion) {
    let (mut fused, audio, video) = regenerate_figure();
    c.bench_function("e12/fuse_240_events", |b| {
        b.iter(|| fused.fuse(std::hint::black_box(&audio), std::hint::black_box(&video)))
    });
    let (a, v, _) = gunshot_data(300, 0.15, 55);
    c.bench_function("e12/cca_fit_300x16", |b| {
        b.iter(|| Cca::fit(std::hint::black_box(&a), &v, 2, 1e-5).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
