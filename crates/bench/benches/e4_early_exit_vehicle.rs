//! E4 (Fig. 5, §IV-A1): the early-exit vehicle classifier's
//! confidence-threshold sweep — fraction offloaded, accuracy, and the fog
//! latency the measured escalation rate implies. Measures device-side and
//! escalated inference latency.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scdata::vehicles::VehicleCatalog;
use scdata::video::FrameGenerator;
use scfog::{FogSimulator, Placement, Topology, Workload};
use smartcity_core::apps::vehicle::VehicleClassifier;

fn trained_classifier() -> (VehicleClassifier, Vec<scdata::video::Frame>, Vec<usize>) {
    let quick = scbench::quick("e4");
    let classes = 6;
    let catalog = VehicleCatalog::generate(classes, 4);
    let mut gen = FrameGenerator::new(catalog.clone(), 16, 16, 5).noise(0.02);
    let (frames, labels) = gen.dataset(classes, if quick { 8 } else { 15 });
    let mut clf = VehicleClassifier::new(classes, 16, 0.5, 6);
    clf.train(&frames, &labels, if quick { 25 } else { 50 }, 0.01);
    // Held-out evaluation set at a harder noise level: the tiny local head
    // degrades more than the full server model, so the accuracy column
    // rises with the threshold (Fig. 5's quality/efficiency trade-off).
    let mut test_gen = FrameGenerator::new(catalog, 16, 16, 99).noise(0.10);
    let (test_frames, test_labels) = test_gen.dataset(classes, 12);
    (clf, test_frames, test_labels)
}

fn regenerate_figure(
    clf: &mut VehicleClassifier,
    frames: &[scdata::video::Frame],
    labels: &[usize],
) {
    header(
        "E4",
        "Fig. 5 / §IV-A1",
        "Confidence-threshold sweep: offload fraction, accuracy, implied fog latency",
    );
    let sim = FogSimulator::new(Topology::four_tier(8, 2, 1));
    let mut json = BenchJson::new("e4", scbench::quick("e4"));
    let wall = std::time::Instant::now();
    let mut rows = Vec::new();
    for &threshold in &[0.0f32, 0.3, 0.5, 0.7, 0.9, 0.99, 1.01] {
        clf.set_threshold(threshold);
        let (acc, offload) = clf.evaluate(frames, labels);
        if (threshold - 0.5).abs() < 1e-6 {
            json.det_f("offload_at_0_5", offload)
                .det_f("accuracy_at_0_5", acc);
        }
        let w = Workload::with_escalation(200, 100_000, 20.0, offload, 7);
        let fog = sim
            .runner(&w)
            .placement(Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 6 * 8 * 8 * 4,
            })
            .run();
        rows.push(vec![
            format!("{threshold:.2}"),
            f3(offload),
            f3(acc),
            f3(fog.mean_latency_s),
            f3(fog.fog_to_server_bytes as f64 / 1e6),
        ]);
    }
    table(
        &[
            "threshold",
            "offload_frac",
            "accuracy",
            "fog_mean_s",
            "fog_to_srv_MB",
        ],
        &rows,
    );
    println!(
        "local params: {}  server params: {}",
        clf.network_mut().local_param_count(),
        clf.network_mut().server_param_count()
    );
    json.det_u("local_params", clf.network_mut().local_param_count() as u64)
        .det_u(
            "server_params",
            clf.network_mut().server_param_count() as u64,
        )
        .measured("figure_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
}

fn bench(c: &mut Criterion) {
    let (mut clf, frames, labels) = trained_classifier();
    regenerate_figure(&mut clf, &frames, &labels);

    let batch: Vec<_> = frames.iter().take(16).cloned().collect();
    clf.set_threshold(0.0); // all-local inference
    c.bench_function("e4/infer_16_crops_local_only", |b| {
        b.iter(|| clf.classify(std::hint::black_box(&batch)))
    });
    clf.set_threshold(1.01); // all escalated
    c.bench_function("e4/infer_16_crops_full_model", |b| {
        b.iter(|| clf.classify(std::hint::black_box(&batch)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
