//! E7 (Fig. 8): ResNet-block shortcut ablation — the paper's conv shortcut
//! vs the identity and the "mostly used" max-pool shortcut. Regenerates the
//! convergence/accuracy comparison and measures per-variant forward latency.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scneural::blocks::{InceptionBlock, ResidualBlock, Shortcut};
use scneural::layers::{Dense, Flatten, Layer};
use scneural::loss::SoftmaxCrossEntropy;
use scneural::net::Sequential;
use scneural::optim::Adam;
use scneural::tensor::Tensor;
use simclock::SeededRng;

/// Bright-blob classification task exercising spatial structure.
fn blob_dataset(n: usize, seed: u64) -> (Tensor, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let cls = i % 4;
        let mut img = vec![0.05f32; 8 * 8];
        let (y0, x0) = [(0, 0), (0, 4), (4, 0), (4, 4)][cls];
        for _ in 0..8 {
            let y = y0 + rng.index(4);
            let x = x0 + rng.index(4);
            img[y * 8 + x] = 0.9;
        }
        data.extend(img);
        labels.push(cls);
    }
    (Tensor::from_vec(vec![n, 1, 8, 8], data).unwrap(), labels)
}

fn net_with(shortcut: Shortcut, seed: u64) -> Sequential {
    // MaxPool shortcut needs out >= in channels; stride 2 for all variants
    // except identity (which requires stride 1 / equal channels).
    let block: ResidualBlock = match shortcut {
        Shortcut::Identity => ResidualBlock::new(1, 1, 1, Shortcut::Identity, seed),
        s => ResidualBlock::new(1, 4, 2, s, seed),
    };
    let flat_dim = match shortcut {
        Shortcut::Identity => 64,
        _ => 4 * 16,
    };
    Sequential::new()
        .with(block)
        .with(Flatten::new())
        .with(Dense::new(flat_dim, 4, seed.wrapping_add(9)))
}

/// §III-A's other variant: an inception block as the feature extractor.
fn inception_net(seed: u64) -> Sequential {
    Sequential::new()
        .with(InceptionBlock::new(1, [1, 1, 1, 1], seed))
        .with(Flatten::new())
        .with(Dense::new(4 * 64, 4, seed.wrapping_add(9)))
}

fn regenerate_figure() {
    header(
        "E7",
        "Fig. 8 / §III-A",
        "CNN-block ablation: ResNet shortcuts (conv = paper, identity, max-pool) + inception variant",
    );
    let quick = scbench::quick("e7");
    let (x, y) = blob_dataset(if quick { 32 } else { 48 }, 15);
    let epochs = if quick { 25 } else { 60 };
    let mut json = BenchJson::new("e7", quick);
    let wall = std::time::Instant::now();
    let mut rows = Vec::new();
    for (name, net_builder) in [
        ("resnet conv (paper)", net_with(Shortcut::Conv, 16)),
        ("resnet identity", net_with(Shortcut::Identity, 16)),
        ("resnet max-pool", net_with(Shortcut::MaxPool, 16)),
        ("inception", inception_net(16)),
    ] {
        let mut net = net_builder;
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.01);
        let losses = net.fit(&x, &y, &mut loss, &mut opt, epochs);
        let acc = net.accuracy(&x, &y);
        let slug = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect::<String>();
        json.det_u(&format!("params_{slug}"), net.param_count() as u64)
            .det_f(&format!("accuracy_{slug}"), acc);
        // Epochs to reach loss < 0.5 (convergence speed proxy).
        let converge = losses
            .iter()
            .position(|&l| l < 0.5)
            .map_or("-".into(), |e| e.to_string());
        rows.push(vec![
            name.to_string(),
            net.param_count().to_string(),
            f3(losses[0] as f64),
            f3(*losses.last().unwrap() as f64),
            converge,
            f3(acc),
        ]);
    }
    table(
        &[
            "shortcut",
            "params",
            "loss_e0",
            "loss_final",
            "epochs_to_0.5",
            "accuracy",
        ],
        &rows,
    );
    json.measured("figure_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let (x, _) = blob_dataset(32, 17);
    for (name, shortcut) in [("conv", Shortcut::Conv), ("maxpool", Shortcut::MaxPool)] {
        let mut block = match shortcut {
            Shortcut::Identity => unreachable!(),
            s => ResidualBlock::new(1, 4, 2, s, 18),
        };
        c.bench_function(&format!("e7/forward_32x_{name}"), |b| {
            b.iter(|| block.forward(std::hint::black_box(&x), false))
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
