//! E19: the Metropolis closed-loop macro-benchmark.
//!
//! The paper's headline claim is a cyberinfrastructure that carries an
//! entire city — millions of residents — through its big-data and
//! deep-learning layers. E19 rehearses the claim end to end on
//! sim-time: a seeded population model (diurnal peaks, flash crowds)
//! drives stream ingest, DFS archival, and the serving tier with its
//! attached model, all under a shared fault schedule, while the
//! burn-rate-fed autoscaler closes the loop — adding and removing
//! shards, resizing the scpar pool, shedding at the admission door.
//!
//! The printed table is the day seen window by window; the headline
//! numbers are demand, latency percentiles, shed fraction, scaling
//! activity, ingest loss, and recovery time after the last fault. The
//! scaling-decision log rides the `BENCH_metropolis.json` artifact as a
//! deterministic field, so the perf gate pins the entire closed-loop
//! trace, byte for byte, across the CI thread/ISA matrix.
//!
//! The run also writes the sctsdb flight artifact
//! (`flight_seed<seed>.tsdb.json`) next to the BENCH JSON: every
//! trajectory series of the day — RPS, latency, shed fraction, fleet
//! sizes, burn rates — as compressed time series, with its fingerprint
//! pinned as a deterministic key so the gate detects any drift in the
//! recorded day, not just in the distilled headline.
//!
//! `SCMETRO_USERS` overrides the population (default one million).
//! `SCBENCH_QUICK=1` shrinks windows and the executed sample — never
//! the population — so CI still plans at full city scale.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f1, f3, header, table, BenchJson};
use scmetro::{MetroConfig, MetroReport, MetroSim, PopulationConfig};
use sctelemetry::Telemetry;
use sctsdb::{max_over_time, SeriesId};
use serde_json::json;

fn quick() -> bool {
    scbench::quick("e19")
}

fn users() -> u64 {
    std::env::var("SCMETRO_USERS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&u| u > 0)
        .unwrap_or(1_000_000)
}

fn config(quick: bool) -> MetroConfig {
    MetroConfig {
        population: PopulationConfig {
            users: users(),
            windows: if quick { 24 } else { 96 },
            ..PopulationConfig::default()
        },
        sample_total: if quick { 4_000 } else { 20_000 },
        ..MetroConfig::default()
    }
}

fn run(quick: bool) -> MetroReport {
    MetroSim::new(config(quick)).run()
}

fn regenerate_figure() {
    header(
        "E19",
        "§V",
        "Metropolis: a simulated city's day through the whole stack, autoscaling under faults",
    );
    let q = quick();
    let sim = MetroSim::new(config(q));
    let plan = sim.topology().clone();
    let fault_count = sim.fault_plan().len();

    let mut json = BenchJson::new("metropolis", q);
    let telemetry = Telemetry::shared();
    let seed = config(q).seed;
    let wall = std::time::Instant::now();
    let (r, flight) = sim.with_recorder(&telemetry).run_with_flight();
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;

    println!(
        "\nstatic plan: {} partitions on {} brokers, {} DFS nodes, {} serving shards \
         (mean {} rps, peak {} rps, {} scheduled faults)",
        plan.partitions,
        plan.brokers,
        plan.dfs_nodes,
        plan.initial_shards,
        f1(r.mean_rps),
        f1(r.peak_rps),
        fault_count,
    );

    // Every 8th window keeps the table one screen tall at 96 windows.
    let stride = (r.windows.len() / 12).max(1);
    let rows: Vec<Vec<String>> = r
        .windows
        .iter()
        .filter(|s| (s.window as usize).is_multiple_of(stride))
        .map(|s| {
            vec![
                s.window.to_string(),
                s.demand.to_string(),
                s.sampled.to_string(),
                f3(s.utilization),
                f3(s.shed_fraction()),
                s.shards.to_string(),
                s.pool.to_string(),
            ]
        })
        .collect();
    table(
        &[
            "window",
            "demand",
            "sampled",
            "util",
            "shed_frac",
            "shards",
            "pool",
        ],
        &rows,
    );
    println!(
        "\nday total: {} queries from {} users; answered {} / shed {} (p50 {} ms, p99 {} ms)\n\
         loop: +{} shards / -{} shards, {} pool resizes, {} shed toggles; \
         recovery {} s after the last outage\n\
         ingest: {} delivered, {} duplicates, {} lost; \
         archive: {} blocks, {} under-replicated, {} lost",
        r.total_demand,
        r.users,
        r.answered,
        r.unanswered,
        f3(r.p50_ms),
        f3(r.p99_ms),
        r.shards_added,
        r.shards_removed,
        r.pool_resizes,
        r.shed_actions,
        f1(r.recovery_s),
        r.delivered,
        r.duplicates,
        r.lost,
        r.dfs.blocks,
        r.dfs.under_replicated,
        r.dfs.lost,
    );

    let log_lines: Vec<String> = r.decision_log().lines().map(str::to_string).collect();
    println!("\nscaling decisions ({}):", log_lines.len());
    for line in &log_lines {
        println!("  {line}");
    }

    // Sim-time results are deterministic: the gate compares them exactly,
    // decision log included.
    json.det_u("users", r.users)
        .det_u("daily_queries", r.daily_queries)
        .det_u("total_demand", r.total_demand)
        .det_u("sampled_requests", r.sampled_requests)
        .det_f("peak_rps", r.peak_rps)
        .det_f("mean_rps", r.mean_rps)
        .det_f("p50_sim_ms", r.p50_ms)
        .det_f("p99_sim_ms", r.p99_ms)
        .det_u("answered", r.answered)
        .det_u("unanswered", r.unanswered)
        .det_f("shed_fraction", r.shed_fraction)
        .det_u("shards_added", r.shards_added)
        .det_u("shards_removed", r.shards_removed)
        .det_u("pool_resizes", r.pool_resizes)
        .det_u("shed_actions", r.shed_actions)
        .det_u("final_shards", r.final_shards as u64)
        .det_u("final_pool", r.final_pool as u64)
        .det_f("recovery_s_sim", r.recovery_s)
        .det_u("ingest_delivered", r.delivered as u64)
        .det_u("ingest_duplicates", r.duplicates as u64)
        .det_u("ingest_lost", r.lost as u64)
        .det_u("dfs_blocks", r.dfs.blocks as u64)
        .det_u("dfs_lost_blocks", r.dfs.lost as u64)
        .det("decision_log", json!(log_lines));

    // The flight artifact: the whole day as stored series, written next
    // to the BENCH JSON and pinned by fingerprint.
    let flight_name = format!("flight_seed{seed}.tsdb.json");
    let db = &flight.tsdb;
    let rps = db.samples(&SeriesId::new("metro:rps"));
    let peak_window_rps = max_over_time(&rps, 0, u64::MAX).unwrap_or(0.0);
    let fired = db.samples(&SeriesId::new("metro:burn_fired"));
    json.det("flight_fingerprint", json!(flight.fingerprint()))
        .det_u("flight_series", db.len() as u64)
        .det_u("flight_samples", db.total_samples())
        .det_u("flight_compressed_bytes", db.compressed_bytes() as u64)
        .det_u("flight_raw_bytes", db.raw_bytes() as u64)
        .det_f("flight_peak_window_rps", peak_window_rps)
        .det_u(
            "flight_burn_fired_windows",
            fired.iter().filter(|&&(_, v)| v == 1.0).count() as u64,
        );
    json.measured("day_wall_ms", wall_ms);
    json.write();
    let dir = scbench::json_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(&flight_name);
        std::fs::write(&path, flight.render()).expect("flight artifact is writable");
        println!(
            "\nflight artifact: {} ({} series, {} samples, {} -> {} bytes)",
            path.display(),
            db.len(),
            db.total_samples(),
            db.raw_bytes(),
            db.compressed_bytes(),
        );
    }
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    c.bench_function("e19/metropolis_day", |b| {
        b.iter(|| std::hint::black_box(run(true)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
