//! E14 (observability): telemetry overhead. Instrumentation is compiled in
//! unconditionally across the stack, so the cost that matters is the
//! disabled-handle path — one `Option` check per call site. This bench pins
//! that down against both a true no-telemetry baseline and the enabled
//! recorder, at the single-metric level and for a whole fog-simulator run.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scfog::{FogSimulator, Placement, Topology, Workload};
use sctelemetry::{MetricsRegistry, SpanContext, Telemetry, TelemetryHandle, TraceId};
use sctsdb::Scraper;
use simclock::{SimDuration, SimTime};

const OPS: usize = 10_000;

fn quick() -> bool {
    scbench::quick("e14")
}

/// Counts heap allocations so the disabled-tracing path can be pinned to
/// exactly zero (not just "fast").
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Runs `f` and returns how many heap allocations it performed.
fn allocations_in(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

fn time_ns(mut f: impl FnMut()) -> f64 {
    // One warm-up pass, then a timed pass.
    f();
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / OPS as f64
}

fn regenerate_figure() {
    header(
        "E14",
        "observability",
        "Telemetry overhead: disabled-handle no-op vs enabled recording",
    );

    let disabled = TelemetryHandle::disabled();
    let telemetry = Telemetry::shared();
    let enabled = telemetry.handle();
    let mut json = BenchJson::new("e14", quick());

    let rows = vec![
        vec![
            "counter_add".to_string(),
            f3(time_ns(|| {
                for i in 0..OPS {
                    disabled.counter_add("e14_ops_total", "ops", std::hint::black_box(i as u64));
                }
            })),
            f3(time_ns(|| {
                for i in 0..OPS {
                    enabled.counter_add("e14_ops_total", "ops", std::hint::black_box(i as u64));
                }
            })),
        ],
        vec![
            "observe".to_string(),
            f3(time_ns(|| {
                for i in 0..OPS {
                    disabled.observe(
                        "e14_latency_seconds",
                        "latency",
                        std::hint::black_box(i as f64),
                    );
                }
            })),
            f3(time_ns(|| {
                for i in 0..OPS {
                    enabled.observe(
                        "e14_latency_seconds",
                        "latency",
                        std::hint::black_box(i as f64),
                    );
                }
            })),
        ],
    ];
    table(&["op", "disabled_ns_per_op", "enabled_ns_per_op"], &rows);
    json.measured("counter_add_disabled_ns", rows[0][1].parse().unwrap_or(0.0))
        .measured("counter_add_enabled_ns", rows[0][2].parse().unwrap_or(0.0));

    // Whole-subsystem view: a fog run with no recorder attached vs one
    // recording every job, span, and tier metric.
    let fog_jobs = if quick() { 150 } else { 400 };
    let workload = Workload::with_escalation(fog_jobs, 100_000, 20.0, 0.3, 14);
    let baseline_sim = FogSimulator::new(Topology::four_tier(8, 4, 2));
    let placement = Placement::EarlyExit {
        local_fraction: 0.3,
        feature_bytes: 20_000,
    };
    let start = std::time::Instant::now();
    let r = baseline_sim.runner(&workload).placement(placement).run();
    let base_us = start.elapsed().as_micros();

    let recorder = Telemetry::shared();
    let recorded_sim =
        FogSimulator::new(Topology::four_tier(8, 4, 2)).with_telemetry(recorder.handle());
    let start = std::time::Instant::now();
    let rr = recorded_sim.runner(&workload).placement(placement).run();
    let rec_us = start.elapsed().as_micros();
    assert_eq!(r.jobs, rr.jobs, "telemetry must not change results");

    println!(
        "\nfog run ({fog_jobs} jobs): baseline {base_us} us, recorded {rec_us} us, {} spans, {} metrics",
        recorder.trace_len(),
        recorder.registry().len(),
    );
    json.det_u("fog_jobs", rr.jobs as u64)
        .det_u("fog_spans", recorder.trace_len() as u64)
        .det_u("fog_metrics", recorder.registry().len() as u64)
        .measured("fog_baseline_ms", base_us as f64 / 1e3)
        .measured("fog_recorded_ms", rec_us as f64 / 1e3);

    // Disabled tracing is a no-op in the strictest sense: the whole span
    // API — guards, child contexts, events, raw spans — performs zero
    // heap allocations when no recorder is attached. This is what lets
    // the causal-tracing instrumentation (PR 5) stay unconditionally
    // compiled into scserve/scfog/smartcity-core hot paths.
    let off = TelemetryHandle::disabled();
    let ctx = SpanContext::root(TraceId::derive(14, 1, 0));
    let disabled_trace_ns = time_ns(|| {
        for i in 0..OPS {
            let mut g = off.span_guard(
                "e14",
                "request",
                SimTime::from_micros(std::hint::black_box(i as u64)),
                ctx,
            );
            let child = g.child_ctx();
            off.span_in(
                "e14",
                "child",
                SimTime::from_micros(i as u64),
                SimTime::from_micros(i as u64 + 1),
                child,
            );
            off.event("e14", "tick", SimTime::from_micros(i as u64), "detail");
            g.finish(SimTime::from_micros(i as u64 + 2));
        }
    });
    let allocs = allocations_in(|| {
        for i in 0..OPS {
            let mut g = off.span_guard("e14", "request", SimTime::from_micros(i as u64), ctx);
            let child = g.child_ctx();
            off.span_in(
                "e14",
                "child",
                SimTime::from_micros(i as u64),
                SimTime::from_micros(i as u64 + 1),
                child,
            );
            off.event("e14", "tick", SimTime::from_micros(i as u64), "detail");
            g.finish(SimTime::from_micros(i as u64 + 2));
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled tracing must not allocate ({allocs} allocations in {OPS} guard+span+event rounds)"
    );
    println!(
        "disabled tracing (guard + child span + event per round): {} ns/round, {allocs} heap \
         allocations in {OPS} rounds",
        f3(disabled_trace_ns),
    );
    json.det_u("disabled_trace_allocations", allocs)
        .measured("disabled_trace_ns", disabled_trace_ns);

    // sctsdb scrape cost: ns per full-registry scrape as the registry
    // grows, with the steady state pinned to zero transient allocations —
    // after `sync` binds the series and the first scrape warms the
    // encoders, `scrape_at` only loads atomics and appends bits into
    // preallocated buffers.
    const ALLOC_ROUNDS: usize = 64;
    let mut scrape_rows: Vec<Vec<String>> = Vec::new();
    let mut steady_allocations = 0u64;
    for size in [10usize, 100, 1000] {
        let reg = MetricsRegistry::new();
        for i in 0..size {
            reg.counter(&format!("e14_scrape_{i:04}_total"), "scrape target")
                .as_counter()
                .unwrap()
                .add(i as u64);
        }
        let rounds = (OPS / size).max(ALLOC_ROUNDS);
        let mut sc = Scraper::new(reg, SimDuration::from_secs(1))
            .with_sample_capacity(2 * rounds + ALLOC_ROUNDS + 2);
        sc.sync();
        let mut at = 0u64;
        sc.scrape_at(SimTime::ZERO);
        // One warm pass, then a timed pass.
        for _ in 0..rounds {
            at += 1;
            sc.scrape_at(SimTime::from_micros(at));
        }
        let start = std::time::Instant::now();
        for _ in 0..rounds {
            at += 1;
            sc.scrape_at(SimTime::from_micros(at));
        }
        let ns = start.elapsed().as_nanos() as f64 / rounds as f64;
        let allocs = allocations_in(|| {
            for _ in 0..ALLOC_ROUNDS {
                at += 1;
                sc.scrape_at(SimTime::from_micros(at));
            }
        });
        assert_eq!(
            allocs, 0,
            "steady-state scrape must not allocate ({allocs} allocations \
             over {ALLOC_ROUNDS} scrapes of a {size}-metric registry)"
        );
        steady_allocations += allocs;
        scrape_rows.push(vec![
            size.to_string(),
            sc.series_count().to_string(),
            f3(ns),
            allocs.to_string(),
        ]);
        json.measured(&format!("scrape_{size}_metrics_ns"), ns);
    }
    println!("\nsctsdb scrape cost (counters only, steady state):");
    table(
        &["registry_size", "series", "ns_per_scrape", "steady_allocs"],
        &scrape_rows,
    );
    json.det_u("scrape_steady_allocations", steady_allocations);
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let workload = Workload::with_escalation(400, 100_000, 20.0, 0.3, 14);
    let placement = Placement::EarlyExit {
        local_fraction: 0.3,
        feature_bytes: 20_000,
    };

    let baseline = FogSimulator::new(Topology::four_tier(8, 4, 2));
    c.bench_function("e14/fog_run_no_telemetry", |b| {
        b.iter(|| {
            baseline
                .runner(std::hint::black_box(&workload))
                .placement(placement)
                .run()
        })
    });

    let recorder = Telemetry::shared();
    let recorded =
        FogSimulator::new(Topology::four_tier(8, 4, 2)).with_telemetry(recorder.handle());
    c.bench_function("e14/fog_run_recording", |b| {
        b.iter(|| {
            recorded
                .runner(std::hint::black_box(&workload))
                .placement(placement)
                .run()
        })
    });

    let disabled = TelemetryHandle::disabled();
    c.bench_function("e14/disabled_counter_add_10k", |b| {
        b.iter(|| {
            for i in 0..OPS {
                disabled.counter_add("e14_ops_total", "ops", std::hint::black_box(i as u64));
            }
        })
    });

    let telemetry = Telemetry::shared();
    let enabled = telemetry.handle();
    c.bench_function("e14/enabled_counter_add_10k", |b| {
        b.iter(|| {
            for i in 0..OPS {
                enabled.counter_add("e14_ops_total", "ops", std::hint::black_box(i as u64));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
