//! E14 (observability): telemetry overhead. Instrumentation is compiled in
//! unconditionally across the stack, so the cost that matters is the
//! disabled-handle path — one `Option` check per call site. This bench pins
//! that down against both a true no-telemetry baseline and the enabled
//! recorder, at the single-metric level and for a whole fog-simulator run.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table};
use scfog::{FogSimulator, Placement, Topology, Workload};
use sctelemetry::{Telemetry, TelemetryHandle};

const OPS: usize = 10_000;

fn time_ns(mut f: impl FnMut()) -> f64 {
    // One warm-up pass, then a timed pass.
    f();
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_nanos() as f64 / OPS as f64
}

fn regenerate_figure() {
    header(
        "E14",
        "observability",
        "Telemetry overhead: disabled-handle no-op vs enabled recording",
    );

    let disabled = TelemetryHandle::disabled();
    let telemetry = Telemetry::shared();
    let enabled = telemetry.handle();

    let rows = vec![
        vec![
            "counter_add".to_string(),
            f3(time_ns(|| {
                for i in 0..OPS {
                    disabled.counter_add("e14_ops_total", "ops", std::hint::black_box(i as u64));
                }
            })),
            f3(time_ns(|| {
                for i in 0..OPS {
                    enabled.counter_add("e14_ops_total", "ops", std::hint::black_box(i as u64));
                }
            })),
        ],
        vec![
            "observe".to_string(),
            f3(time_ns(|| {
                for i in 0..OPS {
                    disabled.observe(
                        "e14_latency_seconds",
                        "latency",
                        std::hint::black_box(i as f64),
                    );
                }
            })),
            f3(time_ns(|| {
                for i in 0..OPS {
                    enabled.observe(
                        "e14_latency_seconds",
                        "latency",
                        std::hint::black_box(i as f64),
                    );
                }
            })),
        ],
    ];
    table(&["op", "disabled_ns_per_op", "enabled_ns_per_op"], &rows);

    // Whole-subsystem view: a fog run with no recorder attached vs one
    // recording every job, span, and tier metric.
    let workload = Workload::with_escalation(400, 100_000, 20.0, 0.3, 14);
    let baseline_sim = FogSimulator::new(Topology::four_tier(8, 4, 2));
    let placement = Placement::EarlyExit {
        local_fraction: 0.3,
        feature_bytes: 20_000,
    };
    let start = std::time::Instant::now();
    let r = baseline_sim.runner(&workload).placement(placement).run();
    let base_us = start.elapsed().as_micros();

    let recorder = Telemetry::shared();
    let recorded_sim =
        FogSimulator::new(Topology::four_tier(8, 4, 2)).with_telemetry(recorder.handle());
    let start = std::time::Instant::now();
    let rr = recorded_sim.runner(&workload).placement(placement).run();
    let rec_us = start.elapsed().as_micros();
    assert_eq!(r.jobs, rr.jobs, "telemetry must not change results");

    println!(
        "\nfog run (400 jobs): baseline {base_us} us, recorded {rec_us} us, {} spans, {} metrics",
        recorder.trace_len(),
        recorder.registry().len(),
    );
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let workload = Workload::with_escalation(400, 100_000, 20.0, 0.3, 14);
    let placement = Placement::EarlyExit {
        local_fraction: 0.3,
        feature_bytes: 20_000,
    };

    let baseline = FogSimulator::new(Topology::four_tier(8, 4, 2));
    c.bench_function("e14/fog_run_no_telemetry", |b| {
        b.iter(|| {
            baseline
                .runner(std::hint::black_box(&workload))
                .placement(placement)
                .run()
        })
    });

    let recorder = Telemetry::shared();
    let recorded =
        FogSimulator::new(Topology::four_tier(8, 4, 2)).with_telemetry(recorder.handle());
    c.bench_function("e14/fog_run_recording", |b| {
        b.iter(|| {
            recorded
                .runner(std::hint::black_box(&workload))
                .placement(placement)
                .run()
        })
    });

    let disabled = TelemetryHandle::disabled();
    c.bench_function("e14/disabled_counter_add_10k", |b| {
        b.iter(|| {
            for i in 0..OPS {
                disabled.counter_add("e14_ops_total", "ops", std::hint::black_box(i as u64));
            }
        })
    });

    let telemetry = Telemetry::shared();
    let enabled = telemetry.handle();
    c.bench_function("e14/enabled_counter_add_10k", |b| {
        b.iter(|| {
            for i in 0..OPS {
                enabled.counter_add("e14_ops_total", "ops", std::hint::black_box(i as u64));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
