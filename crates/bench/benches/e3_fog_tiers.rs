//! E3 (Fig. 3, §II-B1): fog-placement comparison. Regenerates the
//! latency/bandwidth/utilization table across the four placements and the
//! escalation-rate series, then measures simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scfog::{FogSimulator, Placement, Tier, Topology, Workload};
use std::time::Instant;

fn regenerate_figure() {
    header(
        "E3",
        "Fig. 3 / §II-B1",
        "Computation placement across the four tiers: latency vs upstream bytes",
    );
    let quick = scbench::quick("e3");
    let jobs = if quick { 150 } else { 400 };
    let sim = FogSimulator::new(Topology::four_tier(8, 4, 2));
    let workload = Workload::with_escalation(jobs, 100_000, 20.0, 0.3, 3);
    let mut json = BenchJson::new("e3", quick);
    let wall = Instant::now();
    let mut rows = Vec::new();
    for (name, placement) in [
        ("all-edge", Placement::AllEdge),
        ("server-only", Placement::ServerOnly),
        ("all-cloud", Placement::AllCloud),
        (
            "early-exit",
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ),
        (
            "fog-assisted",
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ),
    ] {
        let r = sim.runner(&workload).placement(placement).run();
        json.det_f(&format!("{name}_mean_latency"), r.mean_latency_s)
            .det_u(&format!("{name}_upstream_bytes"), r.total_upstream_bytes());
        rows.push(vec![
            name.to_string(),
            f3(r.mean_latency_s),
            f3(r.p95_latency_s),
            f3(r.p99_latency_s),
            f3(r.total_upstream_bytes() as f64 / 1e6),
            f3(r.utilization_of(Tier::Edge)),
            f3(r.utilization_of(Tier::Fog)),
            f3(r.utilization_of(Tier::Server)),
        ]);
    }
    table(
        &[
            "placement",
            "mean_s",
            "p95_s",
            "p99_s",
            "upstream_MB",
            "edge_util",
            "fog_util",
            "server_util",
        ],
        &rows,
    );

    println!("\nEarly-exit escalation-rate series (Fig. 3's adaptive division):");
    let series_jobs = if quick { 100 } else { 300 };
    let mut rows = Vec::new();
    for esc in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let w = Workload::with_escalation(series_jobs, 100_000, 20.0, esc, 4);
        let r = sim
            .runner(&w)
            .placement(Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            })
            .run();
        rows.push(vec![
            format!("{esc:.2}"),
            f3(r.mean_latency_s),
            f3(r.fog_to_server_bytes as f64 / 1e6),
        ]);
    }
    table(&["escalation", "mean_s", "fog_to_server_MB"], &rows);
    json.measured("figure_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let sim = FogSimulator::new(Topology::four_tier(8, 4, 2));
    let workload = Workload::with_escalation(400, 100_000, 20.0, 0.3, 3);
    c.bench_function("e3/simulate_400_jobs_early_exit", |b| {
        b.iter(|| {
            sim.runner(std::hint::black_box(&workload))
                .placement(Placement::EarlyExit {
                    local_fraction: 0.3,
                    feature_bytes: 20_000,
                })
                .run()
        })
    });
    c.bench_function("e3/simulate_400_jobs_all_cloud", |b| {
        b.iter(|| {
            sim.runner(std::hint::black_box(&workload))
                .placement(Placement::AllCloud)
                .run()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
