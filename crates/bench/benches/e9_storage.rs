//! E9 (§II-C2): the HBase-vs-HDFS access-pattern contrast — "Unlike HDFS
//! that is optimized only for batch-style data access, HBase supports
//! efficient random read/write operations" — plus DFS availability under
//! failures with re-replication.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f1, header, table, BenchJson};
use scdfs::DfsCluster;
use scnosql::wide_column::Table;
use std::time::Instant;

fn n() -> usize {
    if scbench::quick("e9") {
        500
    } else {
        2_000
    }
}

fn seeded_stores() -> (Table, DfsCluster) {
    let mut table = Table::new("incidents", 256);
    let mut dfs = DfsCluster::new(5, 3, 8 * 1024, 30).unwrap();
    let mut batch = Vec::new();
    for i in 0..n() {
        let record = format!("incident-{i:06},ROBBERY,district-4");
        table
            .put(
                &format!("row-{i:06}"),
                "f",
                "v",
                record.clone().into_bytes(),
            )
            .unwrap();
        batch.extend_from_slice(record.as_bytes());
        batch.push(b'\n');
    }
    dfs.create("/incidents/all.dat", &batch).unwrap();
    (table, dfs)
}

fn regenerate_figure() {
    header(
        "E9",
        "§II-C2",
        "(a) random point reads: wide-column vs whole-file DFS; (b) availability under failures",
    );
    let (table_store, dfs) = seeded_stores();

    // (a) 100 random point reads.
    let keys: Vec<String> = (0..100)
        .map(|i| format!("row-{:06}", (i * 97) % n()))
        .collect();
    let start = Instant::now();
    for k in &keys {
        assert!(table_store.get(k, "f", "v").is_some());
    }
    let wc_time = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in &keys {
        // The DFS has no point access: each "random read" is a file read.
        let blob = dfs.read("/incidents/all.dat").unwrap();
        std::hint::black_box(blob.len());
    }
    let dfs_time = start.elapsed().as_secs_f64();

    // Batch scan throughput comparison.
    let start = Instant::now();
    let scanned = table_store.scan_rows("", "\u{10FFFF}").count();
    let scan_time = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let blob = dfs.read("/incidents/all.dat").unwrap();
    let batch_time = start.elapsed().as_secs_f64();

    table(
        &["access pattern", "wide-column", "dfs", "winner"],
        &[
            vec![
                "100 random point reads (ms)".into(),
                f1(wc_time * 1e3),
                f1(dfs_time * 1e3),
                if wc_time < dfs_time {
                    "wide-column".into()
                } else {
                    "dfs".into()
                },
            ],
            vec![
                "full batch scan (ms)".into(),
                f1(scan_time * 1e3),
                f1(batch_time * 1e3),
                if batch_time < scan_time {
                    "dfs".into()
                } else {
                    "wide-column".into()
                },
            ],
        ],
    );
    println!(
        "random-read speedup (wide-column over whole-file DFS): {:.0}x; scanned {scanned} rows, {} bytes",
        dfs_time / wc_time.max(1e-9),
        blob.len()
    );

    let mut json = BenchJson::new("e9", scbench::quick("e9"));
    json.det_u("rows_scanned", scanned as u64)
        .det_u("dfs_file_bytes", blob.len() as u64)
        .measured("random_reads_wide_column_ms", wc_time * 1e3)
        .measured("random_reads_dfs_ms", dfs_time * 1e3)
        .measured("batch_scan_wide_column_ms", scan_time * 1e3)
        .measured("batch_read_dfs_ms", batch_time * 1e3);

    // (b) Availability under progressive failures.
    println!("\nDFS availability (replication=3) under failures:");
    let mut rows = Vec::new();
    for kills in 0..=3u32 {
        let (_, mut dfs) = seeded_stores();
        for k in 0..kills {
            dfs.kill_node(k).unwrap();
        }
        let readable_before = dfs.read("/incidents/all.dat").is_ok();
        let created = dfs.re_replicate();
        let stats = dfs.stats();
        json.det_u(
            &format!("kills{kills}_readable"),
            u64::from(readable_before),
        )
        .det_u(&format!("kills{kills}_re_replicated"), created as u64)
        .det_u(&format!("kills{kills}_lost"), stats.lost as u64);
        rows.push(vec![
            kills.to_string(),
            readable_before.to_string(),
            created.to_string(),
            stats.under_replicated.to_string(),
            stats.lost.to_string(),
        ]);
    }
    table(
        &[
            "failures",
            "readable",
            "re_replicated",
            "under_repl_after",
            "lost",
        ],
        &rows,
    );
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let (table_store, dfs) = seeded_stores();
    c.bench_function("e9/wide_column_point_read", |b| {
        b.iter(|| table_store.get(std::hint::black_box("row-000997"), "f", "v"))
    });
    c.bench_function("e9/dfs_whole_file_read", |b| {
        b.iter(|| dfs.read(std::hint::black_box("/incidents/all.dat")))
    });
    c.bench_function("e9/wide_column_range_scan_100", |b| {
        b.iter(|| {
            table_store
                .scan_rows(std::hint::black_box("row-000100"), "row-000200")
                .count()
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
