//! E8 (§IV-B): the gang-network statistics table (67 gangs / 982 members /
//! mean 14 first-degree / ~200 second-degree) and the multi-modal narrowing
//! reduction factor. Measures graph expansion and narrowing latency.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f1, header, table, BenchJson};
use scdata::tweets::TweetGenerator;
use scgeo::GeoPoint;
use scsocial::narrowing::{person_handle, Incident, Narrower, NarrowingConfig};
use scsocial::{GangNetwork, GangNetworkGenerator};
use simclock::SimTime;

fn corpus(network: &GangNetwork, incident: &Incident, guilty: usize) -> Vec<scdata::tweets::Tweet> {
    let field = network.graph().second_degree(incident.seed_person);
    let mut gen = TweetGenerator::new(21);
    let mut tweets = Vec::new();
    for &g in field.iter().take(guilty) {
        tweets.push(gen.near_incident(
            &person_handle(g),
            incident.location,
            400.0,
            incident.time,
            30 * 60 * 1_000_000,
        ));
    }
    for (i, &p) in field.iter().enumerate() {
        let far = incident.location.offset_m(10_000.0, i as f64 * 5.0);
        tweets.push(gen.benign(&person_handle(p), far, SimTime::from_secs(1)));
    }
    tweets
}

fn regenerate_figure() {
    header(
        "E8",
        "§IV-B",
        "Gang network statistics and multi-modal narrowing (paper: 67 gangs, 982 members, ~14 first-degree, ~200 second-degree)",
    );
    let network = GangNetworkGenerator::baton_rouge(20).generate();
    let stats = network.member_stats();
    table(
        &["quantity", "paper", "measured"],
        &[
            vec![
                "gangs".into(),
                "67".into(),
                network.gang_count().to_string(),
            ],
            vec![
                "members".into(),
                "982".into(),
                network.member_count().to_string(),
            ],
            vec![
                "mean first-degree".into(),
                "14".into(),
                f1(stats.mean_first_degree),
            ],
            vec![
                "mean second-degree field".into(),
                "~200".into(),
                f1(stats.mean_second_degree),
            ],
        ],
    );

    let quick = scbench::quick("e8");
    let mut json = BenchJson::new("e8", quick);
    json.det_u("gangs", network.gang_count() as u64)
        .det_u("members", network.member_count() as u64)
        .det_f("mean_first_degree", stats.mean_first_degree)
        .det_f("mean_second_degree", stats.mean_second_degree);

    println!("\nNarrowing across incidents (3 guilty associates each):");
    let incidents = if quick { 3 } else { 5 };
    let wall = std::time::Instant::now();
    let mut poi_total = 0u64;
    let mut rows = Vec::new();
    for (i, &seed_person) in network
        .members()
        .iter()
        .step_by(200)
        .take(incidents)
        .enumerate()
    {
        let incident = Incident {
            location: GeoPoint::new(30.4515, -91.1871),
            time: SimTime::from_secs(40_000),
            seed_person,
        };
        let tweets = corpus(&network, &incident, 3);
        let narrower = Narrower::new(&network, &tweets, NarrowingConfig::default());
        let report = narrower.narrow(&incident);
        poi_total += report.persons_of_interest.len() as u64;
        rows.push(vec![
            format!("incident-{i}"),
            report.first_degree.to_string(),
            report.field_of_interest.to_string(),
            report.persons_of_interest.len().to_string(),
            f1(report.reduction_factor),
        ]);
    }
    table(&["case", "first_deg", "field", "poi", "reduction_x"], &rows);
    json.det_u("persons_of_interest_total", poi_total)
        .measured("narrowing_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let network = GangNetworkGenerator::baton_rouge(20).generate();
    let seed_person = network.members()[0];
    let incident = Incident {
        location: GeoPoint::new(30.4515, -91.1871),
        time: SimTime::from_secs(40_000),
        seed_person,
    };
    let tweets = corpus(&network, &incident, 3);

    c.bench_function("e8/second_degree_expansion", |b| {
        b.iter(|| {
            network
                .graph()
                .second_degree(std::hint::black_box(seed_person))
        })
    });
    c.bench_function("e8/full_narrowing", |b| {
        let narrower = Narrower::new(&network, &tweets, NarrowingConfig::default());
        b.iter(|| narrower.narrow(std::hint::black_box(&incident)))
    });
    c.bench_function("e8/generate_network", |b| {
        b.iter(|| GangNetworkGenerator::baton_rouge(std::hint::black_box(20)).generate())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
