//! E6 (Fig. 7, §IV-A2): the CNN+LSTM action recognizer's entropy-threshold
//! sweep — exit-1 rate, accuracy, and feature-map bytes shipped to the
//! server. Measures device-path and full-path clip inference.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scdata::actions::ClipGenerator;
use smartcity_core::apps::actions::ActionRecognizer;

fn regenerate_figure() -> (ActionRecognizer, Vec<scdata::actions::Clip>, Vec<usize>) {
    header(
        "E6",
        "Fig. 7 / §IV-A2",
        "Entropy-threshold sweep over the two-exit CNN+LSTM recognizer",
    );
    let quick = scbench::quick("e6");
    let mut gen = ClipGenerator::new(16, 16, 8, 13);
    let (clips, labels) = gen.dataset(6);
    let mut rec = ActionRecognizer::new(16, 8, 6, 0.6, 14);
    rec.train(&clips, &labels, if quick { 20 } else { 45 });

    let mut json = BenchJson::new("e6", quick);
    let wall = std::time::Instant::now();
    let mut rows = Vec::new();
    for &threshold in &[f32::INFINITY, 1.6, 1.45, 1.3, 1.15, 1.0, -1.0] {
        rec.set_entropy_threshold(threshold);
        let (acc, offload) = rec.evaluate(&clips, &labels);
        let recs = rec.recognize(&clips);
        let bytes: usize = recs.iter().map(|r| r.feature_bytes).sum();
        if (threshold - 1.3).abs() < 1e-6 {
            json.det_f("accuracy_at_1_3", acc)
                .det_f("offload_at_1_3", offload)
                .det_u("feature_bytes_at_1_3", bytes as u64);
        }
        rows.push(vec![
            if threshold.is_infinite() {
                "inf".into()
            } else {
                format!("{threshold:.1}")
            },
            f3(1.0 - offload),
            f3(offload),
            f3(acc),
            (bytes / 1024).to_string(),
        ]);
    }
    table(
        &[
            "entropy_thr",
            "exit1_rate",
            "offload",
            "accuracy",
            "feat_KB",
        ],
        &rows,
    );
    println!("device-side params: {}", rec.local_param_count());
    json.det_u("local_params", rec.local_param_count() as u64)
        .measured("figure_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
    (rec, clips, labels)
}

fn bench(c: &mut Criterion) {
    let (mut rec, clips, _) = regenerate_figure();
    let batch: Vec<_> = clips.iter().take(6).cloned().collect();
    rec.set_entropy_threshold(f32::INFINITY); // exit 1 only
    c.bench_function("e6/recognize_6_clips_device_path", |b| {
        b.iter(|| rec.recognize(std::hint::black_box(&batch)))
    });
    rec.set_entropy_threshold(-1.0); // full path
    c.bench_function("e6/recognize_6_clips_full_path", |b| {
        b.iter(|| rec.recognize(std::hint::black_box(&batch)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
