//! E10 (§II-C3): distributed crime hot-spot mining with k-means on the
//! dataflow engine, partition scaling, and the D3-feed exports. Measures
//! k-means latency vs partition count.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use sccompute::dataflow::Dataset;
use sccompute::mllib::kmeans;
use scdata::city::{OpenCityGenerator, OpenRecordKind};
use smartcity_core::viz::{dashboard, geojson_points, svg_bar_chart, MapFeature, Series};
use std::time::Instant;

fn crime_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut gen = OpenCityGenerator::new(seed);
    gen.stream(n)
        .into_iter()
        .filter(|r| {
            matches!(
                r.kind,
                OpenRecordKind::CrimeIncident | OpenRecordKind::EmergencyCall
            )
        })
        .map(|r| vec![r.location.lat(), r.location.lon()])
        .collect()
}

fn regenerate_figure() {
    header(
        "E10",
        "§II-C3",
        "Distributed k-means crime hot-spot mining + visualization export",
    );
    let quick = scbench::quick("e10");
    let points = crime_points(if quick { 1_500 } else { 4_000 }, 31);
    println!("crime/911 points: {}", points.len());
    let mut json = BenchJson::new("e10", quick);
    json.det_u("crime_points", points.len() as u64);

    // Partition scaling (the 'distributed' knob).
    let mut rows = Vec::new();
    for &parts in &[1usize, 2, 4, 8] {
        let ds = Dataset::from_vec(points.clone(), parts);
        let start = Instant::now();
        let model = kmeans(&ds, 3, 25, 32);
        let secs = start.elapsed().as_secs_f64();
        let stats = ds.stats();
        if parts == 4 {
            json.det_f("inertia_p4", model.inertia)
                .det_u("iterations_p4", model.iterations as u64)
                .det_u("shuffled_records_p4", stats.shuffled_records as u64);
        }
        json.measured(&format!("kmeans_p{parts}_ms"), secs * 1e3);
        rows.push(vec![
            parts.to_string(),
            f3(secs * 1e3),
            f3(model.inertia),
            model.iterations.to_string(),
            stats.shuffle_stages.to_string(),
            stats.shuffled_records.to_string(),
        ]);
    }
    table(
        &[
            "partitions",
            "ms",
            "inertia",
            "iters",
            "shuffles",
            "shuffled_recs",
        ],
        &rows,
    );

    // Elbow series: inertia vs k (the chart the dashboard would draw).
    let ds = Dataset::from_vec(points.clone(), 4);
    let elbow: Vec<(f64, f64)> = (1..=6)
        .map(|k| (k as f64, kmeans(&ds, k, 25, 33).inertia))
        .collect();
    println!("\nelbow series (k, inertia): {elbow:?}");

    // Exports.
    let model = kmeans(&ds, 3, 25, 32);
    let features: Vec<MapFeature> = model
        .centroids
        .iter()
        .enumerate()
        .map(|(i, c)| MapFeature {
            location: scgeo::GeoPoint::new(c[0], c[1]),
            label: format!("hotspot-{i}"),
            category: "hotspot".into(),
        })
        .collect();
    let geo = geojson_points(&features);
    let dash = dashboard(
        &[("points", points.len() as f64), ("hotspots", 3.0)],
        &[Series {
            name: "elbow".into(),
            points: elbow,
        }],
    );
    let svg = svg_bar_chart(
        "Cluster sizes",
        &model
            .centroids
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let size = points.iter().filter(|p| model.predict(p) == i).count() as f64;
                (format!("hotspot-{i}"), size)
            })
            .collect::<Vec<_>>(),
        400,
        240,
    );
    println!(
        "exports: geojson {} features, dashboard {} bytes, svg {} bytes",
        geo["features"].as_array().unwrap().len(),
        dash.to_string().len(),
        svg.len()
    );
    json.det_u(
        "geojson_features",
        geo["features"].as_array().unwrap().len() as u64,
    );
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let points = crime_points(4000, 31);
    for parts in [1usize, 4] {
        let ds = Dataset::from_vec(points.clone(), parts);
        c.bench_function(&format!("e10/kmeans_k3_p{parts}"), |b| {
            b.iter(|| kmeans(std::hint::black_box(&ds), 3, 10, 32))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench
}
criterion_main!(benches);
