//! E5 (Fig. 6, §IV-A1): detection + classification quality on labelled
//! scenes. The paper's corpus is 32,000 images / 400 classes; the default
//! here is a scaled 8-class run (set `SMARTCITY_FULL=1` for a 400-class
//! catalog build). Regenerates precision/recall rows and measures scene
//! detection latency.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scdata::vehicles::VehicleCatalog;
use scdata::video::FrameGenerator;
use scneural::metrics::ConfusionMatrix;
use smartcity_core::apps::vehicle::{SceneDetector, VehicleClassifier};

fn regenerate_figure() -> SceneDetector {
    header(
        "E5",
        "Fig. 6 / §IV-A1",
        "Detection & classification quality on synthetic labelled scenes",
    );
    let full = std::env::var("SMARTCITY_FULL").is_ok();
    let quick = scbench::quick("e5");
    let classes = if full { 400 } else { 8 };
    let per_class = if full {
        80
    } else if quick {
        8
    } else {
        15
    };
    println!("catalog: {classes} classes x {per_class} crops (paper: 400 classes, 32,000 images)");
    let catalog = VehicleCatalog::generate(classes, 8);
    let train_classes = classes.min(8); // train a tractable classifier head
    let mut gen = FrameGenerator::new(catalog.clone(), 16, 16, 9).noise(0.02);
    let (frames, labels) = gen.dataset(train_classes, per_class);
    let mut clf = VehicleClassifier::new(train_classes, 16, 0.8, 10);
    clf.train(&frames, &labels, if quick { 25 } else { 50 }, 0.01);

    // Crop-level confusion metrics.
    let decisions = clf.classify(&frames);
    let predicted: Vec<usize> = decisions.iter().map(|d| d.class).collect();
    let cm = ConfusionMatrix::from_labels(train_classes, &labels, &predicted);
    let mut rows = Vec::new();
    for cls in 0..train_classes.min(8) {
        rows.push(vec![
            catalog
                .label(scdata::vehicles::VehicleClassId(cls as u16))
                .unwrap_or_default(),
            f3(cm.precision(cls)),
            f3(cm.recall(cls)),
            f3(cm.f1(cls)),
        ]);
    }
    table(&["class", "precision", "recall", "f1"], &rows);
    println!(
        "overall accuracy {:.3}, macro-F1 {:.3}",
        cm.accuracy(),
        cm.macro_f1()
    );

    // Scene-level localization.
    let mut scene_gen = FrameGenerator::new(catalog, 48, 48, 11).noise(0.02);
    let mut detector = SceneDetector::new(clf, 0.15);
    let mut localized = 0;
    let mut total = 0;
    let wall = std::time::Instant::now();
    for _ in 0..if quick { 8 } else { 20 } {
        let (scene, truths) = scene_gen.scene(2);
        let detections = detector.detect(&scene);
        total += truths.len();
        localized += truths
            .iter()
            .filter(|t| detections.iter().any(|d| d.bbox.iou(&t.bbox) > 0.1))
            .count();
    }
    let scenes_ms = wall.elapsed().as_secs_f64() * 1e3;
    println!("scene localization recall: {localized}/{total}");
    let mut json = BenchJson::new("e5", quick);
    json.det_f("crop_accuracy", cm.accuracy())
        .det_f("macro_f1", cm.macro_f1())
        .det_u("localized", localized as u64)
        .det_u("scene_objects", total as u64)
        .measured("scene_detection_ms", scenes_ms);
    json.write();
    detector
}

fn bench(c: &mut Criterion) {
    let mut detector = regenerate_figure();
    let catalog = VehicleCatalog::generate(8, 8);
    let mut scene_gen = FrameGenerator::new(catalog, 48, 48, 12).noise(0.02);
    let (scene, _) = scene_gen.scene(2);
    c.bench_function("e5/detect_scene_48x48", |b| {
        b.iter(|| detector.detect(std::hint::black_box(&scene)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
