//! E17: serving-tier scalability under an open-loop arrival sweep.
//!
//! The paper's cyberinfrastructure ultimately serves dashboards and
//! inference answers to an entire city; this bench measures how the
//! `scserve` tier holds up as open-loop demand sweeps past the backend's
//! service rate. Three mechanisms share the work:
//!
//! - **caches** serve repeat queries/rows from memory, multiplying the
//!   backend's effective capacity by `1 / (1 - hit_rate)`;
//! - **micro-batching** amortizes inference across coalesced rows;
//! - **admission control** bounds the queue, so past the knee the *shed
//!   fraction* — not the admitted p99 — absorbs the overload
//!   (`p99 ≤ queue_capacity / service_rate + service_time` by
//!   construction).
//!
//! The regenerated table sweeps arrival rate at a fixed service rate and
//! shows exactly that shape: flat p50, p99 rising to its bound at the
//! knee, hit rate holding, and shedding going from zero to dominant.
//! Everything is seeded and in sim-time: the same table prints on every
//! run and thread count. Set `E17_QUICK=1` for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f1, f3, header, table, BenchJson};
use scneural::layers::{Dense, Relu};
use scneural::net::Sequential;
use scserve::{ArrivalMode, ServeConfig, Server, ServingReport, WorkloadConfig, WorkloadGen};

const RATES: [f64; 5] = [500.0, 1_000.0, 2_000.0, 4_000.0, 8_000.0];
const SERVICE_RATE: f64 = 2_000.0;
const QUEUE_CAPACITY: usize = 64;

fn quick() -> bool {
    scbench::quick("e17")
}

fn model() -> Sequential {
    Sequential::new()
        .with(Dense::new(8, 32, 41))
        .with(Relu::new())
        .with(Dense::new(32, 4, 42))
}

fn server() -> Server {
    Server::new(ServeConfig {
        service_rate: SERVICE_RATE,
        queue_capacity: QUEUE_CAPACITY,
        // The token bucket is opened wide so the bounded queue is the
        // only shedding mechanism in this sweep.
        rate_per_s: 1e6,
        burst: 1e4,
        ..ServeConfig::default()
    })
    .with_model(model())
}

fn run(rate_per_s: f64, requests: usize) -> ServingReport {
    let mut srv = server();
    WorkloadGen::new(WorkloadConfig {
        seed: 17,
        requests,
        write_fraction: 0.02,
        mode: ArrivalMode::OpenLoop { rate_per_s },
        ..WorkloadConfig::default()
    })
    .run(&mut srv)
}

fn regenerate_figure() {
    header(
        "E17",
        "§II-C3",
        "Open-loop arrival sweep through the serving tier: caches, micro-batches, and load shedding",
    );
    let requests = if quick() { 1_200 } else { 5_000 };
    let p99_bound_ms = (QUEUE_CAPACITY as f64 / SERVICE_RATE + 1.0 / SERVICE_RATE) * 1e3;

    let mut json = BenchJson::new("e17", quick());
    let wall = std::time::Instant::now();
    let mut rows = Vec::new();
    let mut knee: Option<f64> = None;
    for &rate in &RATES {
        let r = run(rate, requests);
        if r.shed_fraction > 0.01 && knee.is_none() {
            knee = Some(rate);
        }
        let tag = format!("r{}", rate as u64);
        json.det_f(&format!("{tag}_p99_sim_ms"), r.p99_ms)
            .det_f(&format!("{tag}_hit_rate"), r.hit_rate)
            .det_f(&format!("{tag}_shed_fraction"), r.shed_fraction)
            .det_u(&format!("{tag}_completed"), r.completed);
        rows.push(vec![
            f1(rate),
            f3(r.p50_ms),
            f3(r.p99_ms),
            f3(r.hit_rate),
            f1(r.mean_batch),
            f3(r.shed_fraction),
            r.completed.to_string(),
            r.stale_served.to_string(),
        ]);
    }
    table(
        &[
            "arrival_per_s",
            "p50_ms",
            "p99_ms",
            "hit_rate",
            "mean_batch",
            "shed_frac",
            "completed",
            "stale",
        ],
        &rows,
    );
    match knee {
        Some(rate) => println!(
            "\nshedding engages at {} req/s (service rate {} req/s); admitted p99 \
             stays under its {} ms bound at every rate — overload is absorbed by \
             the shed fraction, not by latency",
            f1(rate),
            f1(SERVICE_RATE),
            f1(p99_bound_ms),
        ),
        None => println!(
            "\nno rate in the sweep engaged shedding (service rate {} req/s)",
            f1(SERVICE_RATE),
        ),
    }
    json.det_f("knee_rate_per_s_det", knee.unwrap_or(0.0))
        .measured("sweep_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let requests = if quick() { 600 } else { 2_000 };
    c.bench_function("e17/serve_at_service_rate", |b| {
        b.iter(|| std::hint::black_box(run(SERVICE_RATE, requests)))
    });
    c.bench_function("e17/serve_4x_overload", |b| {
        b.iter(|| std::hint::black_box(run(4.0 * SERVICE_RATE, requests)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
