//! E13 (§II-B1 / §II-C2): substrate behaviour tables — YARN scheduler
//! fairness/utilization under the three policies, and streaming delivery
//! guarantees under consumer crashes. Measures scheduling and consumption
//! throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use sccompute::yarn::{AppId, Policy, Resource, ResourceManager};
use scstream::{ConsumerGroup, ConsumerId, Event, Topic};

fn cluster(policy: Policy) -> ResourceManager {
    let mut rm = ResourceManager::new(policy);
    for _ in 0..4 {
        rm.add_node(Resource::new(8192, 8));
    }
    rm
}

fn regenerate_figure() {
    header(
        "E13",
        "§II-B1 / §II-C2",
        "(a) YARN policies: allocation split between an early flood app and a late app",
    );
    let mut json = BenchJson::new("e13", scbench::quick("e13"));
    let wall = std::time::Instant::now();
    let mut rows = Vec::new();
    for (name, policy) in [
        ("fifo", Policy::Fifo),
        ("fair", Policy::Fair),
        (
            "capacity(75/25)",
            Policy::Capacity(vec![("prod".into(), 0.75), ("dev".into(), 0.25)]),
        ),
    ] {
        let mut rm = cluster(policy);
        // App 1 floods; app 2 arrives later with equal demand.
        for _ in 0..32 {
            rm.submit(AppId(1), "prod", Resource::new(1024, 1));
        }
        for _ in 0..32 {
            rm.submit(AppId(2), "dev", Resource::new(1024, 1));
        }
        rm.schedule();
        let u1 = rm.app_usage(AppId(1)).memory_mb / 1024;
        let u2 = rm.app_usage(AppId(2)).memory_mb / 1024;
        let slug = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect::<String>();
        json.det_u(&format!("{slug}_app1_containers"), u1)
            .det_u(&format!("{slug}_app2_containers"), u2);
        rows.push(vec![
            name.to_string(),
            u1.to_string(),
            u2.to_string(),
            f3(rm.utilization()),
            rm.pending_count().to_string(),
        ]);
    }
    table(
        &[
            "policy",
            "app1_containers",
            "app2_containers",
            "utilization",
            "pending",
        ],
        &rows,
    );

    println!("\n(b) streaming delivery under a consumer crash (at-least-once):");
    let mut topic = Topic::new("events", 4);
    for i in 0..1_000 {
        topic.publish(Event::with_key(format!("k{i}"), vec![0]));
    }
    let mut group = ConsumerGroup::new("workers", 4);
    group.join(ConsumerId(0));
    // Consume 600, commit only 400, crash, rejoin, drain.
    let batch = group.poll(ConsumerId(0), &topic, 600);
    for (pid, off, _) in batch.iter().take(400) {
        group.commit(*pid, *off);
    }
    let committed_before = group.total_committed();
    group.leave(ConsumerId(0));
    group.join(ConsumerId(1));
    let mut redelivered = 0;
    loop {
        let b = group.poll(ConsumerId(1), &topic, 256);
        if b.is_empty() {
            break;
        }
        redelivered += b.len();
        for (pid, off, _) in b {
            group.commit(pid, off);
        }
    }
    table(
        &["quantity", "value"],
        &[
            vec!["published".into(), "1000".into()],
            vec!["consumed pre-crash".into(), "600".into()],
            vec!["committed pre-crash".into(), committed_before.to_string()],
            vec!["delivered post-crash".into(), redelivered.to_string()],
            vec!["final lag".into(), group.lag(&topic).to_string()],
        ],
    );
    assert_eq!(group.lag(&topic), 0, "everything eventually delivered");
    assert!(redelivered >= 600, "uncommitted work redelivered");
    json.det_u("committed_pre_crash", committed_before)
        .det_u("redelivered_post_crash", redelivered as u64)
        .det_u("final_lag", group.lag(&topic))
        .measured("figure_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    c.bench_function("e13/schedule_64_requests_fair", |b| {
        b.iter(|| {
            let mut rm = cluster(Policy::Fair);
            for i in 0..64u32 {
                rm.submit(AppId(i % 4), "q", Resource::new(512, 1));
            }
            rm.schedule()
        })
    });
    c.bench_function("e13/publish_consume_1000", |b| {
        b.iter(|| {
            let mut topic = Topic::new("events", 4);
            for i in 0..1_000 {
                topic.publish(Event::with_key(format!("k{i}"), vec![0]));
            }
            let mut group = ConsumerGroup::new("workers", 4);
            group.join(ConsumerId(0));
            let mut total = 0;
            loop {
                let batch = group.poll(ConsumerId(0), &topic, 256);
                if batch.is_empty() {
                    break;
                }
                total += batch.len();
                for (pid, off, _) in batch {
                    group.commit(pid, off);
                }
            }
            total
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
