//! E1 (Fig. 1 + Fig. 4): end-to-end pipeline — ingest → NoSQL → analysis →
//! visualization. Regenerates the per-stage accounting rows and measures
//! whole-pipeline throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use scbench::{f3, header, table, BenchJson};
use scnosql::document::Collection;
use scnosql::wide_column::Table;
use scstream::Topic;
use smartcity_core::pipeline::CityDataPipeline;
use std::time::Instant;

fn regenerate_figure() {
    header(
        "E1",
        "Fig. 1 + Fig. 4",
        "Per-stage pipeline accounting at increasing ingest volumes",
    );
    let quick = scbench::quick("e1");
    let sizes: &[usize] = if quick {
        &[200, 500]
    } else {
        &[200, 500, 1000, 2000]
    };
    let mut json = BenchJson::new("e1", quick);
    let mut rows = Vec::new();
    for &records in sizes {
        let pipeline = CityDataPipeline::new(1, records, records / 5);
        let mut topic = Topic::new("raw", 4);
        let mut store = Collection::new("incidents");
        store.create_index("kind");
        let mut annotations = Table::new("annotations", 4096);
        let start = Instant::now();
        let report = pipeline
            .runner(&mut topic, &mut store, &mut annotations)
            .run()
            .expect("generated pipeline data is always valid");
        let secs = start.elapsed().as_secs_f64();
        json.det_u(&format!("ingested_{records}"), report.ingested as u64)
            .det_u(&format!("stored_{records}"), report.stored as u64)
            .det_u(&format!("annotated_{records}"), report.annotated as u64)
            .det_u(&format!("hotspots_{records}"), report.hotspots.len() as u64)
            .measured(&format!("run_{records}_ms"), secs * 1e3);
        rows.push(vec![
            records.to_string(),
            report.ingested.to_string(),
            report.stored.to_string(),
            report.annotated.to_string(),
            report.hotspots.len().to_string(),
            f3(secs),
            f3(report.ingested as f64 / secs / 1000.0),
        ]);
    }
    json.write();
    table(
        &[
            "city_records",
            "ingested",
            "stored",
            "annotated",
            "hotspots",
            "secs",
            "kev/s",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    c.bench_function("e1/pipeline_500_records", |b| {
        b.iter_batched(
            || {
                let mut store = Collection::new("incidents");
                store.create_index("kind");
                (Topic::new("raw", 4), store, Table::new("annotations", 4096))
            },
            |(mut topic, mut store, mut annotations)| {
                CityDataPipeline::new(1, 500, 100)
                    .runner(&mut topic, &mut store, &mut annotations)
                    .run()
                    .expect("generated pipeline data is always valid")
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
