//! E15 (runtime): scpar parallel scaling. The deterministic worker pool
//! promises identical results at any thread count; this bench measures what
//! the extra threads buy. It regenerates a speedup table (1/2/4/8 workers)
//! for the four parallelised kernels — blocked matmul, batched inference,
//! fog placement sweeps, and the E1 pipeline — then measures the serial and
//! 4-thread variants under Criterion.
//!
//! Speedups depend on host cores: on a single-core runner every row is ~1.0
//! by construction (the pool degrades to the serial path). Set `E15_QUICK=1`
//! to shrink problem sizes for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scfog::{FogSimulator, Placement, Topology, Workload};
use scneural::exec::ExecCtx;
use scneural::layers::{Dense, Relu};
use scneural::linalg::Mat;
use scneural::net::Sequential;
use scneural::tensor::Tensor;
use scnosql::document::Collection;
use scnosql::wide_column::Table;
use scpar::ScparConfig;
use scprof::Profiler;
use scstream::Topic;
use smartcity_core::pipeline::CityDataPipeline;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn quick() -> bool {
    scbench::quick("e15")
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    f(); // warm-up (first run spawns the pool)
    let start = std::time::Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn splitmix_f64(seed: u64, n: usize) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64
        })
        .collect()
}

fn matmul_row(n: usize) -> Vec<f64> {
    let a = Mat::from_vec(n, n, splitmix_f64(15, n * n));
    let b = Mat::from_vec(n, n, splitmix_f64(16, n * n));
    THREADS
        .iter()
        .map(|&t| {
            time_ms(|| {
                let ctx = ExecCtx::serial().with_par(ScparConfig::with_threads(t));
                std::hint::black_box(a.matmul_ctx(&b, &ctx));
            })
        })
        .collect()
}

fn inference_row(rows: usize) -> Vec<f64> {
    let net = Sequential::new()
        .with(Dense::new(64, 128, 15))
        .with(Relu::new())
        .with(Dense::new(128, 64, 16))
        .with(Relu::new())
        .with(Dense::new(64, 8, 17));
    let data: Vec<f32> = splitmix_f64(17, rows * 64)
        .iter()
        .map(|v| *v as f32)
        .collect();
    let input = Tensor::from_vec(vec![rows, 64], data).expect("shape matches data");
    THREADS
        .iter()
        .map(|&t| {
            time_ms(|| {
                let ctx = ExecCtx::serial().with_par(ScparConfig::with_threads(t));
                std::hint::black_box(net.predict_ctx(&input, &ctx));
            })
        })
        .collect()
}

fn sweep_placements() -> Vec<Placement> {
    (0..8)
        .map(|i| Placement::EarlyExit {
            local_fraction: 0.1 * (i + 1) as f64,
            feature_bytes: 20_000,
        })
        .collect()
}

fn fog_sweep_row(jobs: usize) -> Vec<f64> {
    let sim = FogSimulator::new(Topology::four_tier(8, 4, 2));
    let workload = Workload::with_escalation(jobs, 100_000, 20.0, 0.3, 15);
    let placements = sweep_placements();
    THREADS
        .iter()
        .map(|&t| {
            time_ms(|| {
                std::hint::black_box(sim.runner(&workload).threads(t).sweep(&placements));
            })
        })
        .collect()
}

fn pipeline_run(records: usize, waze: usize, threads: usize) {
    let mut topic = Topic::new("raw", 4);
    let mut store = Collection::new("incidents");
    store.create_index("kind");
    let mut annotations = Table::new("annotations", 1024);
    let report = CityDataPipeline::new(15, records, waze)
        .runner(&mut topic, &mut store, &mut annotations)
        .threads(threads)
        .run()
        .expect("generated pipeline data is always valid");
    std::hint::black_box(report);
}

fn pipeline_row(records: usize, waze: usize) -> Vec<f64> {
    THREADS
        .iter()
        .map(|&t| time_ms(|| pipeline_run(records, waze, t)))
        .collect()
}

fn regenerate_figure() {
    header(
        "E15",
        "runtime",
        "scpar parallel scaling: wall time by worker count (identical outputs)",
    );

    let (mat_n, inf_rows, sweep_jobs, recs, waze) = if quick() {
        (192, 256, 100, 300, 60)
    } else {
        (512, 2048, 400, 2000, 400)
    };

    let kernels: Vec<(String, Vec<f64>)> = vec![
        (format!("matmul_{mat_n}x{mat_n}"), matmul_row(mat_n)),
        (
            format!("batch_inference_{inf_rows}"),
            inference_row(inf_rows),
        ),
        (
            format!("fog_sweep_8x{sweep_jobs}_jobs"),
            fog_sweep_row(sweep_jobs),
        ),
        (
            format!("e1_pipeline_{recs}_records"),
            pipeline_row(recs, waze),
        ),
    ];

    let rows: Vec<Vec<String>> = kernels
        .iter()
        .map(|(name, times)| {
            let mut row = vec![name.clone()];
            row.extend(times.iter().map(|&ms| f3(ms)));
            row.push(f3(times[0] / times[2])); // serial / 4-thread
            row
        })
        .collect();
    table(
        &["kernel", "t1_ms", "t2_ms", "t4_ms", "t8_ms", "speedup_4t"],
        &rows,
    );
    println!(
        "\nhost parallelism: {} (speedups require multi-core hosts; outputs are identical regardless)",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );

    let mut json = BenchJson::new("e15", quick());
    let labels = ["matmul", "batch_inference", "fog_sweep", "e1_pipeline"];
    for (label, (_, times)) in labels.iter().zip(&kernels) {
        json.measured(&format!("{label}_t1_ms"), times[0])
            .measured(&format!("{label}_t4_ms"), times[2]);
    }
    profile_section(&mut json, mat_n, inf_rows);
    simd_section(&mut json, mat_n, inf_rows);
    tuned_section(&mut json);
    json.write();
}

/// Tuned-vs-untuned: the committed `tuning_table.json` against the
/// built-in constants, on the overhead-dominated shapes where the table
/// actually moves the schedule. Runs at a fixed 2 threads so the
/// deterministic metrics (which config ran) are identical across the CI
/// thread matrix; outputs are bit-identical either way, so only wall
/// time is at stake.
fn tuned_section(json: &mut BenchJson) {
    let table_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tuning_table.json");
    let tuning_table = match sctune::TuningTable::load(std::path::Path::new(table_path)) {
        Ok(t) => t,
        Err(e) => {
            println!("\ntuned-vs-untuned: skipped ({e})");
            return;
        }
    };
    let tuner = sctune::Tuner::from_table(tuning_table);
    let par = ScparConfig::with_threads(2);
    let tuned = ExecCtx::serial().with_par(par).with_tuner(tuner.clone());
    let untuned = ExecCtx::serial().with_par(par);

    // Tall-skinny f64 matmul: 2·k·n flops per row are nothing next to
    // per-task dispatch, so panel height dominates the wall clock.
    let (m, k, n) = if quick() {
        (2048, 16, 16)
    } else {
        (8192, 16, 16)
    };
    let a = Mat::from_vec(m, k, splitmix_f64(45, m * k));
    let b = Mat::from_vec(k, n, splitmix_f64(46, k * n));
    let mat_untuned_ms =
        sctune::measure::median_of(5, || std::hint::black_box(a.matmul_ctx(&b, &untuned))) * 1e3;
    let mat_tuned_ms =
        sctune::measure::median_of(5, || std::hint::black_box(a.matmul_ctx(&b, &tuned))) * 1e3;
    let panel = tuner.matmul_f64_panel_rows(m, k, n, 2, "any", Mat::PANEL_ROWS);

    // Batched inference over the serving net: bigger chunks, fewer
    // per-chunk tensor splits and joins.
    let rows = if quick() { 256 } else { 2048 };
    let net = Sequential::new()
        .with(Dense::new(64, 128, 15))
        .with(Relu::new())
        .with(Dense::new(128, 64, 16))
        .with(Relu::new())
        .with(Dense::new(64, 8, 17));
    let data: Vec<f32> = splitmix_f64(47, rows * 64)
        .iter()
        .map(|v| *v as f32)
        .collect();
    let input = Tensor::from_vec(vec![rows, 64], data).expect("shape matches data");
    let inf_untuned_ms = sctune::measure::median_of(5, || {
        std::hint::black_box(net.predict_ctx(&input, &untuned))
    }) * 1e3;
    let inf_tuned_ms =
        sctune::measure::median_of(5, || std::hint::black_box(net.predict_ctx(&input, &tuned)))
            * 1e3;
    let chunk = tuner.predict_chunk_rows(rows, 64, 2, scneural::net::BATCH_CHUNK_ROWS);

    println!("\ntuned-vs-untuned (2 threads, committed tuning_table.json):");
    table(
        &["kernel", "config", "untuned_ms", "tuned_ms", "speedup"],
        &[
            vec![
                format!("matmul_f64_{m}x{k}x{n}"),
                format!("panel_rows {} -> {panel}", Mat::PANEL_ROWS),
                f3(mat_untuned_ms),
                f3(mat_tuned_ms),
                f3(mat_untuned_ms / mat_tuned_ms),
            ],
            vec![
                format!("batch_inference_{rows}"),
                format!("chunk_rows {} -> {chunk}", scneural::net::BATCH_CHUNK_ROWS),
                f3(inf_untuned_ms),
                f3(inf_tuned_ms),
                f3(inf_untuned_ms / inf_tuned_ms),
            ],
        ],
    );

    // Which config ran is a function of the committed table alone — exact
    // material for the perf gate. The wall times carry timer noise and go
    // in the measured (tolerance-banded) section.
    json.det_u("tuned_matmul_f64_panel_rows", panel as u64)
        .det_u("tuned_predict_chunk_rows", chunk as u64);
    json.measured("tuned_matmul_f64_ms", mat_tuned_ms)
        .measured("untuned_matmul_f64_ms", mat_untuned_ms)
        .measured("tuned_predict_ms", inf_tuned_ms)
        .measured("untuned_predict_ms", inf_untuned_ms);
    json.tuning(&tuner.decisions());
}

/// Measured per-kernel GFLOP/s: run the two neural kernels under a
/// [`Profiler`], then rate the deterministic FLOP counts against the
/// measured wall-clock window. FLOP totals are exact and thread-invariant;
/// only the rates carry timer noise.
fn profile_section(json: &mut BenchJson, mat_n: usize, inf_rows: usize) {
    let profiler = Profiler::shared();
    let handle = profiler.handle();
    let cfg = ScparConfig::with_threads(4);

    let data_a: Vec<f32> = splitmix_f64(25, mat_n * mat_n)
        .iter()
        .map(|v| *v as f32)
        .collect();
    let data_b: Vec<f32> = splitmix_f64(26, mat_n * mat_n)
        .iter()
        .map(|v| *v as f32)
        .collect();
    let a = Tensor::from_vec(vec![mat_n, mat_n], data_a).expect("shape matches data");
    let b = Tensor::from_vec(vec![mat_n, mat_n], data_b).expect("shape matches data");

    let net = Sequential::new()
        .with(Dense::new(64, 128, 15))
        .with(Relu::new())
        .with(Dense::new(128, 64, 16))
        .with(Relu::new())
        .with(Dense::new(64, 8, 17))
        .with_telemetry(handle.clone());
    let inf_data: Vec<f32> = splitmix_f64(27, inf_rows * 64)
        .iter()
        .map(|v| *v as f32)
        .collect();
    let input = Tensor::from_vec(vec![inf_rows, 64], inf_data).expect("shape matches data");

    let ctx = ExecCtx::serial()
        .with_par(cfg)
        .with_telemetry(handle.clone());
    let start = std::time::Instant::now();
    std::hint::black_box(a.matmul_ctx(&b, &ctx).expect("square matmul"));
    std::hint::black_box(net.predict_ctx(&input, &ctx));
    let elapsed_s = start.elapsed().as_secs_f64();

    let report = profiler.report().with_elapsed(elapsed_s);
    println!("\nmeasured per-kernel GFLOP/s over a {elapsed_s:.4}s window:");
    println!("{}", report.render_table(10));

    let matmul_flops = report
        .kernels
        .iter()
        .find(|k| k.name == scneural::tensor::KERNEL_MATMUL)
        .map_or(0, |k| k.work.flops);
    json.det_u("matmul_flops", matmul_flops)
        .det_u(
            "matmul_flops_closed_form",
            2 * (mat_n as u64) * (mat_n as u64) * (mat_n as u64),
        )
        .measured("profile_window_s", elapsed_s);
    json.profile(&report, elapsed_s);
}

/// SIMD-vs-scalar: the same strict-profile f32 kernels pinned to
/// `Isa::Scalar` and to the runtime-dispatched ISA. Outputs are
/// bit-identical by contract (`crates/simd/tests/ulp.rs` proves it);
/// only the wall time may differ, and on a scalar-only host both
/// columns collapse to the same backend.
fn simd_section(json: &mut BenchJson, mat_n: usize, inf_rows: usize) {
    let native = scsimd::Isa::active();
    println!(
        "\nSIMD-vs-scalar (single thread, dispatched ISA = {}):",
        native.name()
    );

    let to_f32 = |seed: u64, n: usize| -> Vec<f32> {
        splitmix_f64(seed, n).iter().map(|v| *v as f32).collect()
    };
    let a = Tensor::from_vec(vec![mat_n, mat_n], to_f32(35, mat_n * mat_n))
        .expect("shape matches data");
    let b = Tensor::from_vec(vec![mat_n, mat_n], to_f32(36, mat_n * mat_n))
        .expect("shape matches data");
    let flops = 2.0 * (mat_n as f64).powi(3);

    let mut rows: Vec<Vec<String>> = Vec::new();
    let isas = [("scalar", scsimd::Isa::Scalar), ("native", native)];
    for (label, isa) in isas {
        let ctx = ExecCtx::serial().with_isa(isa);
        let ms = time_ms(|| {
            std::hint::black_box(a.matmul_ctx(&b, &ctx).expect("square matmul"));
        });
        let gflops = flops / (ms * 1e6);
        rows.push(vec![
            format!("matmul_f32_{mat_n}x{mat_n}"),
            label.into(),
            isa.name().into(),
            f3(ms),
            f3(gflops),
        ]);
        json.measured(&format!("simd_matmul_{label}_gflops"), gflops);
    }

    let seed_buf = to_f32(37, inf_rows * 64);
    type UnaryOp = fn(&mut [f32], scsimd::Isa);
    let unary: [(&str, UnaryOp); 3] = [
        ("exp", scsimd::exp_f32),
        ("sigmoid", scsimd::sigmoid_f32),
        ("tanh", scsimd::tanh_f32),
    ];
    for (kname, op) in unary {
        for (label, isa) in isas {
            let mut buf = seed_buf.clone();
            let ms = time_ms(|| {
                op(std::hint::black_box(&mut buf), isa);
            });
            let melems = buf.len() as f64 / (ms * 1e3);
            rows.push(vec![
                format!("{kname}_{}", buf.len()),
                label.into(),
                isa.name().into(),
                f3(ms),
                f3(melems),
            ]);
            json.measured(&format!("simd_{kname}_{label}_melems"), melems);
        }
    }
    table(&["kernel", "pin", "isa", "ms", "gflops_or_melems"], &rows);
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let n = if quick() { 192 } else { 512 };
    let a = Mat::from_vec(n, n, splitmix_f64(15, n * n));
    let b = Mat::from_vec(n, n, splitmix_f64(16, n * n));
    let serial = ExecCtx::serial();
    let four = ExecCtx::serial().with_par(ScparConfig::with_threads(4));
    c.bench_function("e15/matmul_serial", |bch| {
        bch.iter(|| a.matmul_ctx(std::hint::black_box(&b), &serial))
    });
    c.bench_function("e15/matmul_4_threads", |bch| {
        bch.iter(|| a.matmul_ctx(std::hint::black_box(&b), &four))
    });

    let (recs, waze) = if quick() { (300, 60) } else { (1000, 200) };
    c.bench_function("e15/pipeline_serial", |bch| {
        bch.iter(|| pipeline_run(std::hint::black_box(recs), waze, 1))
    });
    c.bench_function("e15/pipeline_4_threads", |bch| {
        bch.iter(|| pipeline_run(std::hint::black_box(recs), waze, 4))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
