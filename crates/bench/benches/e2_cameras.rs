//! E2 (Fig. 2, §II-A1): the DOTD camera network — >200 cameras across nine
//! Louisiana cities. Regenerates the per-city coverage table behind the
//! Fig. 2 map and measures spatial-query latency.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f1, header, table, BenchJson};
use scgeo::cameras::CameraNetwork;
use scgeo::GeoPoint;
use std::time::Instant;

fn regenerate_figure() {
    header(
        "E2",
        "Fig. 2 / §II-A1",
        "Camera registry: per-city coverage (paper: >200 cameras, 9 cities)",
    );
    let net = CameraNetwork::louisiana_default(42);
    let rows: Vec<Vec<String>> = net
        .coverage_report()
        .iter()
        .map(|c| {
            vec![
                c.city.clone(),
                c.cameras.to_string(),
                f1(c.corridor_km),
                f1(c.mean_spacing_m),
            ]
        })
        .collect();
    table(&["city", "cameras", "corridor_km", "mean_spacing_m"], &rows);
    println!("TOTAL cameras: {} (paper claims >200)", net.len());

    let mut json = BenchJson::new("e2", scbench::quick("e2"));
    json.det_u("total_cameras", net.len() as u64)
        .det_u("cities", net.coverage_report().len() as u64);
    let downtown = GeoPoint::new(30.4515, -91.1871);
    let start = Instant::now();
    for _ in 0..200 {
        std::hint::black_box(net.nearest(downtown, 5));
    }
    json.measured(
        "nearest_200_queries_ms",
        start.elapsed().as_secs_f64() * 1e3,
    );
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let net = CameraNetwork::louisiana_default(42);
    let downtown = GeoPoint::new(30.4515, -91.1871);
    c.bench_function("e2/nearest_camera_k5", |b| {
        b.iter(|| net.nearest(std::hint::black_box(downtown), 5))
    });
    c.bench_function("e2/coverage_query_radius_2km", |b| {
        b.iter(|| net.within(std::hint::black_box(downtown), 2_000.0))
    });
    c.bench_function("e2/build_network", |b| {
        b.iter(|| CameraNetwork::louisiana_default(std::hint::black_box(42)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
