//! E16 (§II-B1): fault injection and recovery across the three distributed
//! layers. The paper's hardware layer promises that the tiered
//! cyberinfrastructure keeps operating "even though some machines may fail";
//! this bench sweeps fault intensity (0×/0.5×/1×/2× of a baseline
//! [`FaultSpec`]) and regenerates a table of what resilience costs:
//!
//! - **fog**: p99 latency, jobs rerouted / lost / degraded, and the worst
//!   fault-induced stall (`recovery_s`) under crash + partition + spike
//!   injection;
//! - **degradation**: the edge-exit take-rate forced by partitions, and the
//!   effective classifier accuracy once degraded jobs fall back to the
//!   edge-exit answer;
//! - **stream**: at-least-once delivery through broker outages — unique
//!   deliveries, accounted duplicates, and losses (zero with an adequate
//!   retry budget);
//! - **DFS**: repair MTTR and the final under-replicated count after
//!   datanode crashes and block corruption.
//!
//! Everything is seeded: the same intensities print the same table on every
//! run and thread count. Set `E16_QUICK=1` to shrink sizes for CI smoke
//! runs.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f1, f3, header, table, BenchJson};
use scdfs::DfsCluster;
use scfault::{FaultPlan, FaultSpec, RetryPolicy};
use scfog::{FogSimulator, Placement, SimReport, Topology, Workload};
use scstream::{audit_delivery, Broker, DeliveryAudit, ResilientProducer, Topic};
use simclock::{SimDuration, SimTime};
use smartcity_core::apps::vehicle::VehicleClassifier;

const INTENSITIES: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

fn quick() -> bool {
    scbench::quick("e16")
}

/// Fog run under the plan: 23 nodes (1 cloud + 2 servers + 4 fogs + 16
/// edges), early-exit placement so partitions have a degradation path.
fn fog_run(intensity: f64, jobs: usize) -> SimReport {
    let sim = FogSimulator::new(Topology::four_tier(4, 2, 2));
    let workload = Workload::with_escalation(jobs, 100_000, 20.0, 0.4, 7);
    // Horizon matches the ~10 s arrival window so faults land while jobs
    // are in flight.
    let spec = FaultSpec {
        crashes: 3.0,
        partitions: 2.0,
        latency_spikes: 2.0,
        ..FaultSpec::new(SimDuration::from_secs(12), 23)
    }
    .intensity(intensity);
    let plan = FaultPlan::generate(&spec, 16);
    sim.runner(&workload)
        .placement(Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        })
        .faults(&plan)
        .run()
}

/// Stream run: one broker node taking partitions and message faults (no
/// unrecoverable crashes), producers retrying with a deep backoff budget.
fn stream_run(intensity: f64, sends: u64) -> (DeliveryAudit, u64) {
    let spec = FaultSpec {
        crashes: 0.0,
        partitions: 3.0,
        message_faults: 6.0,
        message_seq_space: sends * 2,
        ..FaultSpec::new(SimDuration::from_secs(30), 1)
    }
    .intensity(intensity);
    let plan = FaultPlan::generate(&spec, 17);
    let mut broker = Broker::new(Topic::new("annotations", 4), 0, &plan);
    let retry = RetryPolicy::new(10, SimDuration::from_millis(100));
    let mut producer = ResilientProducer::new("edge-cam", retry, 18);
    for i in 0..sends {
        let at = SimTime::from_millis(i * 40); // spread across the horizon
        let event = scstream::Event::with_key(format!("cam-{}", i % 8), vec![i as u8]);
        producer.send(&mut broker, event, at);
    }
    let audit = audit_delivery(broker.topic(), &[("edge-cam", sends)]);
    (audit, producer.retries())
}

/// DFS run: crashes and corruptions against a replicated cluster, healed by
/// the scrub + re-replication loop.
fn dfs_run(intensity: f64, files: usize) -> scdfs::RepairReport {
    let mut dfs = DfsCluster::new(8, 3, 1024, 19).expect("valid cluster config");
    for i in 0..files {
        let payload: Vec<u8> = (0..3000).map(|b| (b + i) as u8).collect();
        dfs.create(&format!("/video/f{i}"), &payload)
            .expect("healthy cluster accepts writes");
    }
    let blocks = dfs.stats().blocks as u64;
    let spec = FaultSpec {
        crashes: 3.0,
        corruptions: 4.0,
        blocks,
        ..FaultSpec::new(SimDuration::from_secs(40), 8)
    }
    .intensity(intensity);
    let plan = FaultPlan::generate(&spec, 20);
    dfs.run_fault_plan(&plan, SimDuration::from_secs(1), SimDuration::from_secs(60))
}

/// Accuracy at the trained confidence policy vs. forced edge exit (the
/// degraded mode partitions push jobs into).
fn accuracy_pair() -> (f64, f64) {
    let classes = 6;
    let catalog = scdata::vehicles::VehicleCatalog::generate(classes, 4);
    let mut gen = scdata::video::FrameGenerator::new(catalog.clone(), 16, 16, 5).noise(0.02);
    let (frames, labels) = gen.dataset(classes, if quick() { 8 } else { 15 });
    let mut clf = VehicleClassifier::new(classes, 16, 0.5, 6);
    clf.train(&frames, &labels, if quick() { 25 } else { 50 }, 0.01);
    let mut test_gen = scdata::video::FrameGenerator::new(catalog, 16, 16, 99).noise(0.10);
    let (test_frames, test_labels) = test_gen.dataset(classes, 12);
    let (acc_policy, _) = clf.evaluate(&test_frames, &test_labels);
    clf.set_threshold(0.0); // every frame takes the edge exit
    let (acc_edge, _) = clf.evaluate(&test_frames, &test_labels);
    (acc_policy, acc_edge)
}

fn regenerate_figure() {
    header(
        "E16",
        "§II-B1",
        "Fault intensity sweep: fog recovery, stream delivery, DFS repair, degraded accuracy",
    );
    let (jobs, sends, files) = if quick() {
        (60, 120, 6)
    } else {
        (200, 500, 20)
    };
    let (acc_policy, acc_edge) = accuracy_pair();

    let mut json = BenchJson::new("e16", quick());
    let wall = std::time::Instant::now();
    let mut rows = Vec::new();
    for &x in &INTENSITIES {
        let fog = fog_run(x, jobs);
        let (audit, retries) = stream_run(x, sends);
        let dfs = dfs_run(x, files);
        let arrived = fog.jobs + fog.jobs_lost;
        let take_rate = if arrived > 0 {
            fog.jobs_degraded as f64 / arrived as f64
        } else {
            0.0
        };
        // Degraded jobs answer with the edge exit; the rest keep the
        // trained policy's accuracy.
        let eff_acc = acc_policy * (1.0 - take_rate) + acc_edge * take_rate;
        let tag = format!("i{}", (x * 10.0) as u32);
        json.det_u(&format!("{tag}_fog_lost"), fog.jobs_lost as u64)
            .det_u(&format!("{tag}_fog_degraded"), fog.jobs_degraded as u64)
            .det_u(&format!("{tag}_delivered"), audit.delivered as u64)
            .det_u(&format!("{tag}_stream_lost"), audit.lost as u64)
            .det_u(
                &format!("{tag}_under_repl"),
                dfs.final_stats.under_replicated as u64,
            )
            .det_f(&format!("{tag}_eff_accuracy"), eff_acc);
        rows.push(vec![
            f1(x),
            f3(fog.p99_latency_s * 1e3),
            fog.jobs_rerouted.to_string(),
            fog.jobs_lost.to_string(),
            fog.jobs_degraded.to_string(),
            f3(fog.recovery_time_s),
            f3(take_rate),
            f3(eff_acc),
            audit.delivered.to_string(),
            audit.duplicates.to_string(),
            audit.lost.to_string(),
            retries.to_string(),
            f3(dfs.mttr_mean_s),
            dfs.final_stats.under_replicated.to_string(),
        ]);
    }
    table(
        &[
            "intensity",
            "fog_p99_ms",
            "rerouted",
            "lost",
            "degraded",
            "recovery_s",
            "edge_take_rate",
            "eff_accuracy",
            "delivered",
            "dups",
            "stream_lost",
            "retries",
            "dfs_mttr_s",
            "under_repl",
        ],
        &rows,
    );
    println!(
        "\npolicy accuracy {} vs. forced edge exit {} — the gap is what \
         graceful degradation trades for availability under partition",
        f3(acc_policy),
        f3(acc_edge),
    );
    json.det_f("policy_accuracy", acc_policy)
        .det_f("edge_exit_accuracy", acc_edge)
        .measured("figure_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let jobs = if quick() { 60 } else { 200 };
    c.bench_function("e16/fog_clean_run", |b| {
        b.iter(|| std::hint::black_box(fog_run(0.0, jobs)))
    });
    c.bench_function("e16/fog_faulted_run", |b| {
        b.iter(|| std::hint::black_box(fog_run(1.0, jobs)))
    });
    let sends = if quick() { 120 } else { 500 };
    c.bench_function("e16/stream_retry_run", |b| {
        b.iter(|| std::hint::black_box(stream_run(1.0, sends)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
