//! E18 (observability): causal tracing and deterministic SLO alerting.
//!
//! A trace you cannot trust is worse than no trace: this bench drives the
//! serving tier through a clean run and a fault+overload run, assembles
//! the causal span forest each produced, and holds the SLO engine to the
//! paging contract — the degraded run **must** fire at least one
//! burn-rate alert and the clean run **must** fire none. The regenerated
//! table shows per-rule compliance side by side, plus the p50/p99/max
//! exemplar critical paths that explain *where* the degraded latency
//! went.
//!
//! Everything is seeded and in sim-time, so the alert report and every
//! exemplar trace id print identically on every run and thread count.
//! Set `E18_QUICK=1` for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f3, header, table, BenchJson};
use scfault::{FaultPlan, FaultSpec};
use scfog::{FogSimulator, Placement, Topology, Workload};
use scneural::layers::{Dense, Relu};
use scneural::net::Sequential;
use scobserve::{chrome_trace, evaluate, folded_stacks, AlertReport, SloRule, TraceAnalysis};
use scserve::{ArrivalMode, ServeConfig, Server, WorkloadConfig, WorkloadGen};
use sctelemetry::Telemetry;
use simclock::SimDuration;

const SEED: u64 = 42;
const SERVICE_RATE: f64 = 2_000.0;
const LATENCY_BOUND_S: f64 = 0.05;

fn quick() -> bool {
    scbench::quick("e18")
}

fn model() -> Sequential {
    Sequential::new()
        .with(Dense::new(8, 32, 41))
        .with(Relu::new())
        .with(Dense::new(32, 4, 42))
}

/// Records a serving run (at `rate` req/s) and a fog run (faulted or
/// not) into one recorder, with full causal tracing.
fn record_stack(
    rate: f64,
    faulted: bool,
    requests: usize,
    jobs: usize,
) -> std::sync::Arc<Telemetry> {
    let telemetry = Telemetry::shared();

    let mut server = Server::new(ServeConfig {
        service_rate: SERVICE_RATE,
        queue_capacity: 64,
        rate_per_s: 1e6,
        burst: 1e4,
        ..ServeConfig::default()
    })
    .with_model(model())
    .with_telemetry(telemetry.handle())
    .with_trace_seed(SEED);
    WorkloadGen::new(WorkloadConfig {
        seed: SEED,
        requests,
        write_fraction: 0.02,
        mode: ArrivalMode::OpenLoop { rate_per_s: rate },
        ..WorkloadConfig::default()
    })
    .run(&mut server);

    let sim = FogSimulator::new(Topology::four_tier(4, 2, 1));
    let w = Workload::with_escalation(jobs, 100_000, 10.0, 0.3, SEED);
    let mut runner = sim
        .runner(&w)
        .placement(Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        })
        .telemetry(telemetry.handle())
        .trace_seed(SEED);
    let plan;
    if faulted {
        plan = FaultPlan::generate(
            &FaultSpec::new(SimDuration::from_secs(12), 4).intensity(3.0),
            SEED,
        );
        runner = runner.faults(&plan);
    }
    runner.run();

    telemetry
}

fn rules() -> Vec<SloRule> {
    vec![
        SloRule::availability("serve_availability", 0.99),
        SloRule::latency("serve_latency", 0.99, LATENCY_BOUND_S).with_anomaly_z(4.0),
        SloRule::loss("fog_jobs", 0.99),
    ]
}

fn alert_report(t: &Telemetry) -> (TraceAnalysis, AlertReport) {
    let analysis = TraceAnalysis::new(t);
    let streams = vec![
        analysis.availability("request/"),
        analysis.latency("request/", LATENCY_BOUND_S),
        analysis.availability("job/"),
    ];
    let report = evaluate(&rules(), &streams);
    (analysis, report)
}

fn regenerate_figure() {
    header(
        "E18",
        "observability",
        "Causal traces, exemplar critical paths, and multi-window burn-rate alerting",
    );
    let requests = if quick() { 1_000 } else { 4_000 };
    let jobs = if quick() { 60 } else { 120 };
    let mut json = BenchJson::new("e18", quick());
    let wall = std::time::Instant::now();

    let clean = record_stack(SERVICE_RATE * 0.5, false, requests, jobs);
    let degraded = record_stack(SERVICE_RATE * 4.0, true, requests, jobs);
    let (clean_analysis, clean_report) = alert_report(&clean);
    let (degraded_analysis, degraded_report) = alert_report(&degraded);

    let mut rows = Vec::new();
    for (c, d) in clean_report
        .compliance
        .iter()
        .zip(&degraded_report.compliance)
    {
        rows.push(vec![
            c.0.clone(),
            c.1.to_string(),
            f3(c.2),
            f3(d.2),
            c.3.to_string(),
            d.3.to_string(),
        ]);
    }
    table(
        &[
            "slo_rule",
            "kind",
            "clean_good_frac",
            "degraded_good_frac",
            "clean_samples",
            "degraded_samples",
        ],
        &rows,
    );

    println!(
        "\nclean run: {} traces, {} alerts | degraded run: {} traces, {} alerts",
        clean_analysis.forest.len(),
        clean_report.len(),
        degraded_analysis.forest.len(),
        degraded_report.len(),
    );
    for a in &degraded_report.alerts {
        println!(
            "  ALERT {} at={} burn_short={} burn_long={} {}",
            a.rule,
            a.at,
            f3(a.burn_short),
            f3(a.burn_long),
            a.detail
        );
    }
    println!("\ndegraded-run exemplar critical paths (request/*):");
    for (ex, path) in degraded_analysis.exemplar_paths("request/") {
        println!(
            "  {}: trace={} latency={}s",
            ex.label,
            ex.trace.as_hex(),
            f3(ex.value)
        );
        if let Some(p) = path {
            println!("    {}", p.render());
        }
    }
    let events = chrome_trace(&degraded_analysis.forest)["traceEvents"]
        .as_array()
        .map(Vec::len)
        .unwrap_or(0);
    println!(
        "\nexports: {} Chrome-trace events, {} flamegraph frames",
        events,
        folded_stacks(&degraded_analysis.forest).lines().count(),
    );

    // The paging contract this experiment exists to pin.
    assert!(
        clean_report.is_empty(),
        "clean baseline fired alerts: {}",
        clean_report.render()
    );
    assert!(
        degraded_report
            .alerts
            .iter()
            .any(|a| a.kind == scobserve::AlertKind::BurnRate),
        "fault+overload run failed to fire a burn-rate alert:\n{}",
        degraded_report.render()
    );
    json.det_u("clean_traces", clean_analysis.forest.len() as u64)
        .det_u("clean_alerts", clean_report.len() as u64)
        .det_u("degraded_traces", degraded_analysis.forest.len() as u64)
        .det_u("degraded_alerts", degraded_report.len() as u64)
        .det_u("chrome_trace_events", events as u64)
        .measured("figure_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
}

fn bench(c: &mut Criterion) {
    regenerate_figure();

    let requests = if quick() { 600 } else { 2_000 };
    let jobs = if quick() { 40 } else { 80 };
    let degraded = record_stack(SERVICE_RATE * 4.0, true, requests, jobs);

    c.bench_function("e18/forest_assembly_and_alerting", |b| {
        b.iter(|| std::hint::black_box(alert_report(&degraded)))
    });

    let (analysis, _) = alert_report(&degraded);
    c.bench_function("e18/chrome_trace_export", |b| {
        b.iter(|| std::hint::black_box(chrome_trace(&analysis.forest)))
    });
    c.bench_function("e18/folded_stack_export", |b| {
        b.iter(|| std::hint::black_box(folded_stacks(&analysis.forest)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
