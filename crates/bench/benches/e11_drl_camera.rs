//! E11 (§III-D): DRL smart camera control — DQN vs tabular Q-learning vs
//! random on the pan/zoom tracking environment. Regenerates the learning
//! curves and greedy-evaluation table; measures action-selection latency.

use criterion::{criterion_group, criterion_main, Criterion};
use scbench::{f1, header, table, BenchJson};
use scdrl::{
    run_episode, Agent, CameraControlEnv, DqnAgent, DqnConfig, Environment, RandomAgent,
    TabularQAgent,
};

fn evaluate<A: Agent>(env: &mut CameraControlEnv, agent: &mut A, episodes: usize) -> f64 {
    (0..episodes)
        .map(|_| run_episode(env, agent, false))
        .sum::<f64>()
        / episodes as f64
}

fn regenerate_figure() -> DqnAgent {
    header(
        "E11",
        "§III-D",
        "Smart camera control: DQN vs tabular Q vs random (reward = incident kept in view, zoom-weighted)",
    );
    // Identical but independent environments: agents see the same episode
    // distribution without consuming each other's RNG draws.
    let mut env_dqn = CameraControlEnv::new(10, 8, 25, 40);
    let mut env_ddqn = CameraControlEnv::new(10, 8, 25, 40);
    let mut env_tab = CameraControlEnv::new(10, 8, 25, 40);
    let mut env_rnd = CameraControlEnv::new(10, 8, 25, 40);
    let env = &mut env_dqn; // state/action dims are shared

    let (sd, na) = (env.state_dim(), env.num_actions());
    let mut dqn = DqnAgent::new(
        sd,
        na,
        DqnConfig {
            epsilon_decay: 0.995,
            ..DqnConfig::default()
        },
        41,
    );
    let mut ddqn = DqnAgent::new(
        sd,
        na,
        DqnConfig {
            epsilon_decay: 0.995,
            double_dqn: true,
            ..DqnConfig::default()
        },
        41,
    );
    let mut tabular = TabularQAgent::new(na, 4, 42);
    let mut random = RandomAgent::new(na, 43);

    let quick = scbench::quick("e11");
    let blocks = if quick { 2 } else { 5 };
    let wall = std::time::Instant::now();
    println!("training curves (mean return per 20-episode block):");
    let mut rows = Vec::new();
    for block in 0..blocks {
        let dqn_mean: f64 = (0..20)
            .map(|_| run_episode(&mut env_dqn, &mut dqn, true))
            .sum::<f64>()
            / 20.0;
        let ddqn_mean: f64 = (0..20)
            .map(|_| run_episode(&mut env_ddqn, &mut ddqn, true))
            .sum::<f64>()
            / 20.0;
        let tab_mean: f64 = (0..20)
            .map(|_| run_episode(&mut env_tab, &mut tabular, true))
            .sum::<f64>()
            / 20.0;
        let rnd_mean: f64 = (0..20)
            .map(|_| run_episode(&mut env_rnd, &mut random, false))
            .sum::<f64>()
            / 20.0;
        rows.push(vec![
            format!("{}-{}", block * 20, block * 20 + 19),
            f1(dqn_mean),
            f1(ddqn_mean),
            f1(tab_mean),
            f1(rnd_mean),
        ]);
    }
    table(
        &["episodes", "dqn", "double_dqn", "tabular_q", "random"],
        &rows,
    );

    // Greedy evaluation.
    let dqn_eval = evaluate(&mut env_dqn, &mut dqn, 20);
    let ddqn_eval = evaluate(&mut env_ddqn, &mut ddqn, 20);
    let tab_eval = evaluate(&mut env_tab, &mut tabular, 20);
    let rnd_eval = evaluate(&mut env_rnd, &mut random, 20);
    println!("\ngreedy-ish evaluation over 20 episodes:");
    table(
        &["agent", "mean_return"],
        &[
            vec!["dqn".into(), f1(dqn_eval)],
            vec!["double_dqn".into(), f1(ddqn_eval)],
            vec!["tabular_q".into(), f1(tab_eval)],
            vec!["random".into(), f1(rnd_eval)],
        ],
    );
    let mut json = BenchJson::new("e11", quick);
    json.det_f("dqn_eval_return", dqn_eval)
        .det_f("double_dqn_eval_return", ddqn_eval)
        .det_f("tabular_eval_return", tab_eval)
        .det_f("random_eval_return", rnd_eval)
        .measured("training_wall_ms", wall.elapsed().as_secs_f64() * 1e3);
    json.write();
    dqn
}

fn bench(c: &mut Criterion) {
    let mut dqn = regenerate_figure();
    let mut env = CameraControlEnv::new(10, 8, 25, 44);
    let state = env.reset();
    c.bench_function("e11/dqn_act", |b| {
        b.iter(|| dqn.act(std::hint::black_box(&state)))
    });
    c.bench_function("e11/dqn_episode_with_learning", |b| {
        b.iter(|| run_episode(&mut env, &mut dqn, true))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
