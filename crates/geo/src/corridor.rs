//! Interstate-highway corridors as polylines.
//!
//! The DOTD cameras the paper connects to (§II-A1) are "installed along the
//! major interstate highways in Louisiana". A [`Corridor`] models one such
//! highway segment as a polyline; cameras are then placed at regular or
//! randomized mileposts along it.

use serde::{Deserialize, Serialize};

use crate::point::GeoPoint;

/// A named polyline highway corridor (e.g. "I-10 through Baton Rouge").
///
/// # Examples
///
/// ```
/// use scgeo::corridor::Corridor;
/// use scgeo::GeoPoint;
///
/// let c = Corridor::new(
///     "I-110",
///     vec![GeoPoint::new(30.44, -91.18), GeoPoint::new(30.52, -91.16)],
/// );
/// assert!(c.length_m() > 8_000.0);
/// let midpoint = c.point_at(c.length_m() / 2.0);
/// assert!(midpoint.lat() > 30.44 && midpoint.lat() < 30.52);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corridor {
    name: String,
    waypoints: Vec<GeoPoint>,
    cumulative_m: Vec<f64>,
}

impl Corridor {
    /// Creates a corridor from an ordered list of waypoints.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two waypoints are given.
    pub fn new(name: impl Into<String>, waypoints: Vec<GeoPoint>) -> Self {
        assert!(
            waypoints.len() >= 2,
            "a corridor needs at least two waypoints"
        );
        let mut cumulative_m = Vec::with_capacity(waypoints.len());
        let mut total = 0.0;
        cumulative_m.push(0.0);
        for w in waypoints.windows(2) {
            total += w[0].haversine_m(w[1]);
            cumulative_m.push(total);
        }
        Corridor {
            name: name.into(),
            waypoints,
            cumulative_m,
        }
    }

    /// The corridor's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The ordered waypoints.
    pub fn waypoints(&self) -> &[GeoPoint] {
        &self.waypoints
    }

    /// Total polyline length in meters.
    pub fn length_m(&self) -> f64 {
        *self.cumulative_m.last().expect("non-empty by construction")
    }

    /// The point at `distance_m` meters from the start, clamped to the ends.
    pub fn point_at(&self, distance_m: f64) -> GeoPoint {
        let d = distance_m.clamp(0.0, self.length_m());
        // Find the segment containing d.
        let seg = match self.cumulative_m.binary_search_by(|c| c.total_cmp(&d)) {
            Ok(i) => i.min(self.waypoints.len() - 2),
            Err(i) => i.saturating_sub(1).min(self.waypoints.len() - 2),
        };
        let seg_start = self.cumulative_m[seg];
        let seg_len = self.cumulative_m[seg + 1] - seg_start;
        let t = if seg_len > 0.0 {
            (d - seg_start) / seg_len
        } else {
            0.0
        };
        self.waypoints[seg].lerp(self.waypoints[seg + 1], t)
    }

    /// Evenly spaced points along the corridor (including both endpoints).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sample(&self, n: usize) -> Vec<GeoPoint> {
        assert!(n >= 2, "need at least two sample points");
        let step = self.length_m() / (n - 1) as f64;
        (0..n).map(|i| self.point_at(i as f64 * step)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i10_stub() -> Corridor {
        Corridor::new(
            "I-10",
            vec![
                GeoPoint::new(30.40, -91.30),
                GeoPoint::new(30.45, -91.18),
                GeoPoint::new(30.47, -91.00),
            ],
        )
    }

    #[test]
    fn length_is_sum_of_segments() {
        let c = i10_stub();
        let w = c.waypoints();
        let manual = w[0].haversine_m(w[1]) + w[1].haversine_m(w[2]);
        assert!((c.length_m() - manual).abs() < 1e-6);
    }

    #[test]
    fn point_at_clamps() {
        let c = i10_stub();
        assert_eq!(c.point_at(-100.0), c.waypoints()[0]);
        assert_eq!(
            c.point_at(c.length_m() + 100.0),
            *c.waypoints().last().unwrap()
        );
    }

    #[test]
    fn point_at_interpolates_monotonically() {
        let c = i10_stub();
        let samples = c.sample(20);
        // Longitude increases monotonically along this eastbound stub.
        for w in samples.windows(2) {
            assert!(w[1].lon() >= w[0].lon() - 1e-9);
        }
    }

    #[test]
    fn sample_endpoints_match() {
        let c = i10_stub();
        let s = c.sample(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[0], c.waypoints()[0]);
        let last = *s.last().unwrap();
        let end = *c.waypoints().last().unwrap();
        assert!(last.haversine_m(end) < 1.0);
    }

    #[test]
    fn sample_spacing_uniform() {
        let c = i10_stub();
        let s = c.sample(11);
        let expected = c.length_m() / 10.0;
        for w in s.windows(2) {
            let d = w[0].haversine_m(w[1]);
            // Polyline kinks can shorten neighbour distances slightly.
            assert!(d <= expected * 1.01 + 1.0, "spacing {d} vs {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "two waypoints")]
    fn rejects_single_waypoint() {
        let _ = Corridor::new("bad", vec![GeoPoint::new(30.0, -91.0)]);
    }
}
