//! # scgeo — geospatial substrate
//!
//! Geospatial primitives backing the smart-city cyberinfrastructure:
//!
//! - [`GeoPoint`] / [`BoundingBox`]: WGS-84 coordinates with haversine
//!   distances.
//! - [`GridIndex`]: a uniform-cell spatial index supporting range and
//!   nearest-neighbour queries (the paper's "lightweight indexing ... for big
//!   spatial data" reference \[18\]).
//! - [`corridor`]: polyline interstate-highway corridors.
//! - [`cameras`]: the DOTD-style registry of >200 traffic cameras across nine
//!   Louisiana cities (paper §II-A1, Fig. 2).
//! - [`Geofence`]: point-in-polygon and radius fences for incident filtering.
//!
//! # Examples
//!
//! ```
//! use scgeo::cameras::CameraNetwork;
//!
//! let net = CameraNetwork::louisiana_default(42);
//! assert!(net.len() > 200, "paper: more than 200 DOTD cameras");
//! assert_eq!(net.cities().len(), 9);
//! ```

pub mod cameras;
pub mod corridor;
mod geofence;
mod grid;
mod point;

pub use geofence::Geofence;
pub use grid::GridIndex;
pub use point::{BoundingBox, GeoPoint};
