//! A uniform-cell spatial index.

use std::collections::HashMap;

use crate::point::{BoundingBox, GeoPoint};

/// A spatial index over items with geographic positions, built on a uniform
/// grid of cells roughly `cell_m` meters on a side.
///
/// Supports insertion, radius ("range") queries, and k-nearest-neighbour
/// queries. This is the in-memory analogue of the paper's lightweight spatial
/// indexing service (§II-C2, ref. \[18\]): simple, predictable, and fast for
/// the city-scale densities the cyberinfrastructure deals with.
///
/// # Examples
///
/// ```
/// use scgeo::{GridIndex, GeoPoint};
///
/// let mut idx = GridIndex::new(500.0);
/// idx.insert(GeoPoint::new(30.45, -91.18), "camera-1");
/// idx.insert(GeoPoint::new(30.46, -91.19), "camera-2");
/// let hits = idx.within_radius(GeoPoint::new(30.45, -91.18), 200.0);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(*hits[0].1, "camera-1");
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    cell_deg: f64,
    cells: HashMap<(i32, i32), Vec<usize>>,
    items: Vec<(GeoPoint, T)>,
}

impl<T> GridIndex<T> {
    /// Creates an index with cells roughly `cell_m` meters on a side.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not positive.
    pub fn new(cell_m: f64) -> Self {
        assert!(cell_m > 0.0, "cell size must be positive");
        // 1 degree of latitude ≈ 111.32 km.
        GridIndex {
            cell_deg: cell_m / 111_320.0,
            cells: HashMap::new(),
            items: Vec::new(),
        }
    }

    fn cell_of(&self, p: GeoPoint) -> (i32, i32) {
        (
            (p.lat() / self.cell_deg).floor() as i32,
            (p.lon() / self.cell_deg).floor() as i32,
        )
    }

    /// Inserts an item at `pos`.
    pub fn insert(&mut self, pos: GeoPoint, item: T) {
        let idx = self.items.len();
        self.items.push((pos, item));
        self.cells.entry(self.cell_of(pos)).or_default().push(idx);
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over all `(position, item)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (GeoPoint, &T)> {
        self.items.iter().map(|(p, t)| (*p, t))
    }

    /// All items within `radius_m` meters of `center`, sorted nearest-first.
    pub fn within_radius(&self, center: GeoPoint, radius_m: f64) -> Vec<(GeoPoint, &T)> {
        let span = (radius_m / 111_320.0 / self.cell_deg).ceil() as i32 + 1;
        let (cr, cc) = self.cell_of(center);
        let mut hits: Vec<(f64, usize)> = Vec::new();
        for dr in -span..=span {
            for dc in -span..=span {
                if let Some(bucket) = self.cells.get(&(cr + dr, cc + dc)) {
                    for &i in bucket {
                        let d = self.items[i].0.haversine_m(center);
                        if d <= radius_m {
                            hits.push((d, i));
                        }
                    }
                }
            }
        }
        hits.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        hits.into_iter()
            .map(|(_, i)| (self.items[i].0, &self.items[i].1))
            .collect()
    }

    /// All items whose position lies inside `bbox`.
    pub fn within_bbox(&self, bbox: &BoundingBox) -> Vec<(GeoPoint, &T)> {
        let lo = self.cell_of(bbox.min());
        let hi = self.cell_of(bbox.max());
        let mut out = Vec::new();
        for r in lo.0..=hi.0 {
            for c in lo.1..=hi.1 {
                if let Some(bucket) = self.cells.get(&(r, c)) {
                    for &i in bucket {
                        if bbox.contains(self.items[i].0) {
                            out.push((self.items[i].0, &self.items[i].1));
                        }
                    }
                }
            }
        }
        out
    }

    /// The `k` nearest items to `query`, sorted nearest-first.
    ///
    /// Expands the search ring until `k` items are found (or the index is
    /// exhausted), then verifies with exact distances.
    pub fn nearest(&self, query: GeoPoint, k: usize) -> Vec<(GeoPoint, &T)> {
        if k == 0 || self.items.is_empty() {
            return Vec::new();
        }
        // Expanding-radius search: double the radius until enough hits.
        let mut radius = self.cell_deg * 111_320.0;
        loop {
            let hits = self.within_radius(query, radius);
            if hits.len() >= k.min(self.items.len()) {
                return hits.into_iter().take(k).collect();
            }
            radius *= 2.0;
            if radius > 45_000_000.0 {
                // Larger than Earth's circumference: return everything sorted.
                let mut all: Vec<(f64, usize)> = self
                    .items
                    .iter()
                    .enumerate()
                    .map(|(i, (p, _))| (p.haversine_m(query), i))
                    .collect();
                all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                return all
                    .into_iter()
                    .take(k)
                    .map(|(_, i)| (self.items[i].0, &self.items[i].1))
                    .collect();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_with_line(n: usize) -> GridIndex<usize> {
        // Points spaced ~1 km apart going east from Baton Rouge.
        let mut g = GridIndex::new(500.0);
        let base = GeoPoint::new(30.45, -91.18);
        for i in 0..n {
            g.insert(base.offset_m(0.0, i as f64 * 1000.0), i);
        }
        g
    }

    #[test]
    fn radius_query_filters_by_distance() {
        let g = grid_with_line(10);
        let base = GeoPoint::new(30.45, -91.18);
        let hits = g.within_radius(base, 2_500.0);
        let ids: Vec<usize> = hits.iter().map(|(_, &i)| i).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn radius_query_sorted_nearest_first() {
        let g = grid_with_line(10);
        let probe = GeoPoint::new(30.45, -91.18).offset_m(0.0, 3_100.0);
        let hits = g.within_radius(probe, 5_000.0);
        let dists: Vec<f64> = hits.iter().map(|(p, _)| p.haversine_m(probe)).collect();
        for w in dists.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let g = grid_with_line(50);
        let probe = GeoPoint::new(30.46, -91.10);
        let knn: Vec<usize> = g.nearest(probe, 5).iter().map(|(_, &i)| i).collect();

        let mut brute: Vec<(f64, usize)> =
            g.iter().map(|(p, &i)| (p.haversine_m(probe), i)).collect();
        brute.sort_by(|a, b| a.0.total_cmp(&b.0));
        let expect: Vec<usize> = brute.into_iter().take(5).map(|(_, i)| i).collect();
        assert_eq!(knn, expect);
    }

    #[test]
    fn nearest_k_larger_than_items() {
        let g = grid_with_line(3);
        let all = g.nearest(GeoPoint::new(30.0, -91.0), 10);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn nearest_zero_k() {
        let g = grid_with_line(3);
        assert!(g.nearest(GeoPoint::new(30.0, -91.0), 0).is_empty());
    }

    #[test]
    fn bbox_query() {
        let g = grid_with_line(10);
        let base = GeoPoint::new(30.45, -91.18);
        let bbox = BoundingBox::new(base.offset_m(-100.0, -100.0), base.offset_m(100.0, 3_500.0));
        let ids: Vec<usize> = g.within_bbox(&bbox).iter().map(|(_, &i)| i).collect();
        assert_eq!(ids.len(), 4); // items 0..=3
        for id in 0..4 {
            assert!(ids.contains(&id));
        }
    }

    #[test]
    fn empty_index_queries() {
        let g: GridIndex<u8> = GridIndex::new(100.0);
        assert!(g.is_empty());
        assert!(g.within_radius(GeoPoint::new(0.0, 0.0), 1e6).is_empty());
        assert!(g.nearest(GeoPoint::new(0.0, 0.0), 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cell_size_panics() {
        let _: GridIndex<u8> = GridIndex::new(0.0);
    }
}
