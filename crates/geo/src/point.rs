//! Coordinates and distances.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Mean Earth radius in meters (IUGG).
pub(crate) const EARTH_RADIUS_M: f64 = 6_371_008.8;

/// A WGS-84 latitude/longitude point.
///
/// # Examples
///
/// ```
/// use scgeo::GeoPoint;
/// let baton_rouge = GeoPoint::new(30.4515, -91.1871);
/// let new_orleans = GeoPoint::new(29.9511, -90.0715);
/// let km = baton_rouge.haversine_m(new_orleans) / 1000.0;
/// assert!((km - 126.0).abs() < 10.0, "BR to NOLA is ~126 km, got {km}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    lat: f64,
    lon: f64,
}

impl GeoPoint {
    /// Creates a point.
    ///
    /// # Panics
    ///
    /// Panics if the latitude is outside `[-90, 90]` or the longitude is
    /// outside `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        GeoPoint { lat, lon }
    }

    /// Latitude in degrees.
    pub fn lat(&self) -> f64 {
        self.lat
    }

    /// Longitude in degrees.
    pub fn lon(&self) -> f64 {
        self.lon
    }

    /// Great-circle distance to `other` in meters (haversine formula).
    pub fn haversine_m(&self, other: GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Linear interpolation between `self` and `other` at parameter
    /// `t ∈ [0, 1]`. Adequate for the short (< 100 km) corridor segments used
    /// here; not a true geodesic.
    pub fn lerp(&self, other: GeoPoint, t: f64) -> GeoPoint {
        let t = t.clamp(0.0, 1.0);
        GeoPoint {
            lat: self.lat + (other.lat - self.lat) * t,
            lon: self.lon + (other.lon - self.lon) * t,
        }
    }

    /// Returns a point offset by the given meters north and east (small-angle
    /// approximation, fine for city scales).
    pub fn offset_m(&self, north_m: f64, east_m: f64) -> GeoPoint {
        let dlat = north_m / EARTH_RADIUS_M * 180.0 / std::f64::consts::PI;
        let dlon =
            east_m / (EARTH_RADIUS_M * self.lat.to_radians().cos()) * 180.0 / std::f64::consts::PI;
        GeoPoint::new(
            (self.lat + dlat).clamp(-90.0, 90.0),
            (self.lon + dlon).clamp(-180.0, 180.0),
        )
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

/// An axis-aligned latitude/longitude rectangle.
///
/// # Examples
///
/// ```
/// use scgeo::{BoundingBox, GeoPoint};
/// let bbox = BoundingBox::new(GeoPoint::new(30.0, -92.0), GeoPoint::new(31.0, -90.0));
/// assert!(bbox.contains(GeoPoint::new(30.5, -91.0)));
/// assert!(!bbox.contains(GeoPoint::new(29.0, -91.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    min: GeoPoint,
    max: GeoPoint,
}

impl BoundingBox {
    /// Creates a box from its south-west and north-east corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not south-west of (or equal to) `max`.
    pub fn new(min: GeoPoint, max: GeoPoint) -> Self {
        assert!(
            min.lat() <= max.lat() && min.lon() <= max.lon(),
            "min corner must be south-west of max corner"
        );
        BoundingBox { min, max }
    }

    /// The smallest box containing every point in `points`.
    ///
    /// Returns `None` for an empty iterator.
    pub fn enclosing<I: IntoIterator<Item = GeoPoint>>(points: I) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut min_lat = first.lat();
        let mut max_lat = first.lat();
        let mut min_lon = first.lon();
        let mut max_lon = first.lon();
        for p in iter {
            min_lat = min_lat.min(p.lat());
            max_lat = max_lat.max(p.lat());
            min_lon = min_lon.min(p.lon());
            max_lon = max_lon.max(p.lon());
        }
        Some(BoundingBox::new(
            GeoPoint::new(min_lat, min_lon),
            GeoPoint::new(max_lat, max_lon),
        ))
    }

    /// South-west corner.
    pub fn min(&self) -> GeoPoint {
        self.min
    }

    /// North-east corner.
    pub fn max(&self) -> GeoPoint {
        self.max
    }

    /// Whether `p` lies inside (inclusive).
    pub fn contains(&self, p: GeoPoint) -> bool {
        p.lat() >= self.min.lat()
            && p.lat() <= self.max.lat()
            && p.lon() >= self.min.lon()
            && p.lon() <= self.max.lon()
    }

    /// Expands the box by roughly `margin_m` meters on every side.
    pub fn expanded_m(&self, margin_m: f64) -> BoundingBox {
        BoundingBox::new(
            self.min.offset_m(-margin_m, -margin_m),
            self.max.offset_m(margin_m, margin_m),
        )
    }

    /// Center of the box.
    pub fn center(&self) -> GeoPoint {
        self.min.lerp(self.max, 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_zero_for_same_point() {
        let p = GeoPoint::new(30.45, -91.18);
        assert!(p.haversine_m(p) < 1e-6);
    }

    #[test]
    fn haversine_symmetric() {
        let a = GeoPoint::new(30.45, -91.18);
        let b = GeoPoint::new(29.95, -90.07);
        assert!((a.haversine_m(b) - b.haversine_m(a)).abs() < 1e-6);
    }

    #[test]
    fn haversine_known_distance() {
        // Baton Rouge to Shreveport: roughly 320 km straight line.
        let br = GeoPoint::new(30.4515, -91.1871);
        let shv = GeoPoint::new(32.5252, -93.7502);
        let km = br.haversine_m(shv) / 1000.0;
        assert!((km - 340.0).abs() < 30.0, "got {km}");
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn rejects_bad_latitude() {
        let _ = GeoPoint::new(95.0, 0.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = GeoPoint::new(30.0, -91.0);
        let b = GeoPoint::new(31.0, -90.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let mid = a.lerp(b, 0.5);
        assert!((mid.lat() - 30.5).abs() < 1e-12);
    }

    #[test]
    fn offset_roundtrip_distance() {
        let p = GeoPoint::new(30.45, -91.18);
        let q = p.offset_m(1000.0, 0.0);
        assert!((p.haversine_m(q) - 1000.0).abs() < 5.0);
        let r = p.offset_m(0.0, 1000.0);
        assert!((p.haversine_m(r) - 1000.0).abs() < 5.0);
    }

    #[test]
    fn bbox_contains_and_center() {
        let bbox = BoundingBox::new(GeoPoint::new(30.0, -92.0), GeoPoint::new(31.0, -90.0));
        assert!(bbox.contains(bbox.center()));
        assert!(bbox.contains(bbox.min()));
        assert!(bbox.contains(bbox.max()));
        assert!(!bbox.contains(GeoPoint::new(31.5, -91.0)));
    }

    #[test]
    fn bbox_enclosing() {
        let pts = vec![
            GeoPoint::new(30.1, -91.5),
            GeoPoint::new(30.9, -90.2),
            GeoPoint::new(30.4, -91.0),
        ];
        let bbox = BoundingBox::enclosing(pts.clone()).unwrap();
        for p in pts {
            assert!(bbox.contains(p));
        }
        assert!(BoundingBox::enclosing(std::iter::empty()).is_none());
    }

    #[test]
    fn bbox_expand_contains_original() {
        let bbox = BoundingBox::new(GeoPoint::new(30.0, -92.0), GeoPoint::new(31.0, -90.0));
        let big = bbox.expanded_m(5_000.0);
        assert!(big.contains(bbox.min()) && big.contains(bbox.max()));
        assert!(big.min().lat() < bbox.min().lat());
    }
}
