//! The DOTD-style traffic camera registry (paper §II-A1, Fig. 2).
//!
//! The paper: *"By connecting to the DOTD network, our cyberinfrastructure can
//! access more than 200 cameras, which constantly provide live feeds from the
//! highways across the state of Louisiana"*, covering "New Orleans, Baton
//! Rouge, Houma, Shreveport, Lafayette, North Shore, Lake Charles, Monroe, and
//! Alexandria". This module builds a synthetic registry with exactly that
//! shape: nine city corridors, >200 cameras, each camera addressable and
//! spatially indexed.

use serde::{Deserialize, Serialize};
use simclock::SeededRng;

use crate::corridor::Corridor;
use crate::grid::GridIndex;
use crate::point::{BoundingBox, GeoPoint};

/// Identifier of a camera in a [`CameraNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CameraId(pub u32);

impl std::fmt::Display for CameraId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cam-{:04}", self.0)
    }
}

/// A single roadside traffic/surveillance camera.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Camera {
    /// Stable identifier.
    pub id: CameraId,
    /// City whose corridor the camera sits on.
    pub city: String,
    /// Highway corridor name (e.g. "I-10").
    pub corridor: String,
    /// Camera position.
    pub position: GeoPoint,
    /// Nominal frames per second of the live feed.
    pub fps: u32,
    /// Horizontal field of view radius in meters covered by the camera.
    pub coverage_m: f64,
}

/// The registry of all cameras, with a spatial index for nearest-camera and
/// coverage queries.
///
/// # Examples
///
/// ```
/// use scgeo::cameras::CameraNetwork;
/// use scgeo::GeoPoint;
///
/// let net = CameraNetwork::louisiana_default(7);
/// let nearest = net.nearest(GeoPoint::new(30.4515, -91.1871), 3);
/// assert_eq!(nearest.len(), 3);
/// assert_eq!(nearest[0].city, "Baton Rouge");
/// ```
#[derive(Debug, Clone)]
pub struct CameraNetwork {
    cameras: Vec<Camera>,
    index: GridIndex<CameraId>,
    cities: Vec<String>,
}

/// Per-city camera statistics produced by [`CameraNetwork::coverage_report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CityCoverage {
    /// City name.
    pub city: String,
    /// Number of cameras in this city.
    pub cameras: usize,
    /// Total corridor length instrumented, in kilometers.
    pub corridor_km: f64,
    /// Mean spacing between consecutive cameras, in meters.
    pub mean_spacing_m: f64,
}

/// The nine Louisiana cities named in §II-A1 with approximate anchor
/// coordinates and the interstates that pass through them.
fn louisiana_cities() -> Vec<(&'static str, GeoPoint, &'static str, f64)> {
    // (city, anchor, corridor name, corridor length in km)
    vec![
        (
            "New Orleans",
            GeoPoint::new(29.9511, -90.0715),
            "I-10",
            40.0,
        ),
        (
            "Baton Rouge",
            GeoPoint::new(30.4515, -91.1871),
            "I-10/I-110",
            45.0,
        ),
        ("Houma", GeoPoint::new(29.5958, -90.7195), "US-90", 20.0),
        ("Shreveport", GeoPoint::new(32.5252, -93.7502), "I-20", 35.0),
        ("Lafayette", GeoPoint::new(30.2241, -92.0198), "I-10", 30.0),
        (
            "North Shore",
            GeoPoint::new(30.4755, -90.1009),
            "I-12",
            30.0,
        ),
        (
            "Lake Charles",
            GeoPoint::new(30.2266, -93.2174),
            "I-10",
            25.0,
        ),
        ("Monroe", GeoPoint::new(32.5093, -92.1193), "I-20", 22.0),
        ("Alexandria", GeoPoint::new(31.3113, -92.4451), "I-49", 20.0),
    ]
}

impl CameraNetwork {
    /// Builds the default Louisiana network: nine city corridors instrumented
    /// densely enough to exceed the paper's ">200 cameras" total (the default
    /// yields ~240, jittered by `seed`).
    pub fn louisiana_default(seed: u64) -> Self {
        let mut rng = SeededRng::new(seed);
        let mut builder = CameraNetworkBuilder::new();
        for (city, anchor, corridor_name, km) in louisiana_cities() {
            // Corridor as a gently bent 3-point polyline through the anchor.
            let half = km * 500.0; // half length in meters
            let bend = rng.range_f64(-800.0, 800.0);
            let corridor = Corridor::new(
                corridor_name,
                vec![
                    anchor.offset_m(-bend, -half),
                    anchor,
                    anchor.offset_m(bend, half),
                ],
            );
            // Aim for one camera per ~1.1 km with jitter (dense enough that
            // the nine corridors together exceed the paper's 200-camera count).
            let n = ((km * 1000.0 / 1100.0).round() as usize).max(2);
            builder = builder.corridor(city, &corridor, n, &mut rng);
        }
        builder.build()
    }

    /// Number of cameras.
    pub fn len(&self) -> usize {
        self.cameras.len()
    }

    /// Whether the network has no cameras.
    pub fn is_empty(&self) -> bool {
        self.cameras.is_empty()
    }

    /// All cameras in id order.
    pub fn cameras(&self) -> &[Camera] {
        &self.cameras
    }

    /// Looks up a camera by id.
    pub fn get(&self, id: CameraId) -> Option<&Camera> {
        self.cameras.get(id.0 as usize)
    }

    /// Distinct city names, in first-seen order.
    pub fn cities(&self) -> &[String] {
        &self.cities
    }

    /// The `k` cameras nearest to `p`.
    pub fn nearest(&self, p: GeoPoint, k: usize) -> Vec<&Camera> {
        self.index
            .nearest(p, k)
            .into_iter()
            .map(|(_, id)| &self.cameras[id.0 as usize])
            .collect()
    }

    /// All cameras within `radius_m` of `p`, nearest first.
    pub fn within(&self, p: GeoPoint, radius_m: f64) -> Vec<&Camera> {
        self.index
            .within_radius(p, radius_m)
            .into_iter()
            .map(|(_, id)| &self.cameras[id.0 as usize])
            .collect()
    }

    /// Whether `p` is covered by at least one camera's field of view.
    pub fn covers(&self, p: GeoPoint) -> bool {
        self.index
            .within_radius(p, 5_000.0)
            .iter()
            .any(|(pos, id)| pos.haversine_m(p) <= self.cameras[id.0 as usize].coverage_m)
    }

    /// Bounding box enclosing the whole network.
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::enclosing(self.cameras.iter().map(|c| c.position))
    }

    /// Per-city coverage rows — the data behind the Fig. 2 map.
    pub fn coverage_report(&self) -> Vec<CityCoverage> {
        self.cities
            .iter()
            .map(|city| {
                let cams: Vec<&Camera> = self.cameras.iter().filter(|c| &c.city == city).collect();
                let mut positions: Vec<GeoPoint> = cams.iter().map(|c| c.position).collect();
                // Consecutive spacing along the corridor: order by the axis
                // the corridor actually spans (its dominant extent).
                let bbox = BoundingBox::enclosing(positions.iter().copied());
                let lon_major = bbox.is_none_or(|b| {
                    (b.max().lon() - b.min().lon()) >= (b.max().lat() - b.min().lat())
                });
                positions.sort_by(|a, b| {
                    if lon_major {
                        a.lon()
                            .total_cmp(&b.lon())
                            .then(a.lat().total_cmp(&b.lat()))
                    } else {
                        a.lat()
                            .total_cmp(&b.lat())
                            .then(a.lon().total_cmp(&b.lon()))
                    }
                });
                let spacing: Vec<f64> = positions
                    .windows(2)
                    .map(|w| w[0].haversine_m(w[1]))
                    .collect();
                let corridor_km = spacing.iter().sum::<f64>() / 1000.0;
                let mean_spacing_m = if spacing.is_empty() {
                    0.0
                } else {
                    spacing.iter().sum::<f64>() / spacing.len() as f64
                };
                CityCoverage {
                    city: city.clone(),
                    cameras: cams.len(),
                    corridor_km,
                    mean_spacing_m,
                }
            })
            .collect()
    }
}

/// Incremental builder for [`CameraNetwork`].
///
/// # Examples
///
/// ```
/// use scgeo::cameras::CameraNetworkBuilder;
/// use scgeo::corridor::Corridor;
/// use scgeo::GeoPoint;
/// use simclock::SeededRng;
///
/// let corridor = Corridor::new(
///     "I-10",
///     vec![GeoPoint::new(30.40, -91.30), GeoPoint::new(30.47, -91.00)],
/// );
/// let mut rng = SeededRng::new(1);
/// let net = CameraNetworkBuilder::new()
///     .corridor("Baton Rouge", &corridor, 12, &mut rng)
///     .build();
/// assert_eq!(net.len(), 12);
/// ```
#[derive(Debug, Default)]
pub struct CameraNetworkBuilder {
    cameras: Vec<Camera>,
    cities: Vec<String>,
}

impl CameraNetworkBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Places `n` cameras evenly (with positional jitter) along `corridor`,
    /// attributed to `city`.
    pub fn corridor(
        mut self,
        city: &str,
        corridor: &Corridor,
        n: usize,
        rng: &mut SeededRng,
    ) -> Self {
        if !self.cities.iter().any(|c| c == city) {
            self.cities.push(city.to_string());
        }
        let n = n.max(2);
        for p in corridor.sample(n) {
            let jitter_n = rng.range_f64(-60.0, 60.0);
            let jitter_e = rng.range_f64(-60.0, 60.0);
            let id = CameraId(self.cameras.len() as u32);
            self.cameras.push(Camera {
                id,
                city: city.to_string(),
                corridor: corridor.name().to_string(),
                position: p.offset_m(jitter_n, jitter_e),
                fps: *rng.choose(&[15, 24, 30]).expect("non-empty"),
                coverage_m: rng.range_f64(250.0, 600.0),
            });
        }
        self
    }

    /// Finalizes the network and builds its spatial index.
    pub fn build(self) -> CameraNetwork {
        let mut index = GridIndex::new(1_000.0);
        for cam in &self.cameras {
            index.insert(cam.position, cam.id);
        }
        CameraNetwork {
            cameras: self.cameras,
            index,
            cities: self.cities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_network_exceeds_200_cameras() {
        let net = CameraNetwork::louisiana_default(1);
        assert!(
            net.len() > 200,
            "paper claims >200 cameras, got {}",
            net.len()
        );
    }

    #[test]
    fn default_network_has_nine_cities() {
        let net = CameraNetwork::louisiana_default(2);
        assert_eq!(net.cities().len(), 9);
        assert!(net.cities().iter().any(|c| c == "Baton Rouge"));
        assert!(net.cities().iter().any(|c| c == "New Orleans"));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = CameraNetwork::louisiana_default(3);
        let b = CameraNetwork::louisiana_default(3);
        assert_eq!(a.cameras(), b.cameras());
    }

    #[test]
    fn different_seed_different_jitter() {
        let a = CameraNetwork::louisiana_default(4);
        let b = CameraNetwork::louisiana_default(5);
        assert_ne!(a.cameras()[0].position, b.cameras()[0].position);
    }

    #[test]
    fn nearest_returns_local_city() {
        let net = CameraNetwork::louisiana_default(6);
        let near_shreveport = net.nearest(GeoPoint::new(32.5252, -93.7502), 5);
        assert!(near_shreveport.iter().all(|c| c.city == "Shreveport"));
    }

    #[test]
    fn get_by_id() {
        let net = CameraNetwork::louisiana_default(7);
        let cam = net.get(CameraId(0)).unwrap();
        assert_eq!(cam.id, CameraId(0));
        assert!(net.get(CameraId(net.len() as u32)).is_none());
    }

    #[test]
    fn coverage_report_covers_every_city() {
        let net = CameraNetwork::louisiana_default(8);
        let report = net.coverage_report();
        assert_eq!(report.len(), 9);
        for row in &report {
            assert!(row.cameras >= 2, "{row:?}");
            assert!(row.mean_spacing_m > 100.0, "{row:?}");
            assert!(row.mean_spacing_m < 5_000.0, "{row:?}");
        }
        let total: usize = report.iter().map(|r| r.cameras).sum();
        assert_eq!(total, net.len());
    }

    #[test]
    fn covers_points_on_corridor() {
        let net = CameraNetwork::louisiana_default(9);
        // Camera positions themselves must be covered.
        let covered = net
            .cameras()
            .iter()
            .take(50)
            .filter(|c| net.covers(c.position))
            .count();
        assert_eq!(covered, 50);
    }

    #[test]
    fn bounding_box_spans_state() {
        let net = CameraNetwork::louisiana_default(10);
        let bbox = net.bounding_box().unwrap();
        // Louisiana spans roughly 29°N..33°N, -94°..-90°.
        assert!(bbox.min().lat() < 30.0 && bbox.max().lat() > 32.0);
        assert!(bbox.min().lon() < -93.0 && bbox.max().lon() > -91.0);
    }

    #[test]
    fn camera_id_display() {
        assert_eq!(CameraId(7).to_string(), "cam-0007");
    }
}
