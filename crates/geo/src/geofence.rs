//! Geofences for incident and tweet filtering.

use serde::{Deserialize, Serialize};

use crate::point::GeoPoint;

/// A geographic fence: either a circle or a simple (non-self-intersecting)
/// polygon.
///
/// Used by the social-network narrowing application (§IV-B) to test whether a
/// tweet "falls within the specified ... location field of interest", and by
/// the camera applications to bind incidents to districts.
///
/// # Examples
///
/// ```
/// use scgeo::{Geofence, GeoPoint};
///
/// let fence = Geofence::circle(GeoPoint::new(30.45, -91.18), 1_000.0);
/// assert!(fence.contains(GeoPoint::new(30.451, -91.181)));
/// assert!(!fence.contains(GeoPoint::new(30.50, -91.18)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Geofence {
    /// All points within `radius_m` meters of `center`.
    Circle {
        /// Circle center.
        center: GeoPoint,
        /// Radius in meters.
        radius_m: f64,
    },
    /// All points inside the polygon given by `vertices` (implicitly closed).
    Polygon {
        /// Polygon vertices in order; the last edge connects back to the first.
        vertices: Vec<GeoPoint>,
    },
}

impl Geofence {
    /// Creates a circular fence.
    ///
    /// # Panics
    ///
    /// Panics if `radius_m` is not positive.
    pub fn circle(center: GeoPoint, radius_m: f64) -> Self {
        assert!(radius_m > 0.0, "radius must be positive");
        Geofence::Circle { center, radius_m }
    }

    /// Creates a polygonal fence.
    ///
    /// # Panics
    ///
    /// Panics if fewer than three vertices are given.
    pub fn polygon(vertices: Vec<GeoPoint>) -> Self {
        assert!(
            vertices.len() >= 3,
            "a polygon needs at least three vertices"
        );
        Geofence::Polygon { vertices }
    }

    /// Whether `p` is inside the fence.
    pub fn contains(&self, p: GeoPoint) -> bool {
        match self {
            Geofence::Circle { center, radius_m } => center.haversine_m(p) <= *radius_m,
            Geofence::Polygon { vertices } => point_in_polygon(p, vertices),
        }
    }
}

/// Ray-casting point-in-polygon on lat/lon treated as planar coordinates
/// (fine at city scale).
fn point_in_polygon(p: GeoPoint, vertices: &[GeoPoint]) -> bool {
    let (x, y) = (p.lon(), p.lat());
    let mut inside = false;
    let n = vertices.len();
    let mut j = n - 1;
    for i in 0..n {
        let (xi, yi) = (vertices[i].lon(), vertices[i].lat());
        let (xj, yj) = (vertices[j].lon(), vertices[j].lat());
        if ((yi > y) != (yj > y)) && (x < (xj - xi) * (y - yi) / (yj - yi) + xi) {
            inside = !inside;
        }
        j = i;
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Geofence {
        Geofence::polygon(vec![
            GeoPoint::new(30.0, -92.0),
            GeoPoint::new(30.0, -91.0),
            GeoPoint::new(31.0, -91.0),
            GeoPoint::new(31.0, -92.0),
        ])
    }

    #[test]
    fn circle_contains_center() {
        let c = GeoPoint::new(30.45, -91.18);
        let f = Geofence::circle(c, 10.0);
        assert!(f.contains(c));
    }

    #[test]
    fn circle_boundary_behaviour() {
        let c = GeoPoint::new(30.45, -91.18);
        let f = Geofence::circle(c, 1_000.0);
        assert!(f.contains(c.offset_m(0.0, 990.0)));
        assert!(!f.contains(c.offset_m(0.0, 1_050.0)));
    }

    #[test]
    fn polygon_inside_outside() {
        let f = square();
        assert!(f.contains(GeoPoint::new(30.5, -91.5)));
        assert!(!f.contains(GeoPoint::new(29.5, -91.5)));
        assert!(!f.contains(GeoPoint::new(30.5, -90.5)));
    }

    #[test]
    fn polygon_concave() {
        // An L-shape; the notch must be outside.
        let f = Geofence::polygon(vec![
            GeoPoint::new(0.0, 0.0),
            GeoPoint::new(0.0, 2.0),
            GeoPoint::new(1.0, 2.0),
            GeoPoint::new(1.0, 1.0),
            GeoPoint::new(2.0, 1.0),
            GeoPoint::new(2.0, 0.0),
        ]);
        assert!(f.contains(GeoPoint::new(0.5, 0.5)));
        assert!(f.contains(GeoPoint::new(0.5, 1.5)));
        assert!(f.contains(GeoPoint::new(1.5, 0.5)));
        assert!(!f.contains(GeoPoint::new(1.5, 1.5)), "the notch is outside");
    }

    #[test]
    #[should_panic(expected = "three vertices")]
    fn polygon_needs_three_vertices() {
        let _ = Geofence::polygon(vec![GeoPoint::new(0.0, 0.0), GeoPoint::new(1.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn circle_needs_positive_radius() {
        let _ = Geofence::circle(GeoPoint::new(0.0, 0.0), 0.0);
    }
}
