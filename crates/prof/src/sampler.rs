//! Wall-clock activity sampling — the explicitly **nondeterministic**
//! profiling view.
//!
//! A [`Sampler`] wakes at a fixed wall-clock period, snapshots the
//! sctelemetry activity board (which kernel label each worker thread is
//! inside right now), and tallies one sample per busy thread into a
//! self-time histogram. Sample counts depend on machine speed and
//! scheduling; nothing derived from them may enter goldens or the
//! deterministic sections of `BENCH_*.json`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sctelemetry::{activity_snapshot, set_activity_enabled};

/// Tallied activity samples: kernel label → number of times a worker was
/// observed inside it. Nondeterministic by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelfTimeHistogram {
    /// Samples per kernel label, sorted by label.
    pub samples: BTreeMap<String, u64>,
    /// Total samples across all labels.
    pub total: u64,
}

impl SelfTimeHistogram {
    /// Approximate self-time share of `label` in `[0, 1]`.
    pub fn share(&self, label: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            *self.samples.get(label).unwrap_or(&0) as f64 / self.total as f64
        }
    }

    /// Plain-text rendering, labels by descending sample count. Marked
    /// nondeterministic in the header so it is never mistaken for
    /// golden-able output.
    pub fn render(&self) -> String {
        let mut out = String::from("# wall-clock self-time samples (NONDETERMINISTIC)\n");
        let mut rows: Vec<(&String, &u64)> = self.samples.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (label, n) in rows {
            out.push_str(&format!(
                "{label:<40} {n:>8} ({:>5.1}%)\n",
                self.share(label) * 100.0
            ));
        }
        out
    }
}

/// Background sampler over the sctelemetry activity board.
///
/// Starting a sampler enables the process-global activity board;
/// [`Sampler::stop`] disables it again. Run at most one sampler at a
/// time (benches do; tests of deterministic paths should not sample at
/// all).
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    counts: Arc<Mutex<SelfTimeHistogram>>,
    thread: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling every `period` of wall-clock time.
    pub fn start(period: Duration) -> Sampler {
        set_activity_enabled(true);
        let stop = Arc::new(AtomicBool::new(false));
        let counts = Arc::new(Mutex::new(SelfTimeHistogram::default()));
        let (stop2, counts2) = (stop.clone(), counts.clone());
        let thread = std::thread::Builder::new()
            .name("scprof-sampler".to_string())
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    let snap = activity_snapshot();
                    if !snap.is_empty() {
                        let mut h = counts2.lock().unwrap_or_else(|e| e.into_inner());
                        for (_, label) in snap {
                            *h.samples.entry(label).or_insert(0) += 1;
                            h.total += 1;
                        }
                    }
                    std::thread::sleep(period);
                }
            })
            .expect("spawn scprof sampler thread");
        Sampler {
            stop,
            counts,
            thread: Some(thread),
        }
    }

    /// Stops sampling, disables the activity board, and returns the tally.
    pub fn stop(mut self) -> SelfTimeHistogram {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        set_activity_enabled(false);
        self.counts
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctelemetry::ActivityScope;

    #[test]
    fn sampler_observes_active_kernels() {
        let sampler = Sampler::start(Duration::from_millis(1));
        {
            let _scope = ActivityScope::enter("test/busy_kernel");
            // Busy-wait long enough for several sampling periods.
            let t0 = std::time::Instant::now();
            while t0.elapsed() < Duration::from_millis(40) {
                std::hint::spin_loop();
            }
        }
        let hist = sampler.stop();
        assert!(hist.total > 0, "sampler collected nothing");
        assert!(hist.samples.contains_key("test/busy_kernel"));
        assert!(hist.share("test/busy_kernel") > 0.0);
        let rendered = hist.render();
        assert!(rendered.contains("NONDETERMINISTIC"));
        assert!(rendered.contains("test/busy_kernel"));
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let h = SelfTimeHistogram::default();
        assert_eq!(h.share("x"), 0.0);
        assert!(h.render().contains("NONDETERMINISTIC"));
    }
}
