//! [`ProfileReport`]: the deterministic aggregation of per-kernel work,
//! with JSON, folded-stack, and table renderings.

use sctelemetry::WorkDelta;

/// Schema version of [`ProfileReport::to_json`] output.
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Which [`WorkDelta`] dimension weights a folded-stack export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostDimension {
    /// Weight stacks by floating-point operations.
    Flops,
    /// Weight stacks by bytes moved.
    Bytes,
    /// Weight stacks by items processed.
    Items,
}

/// Accumulated work of one named kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// Kernel name, `/`-separated (e.g. `"compute/kmeans/assign"`).
    pub name: String,
    /// Number of `record_work` calls attributed to this kernel. Call
    /// counts depend on how the schedule chunks work (unlike the summed
    /// work itself) and are therefore excluded from JSON exports.
    pub calls: u64,
    /// Summed work.
    pub work: WorkDelta,
}

impl KernelProfile {
    /// Combined self-cost used for ranking: flops + bytes + items.
    /// Kernels that move data or process items without arithmetic still
    /// rank above untouched ones.
    pub fn cost(&self) -> u64 {
        self.work
            .flops
            .saturating_add(self.work.bytes)
            .saturating_add(self.work.items)
    }

    /// GFLOP/s over `elapsed_s` seconds.
    pub fn gflops_per_s(&self, elapsed_s: f64) -> f64 {
        if elapsed_s > 0.0 {
            self.work.flops as f64 / elapsed_s / 1e9
        } else {
            0.0
        }
    }

    /// Bytes/s over `elapsed_s` seconds.
    pub fn bytes_per_s(&self, elapsed_s: f64) -> f64 {
        if elapsed_s > 0.0 {
            self.work.bytes as f64 / elapsed_s
        } else {
            0.0
        }
    }
}

/// Snapshot of a [`crate::Profiler`]: every kernel (sorted by name), the
/// exact integer totals, and an optional elapsed time for rates.
///
/// The integer core (kernels, totals, percentages derived from them) is
/// byte-identical for identical seeds at any thread count. `elapsed_s`
/// is whatever the caller attaches: wall-clock seconds in benches
/// (nondeterministic — keep out of goldens) or simulated seconds in
/// golden artifacts (deterministic).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Per-kernel profiles, sorted by kernel name.
    pub kernels: Vec<KernelProfile>,
    /// Exact sum of every kernel's work.
    pub total: WorkDelta,
    /// Exact sum of every kernel's call count.
    pub total_calls: u64,
    /// Elapsed seconds rates are computed over, when attached.
    pub elapsed_s: Option<f64>,
}

impl ProfileReport {
    /// Attaches an elapsed time, enabling GFLOP/s / bytes/s in exports.
    pub fn with_elapsed(mut self, elapsed_s: f64) -> Self {
        self.elapsed_s = Some(elapsed_s);
        self
    }

    /// Looks up one kernel by exact name.
    pub fn kernel(&self, name: &str) -> Option<&KernelProfile> {
        self.kernels.iter().find(|k| k.name == name)
    }

    /// Percentage of total combined cost attributed to `k` (0 when the
    /// report is empty). Derived purely from the integer core.
    pub fn pct_cost(&self, k: &KernelProfile) -> f64 {
        let total = self
            .total
            .flops
            .saturating_add(self.total.bytes)
            .saturating_add(self.total.items);
        if total == 0 {
            0.0
        } else {
            k.cost() as f64 * 100.0 / total as f64
        }
    }

    /// The `n` costliest kernels, by combined cost descending, name
    /// ascending on ties — a deterministic ranking.
    pub fn top_by_cost(&self, n: usize) -> Vec<&KernelProfile> {
        let mut v: Vec<&KernelProfile> = self.kernels.iter().collect();
        v.sort_by(|a, b| b.cost().cmp(&a.cost()).then_with(|| a.name.cmp(&b.name)));
        v.truncate(n);
        v
    }

    /// Folded-stack "cost flamegraph" export, in scobserve's
    /// `folded_stacks` format: one `frame;frame;... weight` line per
    /// kernel, `/` in kernel names split into stack frames, lines sorted
    /// lexicographically (kernels are already name-sorted and the `/`→`;`
    /// mapping is monotonic), zero-weight lines dropped. Feed to any
    /// flamegraph renderer.
    pub fn folded(&self, dim: CostDimension) -> String {
        let mut out = String::new();
        for k in &self.kernels {
            let w = match dim {
                CostDimension::Flops => k.work.flops,
                CostDimension::Bytes => k.work.bytes,
                CostDimension::Items => k.work.items,
            };
            if w > 0 {
                out.push_str(&k.name.replace('/', ";"));
                out.push(' ');
                out.push_str(&w.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// Deterministic JSON rendering. Keys are emitted in a fixed order;
    /// floats are formatted with fixed precision; rate fields appear only
    /// when an elapsed time is attached.
    ///
    /// Call counts are deliberately NOT serialized: how work is chunked
    /// into `record_work` calls depends on the execution schedule (e.g.
    /// batch splitting under `SCPAR_THREADS`), while the summed work does
    /// not. Only schedule-invariant fields belong in goldens.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"schema_version\":{PROFILE_SCHEMA_VERSION},\"total\":{}",
            work_json(&self.total),
        ));
        if let Some(e) = self.elapsed_s {
            s.push_str(&format!(",\"elapsed_s\":{}", fmt_f64(e)));
        }
        s.push_str(",\"kernels\":[");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":{:?},\"work\":{},\"pct_cost\":{}",
                k.name,
                work_json(&k.work),
                fmt_f64(self.pct_cost(k))
            ));
            if let Some(e) = self.elapsed_s {
                s.push_str(&format!(
                    ",\"gflops_per_s\":{},\"bytes_per_s\":{}",
                    fmt_f64(k.gflops_per_s(e)),
                    fmt_f64(k.bytes_per_s(e))
                ));
            }
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Plain-text table of the top `n` kernels, for bench output and
    /// EXPERIMENTS.md. Rates appear when an elapsed time is attached.
    pub fn render_table(&self, n: usize) -> String {
        let mut out = String::new();
        match self.elapsed_s {
            Some(_) => out.push_str(&format!(
                "{:<32} {:>10} {:>14} {:>14} {:>7} {:>10}\n",
                "kernel", "calls", "flops", "bytes", "pct", "GFLOP/s"
            )),
            None => out.push_str(&format!(
                "{:<32} {:>10} {:>14} {:>14} {:>7}\n",
                "kernel", "calls", "flops", "bytes", "pct"
            )),
        }
        for k in self.top_by_cost(n) {
            match self.elapsed_s {
                Some(e) => out.push_str(&format!(
                    "{:<32} {:>10} {:>14} {:>14} {:>6.2}% {:>10.3}\n",
                    k.name,
                    k.calls,
                    k.work.flops,
                    k.work.bytes,
                    self.pct_cost(k),
                    k.gflops_per_s(e)
                )),
                None => out.push_str(&format!(
                    "{:<32} {:>10} {:>14} {:>14} {:>6.2}%\n",
                    k.name,
                    k.calls,
                    k.work.flops,
                    k.work.bytes,
                    self.pct_cost(k)
                )),
            }
        }
        out
    }
}

fn work_json(w: &WorkDelta) -> String {
    format!(
        "{{\"flops\":{},\"bytes\":{},\"cache_hits\":{},\"cache_misses\":{},\"items\":{}}}",
        w.flops, w.bytes, w.cache_hits, w.cache_misses, w.items
    )
}

/// Fixed-precision float formatting so exports are byte-stable: six
/// decimal places, which is far below any tolerance band we compare at.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Profiler;

    fn sample() -> ProfileReport {
        let p = Profiler::shared();
        let h = p.handle();
        h.work("neural/matmul", WorkDelta::flops(900).with_bytes(100));
        h.work("pipeline/ingest", WorkDelta::items(50));
        h.work("compute/kmeans/assign", WorkDelta::flops(100));
        p.report()
    }

    #[test]
    fn totals_and_ranking() {
        let r = sample();
        assert_eq!(r.total.flops, 1000);
        assert_eq!(r.total.items, 50);
        let top = r.top_by_cost(2);
        assert_eq!(top[0].name, "neural/matmul");
        assert_eq!(top[1].name, "compute/kmeans/assign");
        assert!((r.pct_cost(top[0]) - 1000.0 * 100.0 / 1150.0).abs() < 1e-9);
    }

    #[test]
    fn folded_matches_observe_format() {
        let r = sample();
        let f = r.folded(CostDimension::Flops);
        assert_eq!(f, "compute;kmeans;assign 100\nneural;matmul 900\n");
        // Lines sorted, zero-weight kernels dropped.
        assert!(!f.contains("ingest"));
        let items = r.folded(CostDimension::Items);
        assert_eq!(items, "pipeline;ingest 50\n");
    }

    #[test]
    fn json_is_deterministic_and_gated_on_elapsed() {
        let r = sample();
        let a = r.to_json();
        assert_eq!(a, sample().to_json());
        assert!(a.contains("\"schema_version\":1"));
        assert!(!a.contains("gflops_per_s"));
        // Call counts are schedule-dependent and must stay out of the JSON.
        assert!(!a.contains("calls"));
        let with = sample().with_elapsed(2.0);
        let j = with.to_json();
        assert!(j.contains("\"elapsed_s\":2.000000"));
        assert!(j.contains("gflops_per_s"));
        let k = with.kernel("neural/matmul").unwrap();
        assert!((k.gflops_per_s(2.0) - 900.0 / 2.0 / 1e9).abs() < 1e-18);
    }

    #[test]
    fn table_renders_top_kernels() {
        let r = sample().with_elapsed(1.0);
        let t = r.render_table(10);
        assert!(t.contains("GFLOP/s"));
        assert!(t.contains("neural/matmul"));
    }
}
