//! The [`Profiler`] recorder decorator: aggregates per-kernel work while
//! forwarding every other telemetry signal to an optional inner recorder.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use sctelemetry::trace::{EventRecord, SpanRecord};
use sctelemetry::{MetricError, MetricsRegistry, Recorder, TelemetryHandle, WorkDelta};

use crate::report::{KernelProfile, ProfileReport};

#[derive(Debug, Default, Clone, Copy)]
struct KernelCell {
    calls: u64,
    work: WorkDelta,
}

/// A [`Recorder`] decorator that captures [`WorkDelta`]s per kernel.
///
/// Wrap the run's real recorder (e.g. [`sctelemetry::Telemetry`]) with
/// [`Profiler::shared_wrapping`] so metrics, traces, *and* work all flow
/// through one [`TelemetryHandle`]; or use [`Profiler::shared`] alone
/// when only work accounting is wanted.
///
/// Aggregation is per-kernel integer addition under one lock, so totals
/// are independent of thread interleaving: the same seed produces the
/// same [`ProfileReport`] at any `SCPAR_THREADS`.
#[derive(Default)]
pub struct Profiler {
    inner: Option<Arc<dyn Recorder>>,
    kernels: Mutex<BTreeMap<String, KernelCell>>,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("forwarding", &self.inner.is_some())
            .field(
                "kernels",
                &self.kernels.lock().unwrap_or_else(|e| e.into_inner()).len(),
            )
            .finish()
    }
}

impl Profiler {
    /// A standalone profiler: work is captured, other signals dropped.
    pub fn new() -> Self {
        Self::default()
    }

    /// A profiler forwarding non-work signals (and work) to `inner`.
    pub fn wrapping(inner: Arc<dyn Recorder>) -> Self {
        Profiler {
            inner: Some(inner),
            kernels: Mutex::new(BTreeMap::new()),
        }
    }

    /// [`Profiler::new`] wrapped in `Arc`, ready for handles.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// [`Profiler::wrapping`] wrapped in `Arc`, ready for handles.
    pub fn shared_wrapping(inner: Arc<dyn Recorder>) -> Arc<Self> {
        Arc::new(Self::wrapping(inner))
    }

    /// A handle routing to this profiler.
    pub fn handle(self: &Arc<Self>) -> TelemetryHandle {
        TelemetryHandle::new(self.clone() as Arc<dyn Recorder>)
    }

    /// Snapshot of everything recorded so far, kernels sorted by name.
    pub fn report(&self) -> ProfileReport {
        let map = self.kernels.lock().unwrap_or_else(|e| e.into_inner());
        let mut total = WorkDelta::default();
        let mut total_calls = 0u64;
        let kernels = map
            .iter()
            .map(|(name, cell)| {
                total += cell.work;
                total_calls += cell.calls;
                KernelProfile {
                    name: name.clone(),
                    calls: cell.calls,
                    work: cell.work,
                }
            })
            .collect();
        ProfileReport {
            kernels,
            total,
            total_calls,
            elapsed_s: None,
        }
    }

    /// Clears all accumulated kernels.
    pub fn reset(&self) {
        self.kernels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Publishes accumulated work as the `smartcity_prof_*` counter
    /// family into `registry`:
    ///
    /// - `smartcity_prof_kernel_flops_total`, `..._bytes_total`,
    ///   `..._items_total`: totals across all kernels,
    /// - `smartcity_prof_kernel_<kernel>_flops_total` per kernel, with
    ///   `/` in the kernel name mapped to `_`.
    ///
    /// Call once at the end of a run — counters accumulate, so a second
    /// call would double the published totals.
    pub fn publish_metrics(&self, registry: &MetricsRegistry) -> Result<(), MetricError> {
        let report = self.report();
        let add = |name: &str, help: &str, v: u64| -> Result<(), MetricError> {
            registry
                .try_counter(name, help)?
                .as_counter()
                .expect("try_counter returned a counter")
                .add(v);
            Ok(())
        };
        add(
            "smartcity_prof_kernel_flops_total",
            "floating-point operations attributed to profiled kernels",
            report.total.flops,
        )?;
        add(
            "smartcity_prof_kernel_bytes_total",
            "bytes moved by profiled kernels",
            report.total.bytes,
        )?;
        add(
            "smartcity_prof_kernel_items_total",
            "logical items processed by profiled kernels",
            report.total.items,
        )?;
        for k in &report.kernels {
            if k.work.flops == 0 {
                continue;
            }
            let san: String = k
                .name
                .chars()
                .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
                .collect();
            add(
                &format!("smartcity_prof_kernel_{san}_flops_total"),
                &format!("floating-point operations in kernel {}", k.name),
                k.work.flops,
            )?;
        }
        Ok(())
    }
}

impl Recorder for Profiler {
    fn record_work(&self, kernel: &str, work: WorkDelta) {
        {
            let mut map = self.kernels.lock().unwrap_or_else(|e| e.into_inner());
            let cell = map.entry(kernel.to_string()).or_default();
            cell.calls += 1;
            cell.work += work;
        }
        if let Some(r) = &self.inner {
            r.record_work(kernel, work);
        }
    }

    fn add_to_counter(&self, name: &str, help: &str, n: u64) {
        if let Some(r) = &self.inner {
            r.add_to_counter(name, help, n);
        }
    }

    fn set_gauge(&self, name: &str, help: &str, v: i64) {
        if let Some(r) = &self.inner {
            r.set_gauge(name, help, v);
        }
    }

    fn observe(&self, name: &str, help: &str, v: f64) {
        if let Some(r) = &self.inner {
            r.observe(name, help, v);
        }
    }

    fn observe_exact(&self, name: &str, help: &str, v: f64) {
        if let Some(r) = &self.inner {
            r.observe_exact(name, help, v);
        }
    }

    fn record_span(&self, span: SpanRecord) {
        if let Some(r) = &self.inner {
            r.record_span(span);
        }
    }

    fn record_event(&self, event: EventRecord) {
        if let Some(r) = &self.inner {
            r.record_event(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sctelemetry::Telemetry;

    #[test]
    fn aggregates_per_kernel() {
        let p = Profiler::shared();
        let h = p.handle();
        h.work("a/x", WorkDelta::flops(10).with_items(1));
        h.work("a/x", WorkDelta::flops(5).with_bytes(3));
        h.work("b", WorkDelta::items(7));
        let r = p.report();
        assert_eq!(r.kernels.len(), 2);
        let ax = r.kernel("a/x").unwrap();
        assert_eq!(ax.calls, 2);
        assert_eq!(ax.work.flops, 15);
        assert_eq!(ax.work.bytes, 3);
        assert_eq!(ax.work.items, 1);
        assert_eq!(r.total.flops, 15);
        assert_eq!(r.total.items, 8);
        assert_eq!(r.total_calls, 3);
        p.reset();
        assert!(p.report().kernels.is_empty());
    }

    #[test]
    fn forwards_to_inner_recorder() {
        let t = Telemetry::shared();
        let p = Profiler::shared_wrapping(t.clone());
        let h = p.handle();
        h.counter_add("fwd_total", "fwd", 2);
        h.observe("fwd_seconds", "fwd", 0.1);
        h.work("k", WorkDelta::flops(1));
        assert_eq!(
            t.registry()
                .get("fwd_total")
                .unwrap()
                .as_counter()
                .unwrap()
                .get(),
            2
        );
        assert_eq!(p.report().total.flops, 1);
    }

    #[test]
    fn publishes_metric_family() {
        let t = Telemetry::shared();
        let p = Profiler::shared_wrapping(t.clone());
        let h = p.handle();
        h.work("neural/matmul", WorkDelta::flops(1000).with_bytes(64));
        h.work("pipeline/ingest", WorkDelta::items(5));
        p.publish_metrics(t.registry()).unwrap();
        let get = |n: &str| t.registry().get(n).unwrap().as_counter().unwrap().get();
        assert_eq!(get("smartcity_prof_kernel_flops_total"), 1000);
        assert_eq!(get("smartcity_prof_kernel_bytes_total"), 64);
        assert_eq!(get("smartcity_prof_kernel_items_total"), 5);
        assert_eq!(get("smartcity_prof_kernel_neural_matmul_flops_total"), 1000);
        // Zero-FLOP kernels get no per-kernel series.
        assert!(t
            .registry()
            .get("smartcity_prof_kernel_pipeline_ingest_flops_total")
            .is_none());
    }
}
