//! # scprof — deterministic continuous profiling for the smart-city stack
//!
//! The paper's cyberinfrastructure is sold on staying fast at city scale;
//! this crate is what makes that claim *measurable*. It layers two
//! complementary profiling views over sctelemetry:
//!
//! 1. **Deterministic work accounting** — instrumented kernels attribute
//!    exact integer costs ([`sctelemetry::WorkDelta`]: FLOPs, bytes,
//!    modeled cache hits/misses, items) to `/`-separated kernel names.
//!    A [`Profiler`] (a [`sctelemetry::Recorder`] decorator) aggregates
//!    them into a [`ProfileReport`] whose JSON and folded-stack exports
//!    are **byte-identical for identical seeds at any `SCPAR_THREADS`**,
//!    because integer addition is commutative. Rates (GFLOP/s, bytes/s)
//!    are attached separately via [`ProfileReport::with_elapsed`] — wall
//!    time for benches, deterministic sim time for golden artifacts.
//! 2. **Wall-clock sampling** — a [`Sampler`] snapshots the
//!    sctelemetry activity board (current kernel label per worker) at a
//!    fixed period into a self-time histogram. This view is **explicitly
//!    nondeterministic** and must stay out of goldens.
//!
//! # Examples
//!
//! ```
//! use sctelemetry::WorkDelta;
//! use scprof::{CostDimension, Profiler};
//!
//! let prof = Profiler::shared();
//! let h = prof.handle();
//! h.work("neural/matmul", WorkDelta::flops(2 * 8 * 8 * 8).with_bytes(3 * 8 * 8 * 8));
//! h.work("pipeline/ingest", WorkDelta::items(100));
//!
//! let report = prof.report();
//! assert_eq!(report.total.flops, 1024);
//! let folded = report.folded(CostDimension::Flops);
//! assert_eq!(folded, "neural;matmul 1024\n");
//! ```

mod profiler;
mod report;
mod sampler;

pub use profiler::Profiler;
pub use report::{CostDimension, KernelProfile, ProfileReport, PROFILE_SCHEMA_VERSION};
pub use sampler::{Sampler, SelfTimeHistogram};
