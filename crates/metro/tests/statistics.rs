//! Statistical properties of the Metropolis population model.
//!
//! The population model is the benchmark's ground truth, so its
//! distributional claims are pinned exactly where the math allows
//! (integer apportionment) and within tight tolerances where it is
//! sampled (flash-crowd shape, Zipf key skew).

use proptest::prelude::*;
use scmetro::{MetroConfig, MetroSim, PopulationConfig, PopulationModel};
use simclock::SeededRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The diurnal curve integrates to the configured daily query count
    /// *exactly*: largest-remainder apportionment guarantees the base
    /// windows sum to `round(users × queries_per_user)` with no drift,
    /// for any population, rate, or window resolution.
    #[test]
    fn diurnal_curve_integrates_exactly_to_daily_queries(
        users in 1_000u64..5_000_000,
        qpu in 0.5f64..12.0,
        windows in 4usize..256,
        seed in 0u64..1_000,
    ) {
        let cfg = PopulationConfig {
            users,
            queries_per_user: qpu,
            windows,
            seed,
            ..PopulationConfig::default()
        };
        let pop = PopulationModel::new(cfg);
        let expected = (users as f64 * qpu).round() as u64;
        prop_assert_eq!(pop.base_total(), expected);
        // Flash crowds only ever add demand on top of the base curve.
        prop_assert!(pop.total() >= pop.base_total());
        let sum: u64 = (0..windows).map(|w| pop.demand(w)).sum();
        prop_assert_eq!(sum, pop.total());
    }

    /// Flash-crowd demand is exactly reconstructable from the spec —
    /// each crowd adds `round(base × (mult − 1) × shape(w))` on top of
    /// the base curve — and at the apex of an isolated crowd the demand
    /// ratio hits the configured multiplier within 1%.
    #[test]
    fn flash_crowd_peak_matches_the_configured_multiplier(
        seed in 0u64..2_000,
        mult in 1.5f64..6.0,
    ) {
        let cfg = PopulationConfig {
            users: 1_000_000,
            flash_multiplier: mult,
            seed,
            ..PopulationConfig::default()
        };
        let pop = PopulationModel::new(cfg);
        let boost = mult - 1.0;
        let crowds = pop.crowds();
        // Exact reconstruction of every window from the documented law.
        for w in 0..pop.windows() {
            let base = pop.base(w);
            let extra: u64 = crowds
                .iter()
                .map(|c| (base as f64 * boost * c.shape(w)).round() as u64)
                .sum();
            prop_assert_eq!(pop.demand(w), base + extra, "window {}", w);
        }
        // At an apex touched by exactly ONE crowd, the ratio is the
        // configured multiplier (overlapping crowds stack additively).
        for crowd in crowds {
            let apex = crowd.start + crowd.width / 2;
            let touching = crowds.iter().filter(|c| c.shape(apex) > 0.0).count();
            if touching != 1 {
                continue;
            }
            let ratio = pop.demand(apex) as f64 / pop.base(apex) as f64;
            prop_assert!(
                (ratio - mult).abs() / mult < 0.01,
                "apex window {} demand ratio {:.4} vs multiplier {:.4}",
                apex,
                ratio,
                mult,
            );
        }
    }

    /// The workload's key-rank draw matches its documented Zipf-like
    /// law: `rank = floor(n · u^(1+skew))` has CDF
    /// `P(rank ≤ r) = ((r+1)/n)^(1/(1+skew))`. An empirical CDF over
    /// 100k seeded draws must track the analytic one within 1.5%.
    #[test]
    fn key_rank_skew_matches_the_documented_zipf_law(
        seed in 0u64..10_000,
        skew in 0.5f64..2.0,
    ) {
        const N: usize = 200;
        const DRAWS: usize = 100_000;
        let mut rng = SeededRng::new(seed);
        let mut counts = [0usize; N];
        for _ in 0..DRAWS {
            let u = rng.next_f64();
            let rank = ((N as f64 * u.powf(1.0 + skew)) as usize).min(N - 1);
            counts[rank] += 1;
        }
        let mut cum = 0usize;
        for (r, &c) in counts.iter().enumerate() {
            cum += c;
            let empirical = cum as f64 / DRAWS as f64;
            let analytic = (((r + 1) as f64) / N as f64).powf(1.0 / (1.0 + skew));
            prop_assert!(
                (empirical - analytic).abs() < 0.015,
                "CDF diverges at rank {}: empirical {:.4} vs analytic {:.4} (skew {:.3})",
                r,
                empirical,
                analytic,
                skew,
            );
        }
    }
}

/// Peak demand with default flash crowds towers over the mean — the
/// static plan (sized to mean × headroom) is guaranteed to need the
/// autoscaler on a default day.
#[test]
fn default_day_peak_exceeds_static_plan_headroom() {
    let cfg = MetroConfig::default();
    let sim = MetroSim::new(cfg);
    let plan = sim.topology();
    let static_capacity = plan.initial_shards as f64 * plan.guidelines.per_shard_rps;
    assert!(
        plan.peak_rps > static_capacity,
        "peak {} rps must exceed static capacity {} rps",
        plan.peak_rps,
        static_capacity
    );
}
