//! Closed-loop stability properties of the Metropolis autoscaler.
//!
//! Three behaviours separate a control loop from a flapping thermostat,
//! and each is pinned here as a property over *arbitrary* telemetry
//! streams, not hand-picked traces:
//!
//! 1. **No oscillation** — the loop never removes a shard within the
//!    hysteresis window of adding it, for any input stream, and never
//!    emits more than one action per evidence window.
//! 2. **Shed monotonicity** — against a plant under constant overload,
//!    the shed fraction is non-increasing once the first scale-up has
//!    settled: added capacity is never given back while it is needed.
//! 3. **Bounded recovery** — after a crash-and-restart fault in the
//!    full [`MetroSim`], the day reaches a clean (zero-shed) window
//!    within a bound derived from the hysteresis constants.

use std::collections::BTreeMap;

use proptest::prelude::*;
use scmetro::{
    AutoscaleConfig, AutoscalePolicy, MetroConfig, MetroSim, PopulationConfig, ScaleAction,
};
use simclock::{SimDuration, SimTime};

use scfault::{FaultKind, FaultPlan};

fn at(w: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(60 * w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any stream of (good, bad, utilization) evidence, a removed
    /// shard was added at least `cooldown` windows earlier, shard
    /// membership stays consistent, and each window emits at most one
    /// fleet action and one pool action.
    #[test]
    fn autoscaler_never_flaps_a_shard_inside_the_hysteresis_window(
        cooldown in 1u64..6,
        settle in 1u64..8,
        obs in proptest::collection::vec(
            (0usize..500, 0usize..500, 0.0f64..2.5),
            1..160,
        ),
    ) {
        let cfg = AutoscaleConfig {
            cooldown,
            settle,
            ..AutoscaleConfig::default()
        };
        let mut policy = AutoscalePolicy::new(cfg, 4, 2, 100);
        let mut born: BTreeMap<u32, u64> = BTreeMap::new();
        let mut live: Vec<u32> = Vec::new();
        for (w, (good, bad, util)) in obs.iter().enumerate() {
            let w = w as u64;
            let actions = policy.observe(w, at(w), *good, *bad, *util);
            prop_assert!(actions.len() <= 1, "one action per window, got {actions:?}");
            for action in actions {
                match action {
                    ScaleAction::AddShard { node } => {
                        prop_assert!(!live.contains(&node), "shard id reuse");
                        born.insert(node, w);
                        live.push(node);
                    }
                    ScaleAction::RemoveShard { node } => {
                        let b = born.get(&node).copied();
                        prop_assert!(b.is_some(), "removed a shard the loop never added");
                        prop_assert!(
                            w - b.unwrap() >= cooldown,
                            "shard {node} added at w{} removed at w{w} inside cooldown {cooldown}",
                            b.unwrap(),
                        );
                        live.retain(|&n| n != node);
                    }
                    _ => {}
                }
            }
            prop_assert!(policy.shards() >= 1, "fleet can never empty");
        }
    }

    /// A plant under constant overload: demand is a fixed multiple of the
    /// initial capacity, sheds whatever exceeds capacity, and feeds the
    /// loop honest tallies. Once the first scale-up settles, the shed
    /// fraction never increases again — capacity only accumulates.
    #[test]
    fn shed_fraction_is_monotone_after_a_scale_up_settles(
        overload in 1.1f64..4.0,
        per_shard in 5.0f64..50.0,
    ) {
        let cfg = AutoscaleConfig::default();
        let (cooldown, settle) = (cfg.cooldown, cfg.settle);
        let min_pool = cfg.min_pool;
        let mut policy = AutoscalePolicy::new(cfg, 4, min_pool, 100);
        let capacity = |shards: usize, pool: usize| {
            per_shard * shards as f64 * (1.0 + 0.25 * (pool - min_pool) as f64)
        };
        let demand = overload * capacity(4, min_pool);

        const TOTAL: usize = 1_000;
        let mut shed_series: Vec<f64> = Vec::new();
        let mut first_scale: Option<u64> = None;
        for w in 0..60u64 {
            let cap = capacity(policy.shards(), policy.pool());
            let shed = ((demand - cap) / demand).max(0.0);
            let bad = (shed * TOTAL as f64).round() as usize;
            let actions = policy.observe(w, at(w), TOTAL - bad, bad, demand / cap);
            if first_scale.is_none() && !actions.is_empty() {
                first_scale = Some(w);
            }
            shed_series.push(shed);
        }
        if let Some(w0) = first_scale {
            let settled = (w0 + cooldown.max(settle)) as usize;
            for w in settled..shed_series.len() - 1 {
                prop_assert!(
                    shed_series[w + 1] <= shed_series[w] + 1e-12,
                    "shed rose from {} to {} at window {} (overload {overload:.2}):\n{}",
                    shed_series[w],
                    shed_series[w + 1],
                    w + 1,
                    policy.decision_log(),
                );
            }
        }
    }
}

/// A serving-shard crash and restart mid-morning: the day must reach a
/// clean window within `(cooldown + settle + 2)` windows of the outage
/// ending — the loop's worst case of one hysteresis cycle plus slack.
#[test]
fn recovery_after_a_fault_window_is_bounded() {
    let windows = 24usize;
    let plan = FaultPlan::empty()
        .with_event(
            SimTime::from_secs(6 * 3600),
            FaultKind::NodeCrash { node: 0 },
        )
        .with_event(
            SimTime::from_secs(8 * 3600),
            FaultKind::NodeRestart { node: 0 },
        );
    let cfg = MetroConfig {
        population: PopulationConfig {
            users: 50_000,
            windows,
            ..PopulationConfig::default()
        },
        sample_total: 2_000,
        fault_plan: Some(plan),
        ..MetroConfig::default()
    };
    let hysteresis = cfg.autoscale.cooldown + cfg.autoscale.settle;
    let window_secs = cfg.population.day.as_secs_f64() / windows as f64;
    let report = MetroSim::new(cfg).run();
    assert!(
        report.recovery_s.is_finite(),
        "the loop must reach a clean window:\n{}",
        report.decision_log()
    );
    let bound = (hysteresis + 2) as f64 * window_secs;
    assert!(
        report.recovery_s <= bound,
        "recovery {}s exceeds the {}s hysteresis bound:\n{}",
        report.recovery_s,
        bound,
        report.decision_log()
    );
}

/// The same fault schedule with a harsher plant still recovers and the
/// post-restart shed trend is downward: scale-ups are not given back
/// while the backlog clears.
#[test]
fn post_outage_shed_trends_to_zero() {
    let plan = FaultPlan::empty()
        .with_event(
            SimTime::from_secs(6 * 3600),
            FaultKind::NodeCrash { node: 0 },
        )
        .with_event(
            SimTime::from_secs(9 * 3600),
            FaultKind::NodeRestart { node: 0 },
        );
    let cfg = MetroConfig {
        population: PopulationConfig {
            users: 50_000,
            windows: 24,
            ..PopulationConfig::default()
        },
        sample_total: 2_000,
        fault_plan: Some(plan),
        ..MetroConfig::default()
    };
    let report = MetroSim::new(cfg).run();
    let last = report.windows.last().expect("day has windows");
    assert_eq!(
        last.bad,
        0,
        "day must end clean:\n{}",
        report.decision_log()
    );
}
