//! Metropolis: the closed-loop macro-benchmark of the whole stack.
//!
//! The source paper sizes a city-scale cyberinfrastructure — Kafka
//! ingest, HDFS archival, deep-learning inference, HBase-backed serving
//! — and argues it can carry millions of residents. This crate is the
//! repo's end-to-end rehearsal of that claim on sim-time:
//!
//! 1. [`PopulationModel`] turns "N users × Q queries/day" into an exact
//!    per-window demand series with diurnal peaks and seeded flash
//!    crowds ([`population`]).
//! 2. [`TopologyPlan`] sizes brokers, partitions, DFS nodes, and the
//!    initial serving fleet from measured-throughput guidelines —
//!    deliberately for the *mean*, so peaks outgrow it ([`topology`]).
//! 3. [`MetroSim`] executes the day: ingest through [`scstream`],
//!    archival through [`scdfs`], queries and inference through
//!    [`scserve`] + [`scneural`], all under one shared
//!    [`scfault::FaultPlan`] ([`sim`]).
//! 4. [`AutoscalePolicy`] closes the loop: burn rates
//!    ([`scobserve::BurnMeter`]) and utilization feed hysteresis-guarded
//!    scaling decisions applied back to the live server ([`autoscale`]).
//!
//! Everything is seeded and env-free: the same [`MetroConfig`] yields a
//! byte-identical [`MetroReport`] — scaling-decision log included — at
//! any thread count or SIMD ISA. Experiment E19 (`e19_metropolis`)
//! publishes the run through the perf observatory as
//! `BENCH_metropolis.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod population;
pub mod sim;
pub mod topology;

pub use autoscale::{AutoscaleConfig, AutoscalePolicy, ScaleAction, ScaleDecision};
pub use population::{apportion, diurnal_weight, FlashCrowd, PopulationConfig, PopulationModel};
pub use sim::{MetroConfig, MetroReport, MetroSim, WindowStats};
pub use topology::{SizingGuidelines, TopologyPlan};
