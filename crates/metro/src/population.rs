//! The city's demand side: a seeded population model.
//!
//! A [`PopulationModel`] turns "`users` residents issuing
//! `queries_per_user` queries a day" into an exact per-window demand
//! series shaped like a real city's day (CityPulse-style diurnal traffic
//! curves): a quiet overnight floor, a morning commute peak, and a
//! broader evening peak. On top of the diurnal base, seeded
//! *flash crowds* (a match, an incident, a storm) multiply demand over a
//! few consecutive windows.
//!
//! Two exactness guarantees keep the model testable:
//!
//! 1. **The diurnal base integrates exactly.** Window allocations are
//!    computed by largest-remainder apportionment, so
//!    `sum(base) == round(users × queries_per_user)` with no float
//!    drift — the statistical suite asserts equality, not closeness.
//! 2. **Flash crowds are multiplicative and local.** Inside a crowd the
//!    extra demand is `round(base × (multiplier − 1) × shape)` with a
//!    triangular shape peaking at 1, so the peak window's total demand
//!    is the configured multiple of its base (up to rounding).

use simclock::{SeededRng, SimDuration, SimTime};

/// Demand-side knobs. Defaults model one million residents.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Simulated city residents.
    pub users: u64,
    /// Mean queries per resident per day.
    pub queries_per_user: f64,
    /// Short windows the day is divided into (96 = 15-minute windows).
    pub windows: usize,
    /// Length of the simulated day.
    pub day: SimDuration,
    /// Number of seeded flash-crowd events.
    pub flash_crowds: usize,
    /// Peak demand multiplier at a flash crowd's center window.
    pub flash_multiplier: f64,
    /// Windows a flash crowd spans (odd values center cleanly).
    pub flash_width: usize,
    /// Seed for flash-crowd placement; the diurnal base is seed-free.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            users: 1_000_000,
            queries_per_user: 4.0,
            windows: 96,
            day: SimDuration::from_secs(24 * 3600),
            flash_crowds: 2,
            flash_multiplier: 3.0,
            flash_width: 3,
            seed: 42,
        }
    }
}

/// One seeded flash-crowd event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashCrowd {
    /// First window the crowd touches.
    pub start: usize,
    /// Windows it spans.
    pub width: usize,
}

impl FlashCrowd {
    /// Triangular shape factor in `[0, 1]` for window `w`: 1 at the
    /// center, falling linearly to the edges, 0 outside the crowd.
    pub fn shape(&self, w: usize) -> f64 {
        if w < self.start || w >= self.start + self.width {
            return 0.0;
        }
        let center = (self.width - 1) as f64 / 2.0;
        let d = (w - self.start) as f64 - center;
        if self.width <= 1 {
            1.0
        } else {
            1.0 - d.abs() / (center + 1.0)
        }
    }
}

/// Relative diurnal demand weight at day-fraction `x ∈ [0, 1)`: an
/// overnight floor plus morning (~08:30) and evening (~18:30) Gaussian
/// peaks. Pure, seed-free, and strictly positive.
pub fn diurnal_weight(x: f64) -> f64 {
    let bump = |center: f64, sigma: f64| {
        let d = x - center;
        (-d * d / (2.0 * sigma * sigma)).exp()
    };
    0.30 + bump(8.5 / 24.0, 1.75 / 24.0) + 0.85 * bump(18.5 / 24.0, 2.5 / 24.0)
}

/// Largest-remainder apportionment of `total` units across `weights`:
/// floors the proportional shares, then hands the leftover units to the
/// largest fractional parts (ties to the lower index). The result sums
/// to `total` exactly.
pub fn apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    assert!(!weights.is_empty(), "apportion needs at least one window");
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "weights must have a positive sum");
    let mut alloc: Vec<u64> = Vec::with_capacity(weights.len());
    let mut fracs: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut given = 0u64;
    for (i, w) in weights.iter().enumerate() {
        let share = total as f64 * (w / sum);
        let floor = share.floor() as u64;
        alloc.push(floor);
        given += floor;
        fracs.push((i, share - floor as f64));
    }
    // Largest fractional part first; index breaks ties deterministically.
    fracs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut leftover = total - given;
    for (i, _) in fracs {
        if leftover == 0 {
            break;
        }
        alloc[i] += 1;
        leftover -= 1;
    }
    alloc
}

/// The materialized demand series; see the module docs.
///
/// # Examples
///
/// ```
/// use scmetro::{PopulationConfig, PopulationModel};
///
/// let pop = PopulationModel::new(PopulationConfig {
///     users: 100_000,
///     queries_per_user: 2.0,
///     ..PopulationConfig::default()
/// });
/// // The diurnal base integrates to the configured daily total, exactly.
/// assert_eq!(pop.base_total(), 200_000);
/// assert!(pop.peak().1 >= pop.demand(0), "peak dominates midnight");
/// ```
#[derive(Debug, Clone)]
pub struct PopulationModel {
    cfg: PopulationConfig,
    base: Vec<u64>,
    flash: Vec<u64>,
    crowds: Vec<FlashCrowd>,
}

impl PopulationModel {
    /// Builds the demand series for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.windows == 0` or `cfg.users == 0`.
    pub fn new(cfg: PopulationConfig) -> Self {
        assert!(cfg.windows > 0, "population needs at least one window");
        assert!(cfg.users > 0, "population needs at least one user");
        let total = (cfg.users as f64 * cfg.queries_per_user).round() as u64;
        let weights: Vec<f64> = (0..cfg.windows)
            .map(|i| diurnal_weight((i as f64 + 0.5) / cfg.windows as f64))
            .collect();
        let base = apportion(total, &weights);

        let mut rng = SeededRng::new(cfg.seed ^ 0x0C17_9D4B);
        let width = cfg.flash_width.clamp(1, cfg.windows);
        let mut crowds = Vec::with_capacity(cfg.flash_crowds);
        for _ in 0..cfg.flash_crowds {
            let start = rng.next_bounded((cfg.windows - width + 1) as u64) as usize;
            crowds.push(FlashCrowd { start, width });
        }
        let mut flash = vec![0u64; cfg.windows];
        let boost = (cfg.flash_multiplier - 1.0).max(0.0);
        for crowd in &crowds {
            for (w, f) in flash.iter_mut().enumerate() {
                *f += (base[w] as f64 * boost * crowd.shape(w)).round() as u64;
            }
        }
        PopulationModel {
            cfg,
            base,
            flash,
            crowds,
        }
    }

    /// The configuration the model was built from.
    pub fn config(&self) -> &PopulationConfig {
        &self.cfg
    }

    /// Number of windows.
    pub fn windows(&self) -> usize {
        self.cfg.windows
    }

    /// Start of window `w` (exact integer split of the day).
    pub fn window_start(&self, w: usize) -> SimTime {
        SimTime::from_micros(self.cfg.day.as_micros() * w as u64 / self.cfg.windows as u64)
    }

    /// End of window `w` (== start of `w + 1`; the last ends at `day`).
    pub fn window_end(&self, w: usize) -> SimTime {
        self.window_start(w + 1)
    }

    /// Length of window `w` in seconds.
    pub fn window_secs(&self, w: usize) -> f64 {
        self.window_end(w)
            .saturating_since(self.window_start(w))
            .as_secs_f64()
    }

    /// Diurnal base demand of window `w` (queries).
    pub fn base(&self, w: usize) -> u64 {
        self.base[w]
    }

    /// Flash-crowd extra demand of window `w` (queries).
    pub fn flash(&self, w: usize) -> u64 {
        self.flash[w]
    }

    /// Total demand of window `w`: base plus flash extras.
    pub fn demand(&self, w: usize) -> u64 {
        self.base[w] + self.flash[w]
    }

    /// Sum of the diurnal base — exactly `round(users × queries_per_user)`.
    pub fn base_total(&self) -> u64 {
        self.base.iter().sum()
    }

    /// Sum of base and flash demand across the day.
    pub fn total(&self) -> u64 {
        self.base_total() + self.flash.iter().sum::<u64>()
    }

    /// The seeded flash crowds.
    pub fn crowds(&self) -> &[FlashCrowd] {
        &self.crowds
    }

    /// `(window, demand)` of the busiest window (lowest index on ties).
    pub fn peak(&self) -> (usize, u64) {
        let mut best = (0usize, 0u64);
        for w in 0..self.cfg.windows {
            let d = self.demand(w);
            if d > best.1 {
                best = (w, d);
            }
        }
        best
    }

    /// Demand rate of the busiest window, queries per sim-second.
    pub fn peak_rps(&self) -> f64 {
        let (w, d) = self.peak();
        d as f64 / self.window_secs(w)
    }

    /// Mean demand rate across the day, queries per sim-second.
    pub fn mean_rps(&self) -> f64 {
        self.total() as f64 / self.cfg.day.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apportion_is_exact_and_proportional() {
        let alloc = apportion(1_000, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(alloc.iter().sum::<u64>(), 1_000);
        assert_eq!(alloc, vec![100, 200, 300, 400]);
        // Awkward weights still sum exactly.
        let alloc = apportion(997, &[0.1, 0.7, 0.3]);
        assert_eq!(alloc.iter().sum::<u64>(), 997);
    }

    #[test]
    fn base_integrates_to_daily_total() {
        for users in [1_000u64, 123_457, 1_000_000] {
            let pop = PopulationModel::new(PopulationConfig {
                users,
                queries_per_user: 3.3,
                ..PopulationConfig::default()
            });
            assert_eq!(pop.base_total(), (users as f64 * 3.3).round() as u64);
        }
    }

    #[test]
    fn diurnal_curve_has_two_peaks_and_a_floor() {
        let w = |h: f64| diurnal_weight(h / 24.0);
        assert!(w(8.5) > w(3.0) * 2.0, "morning peak towers over night");
        assert!(w(18.5) > w(3.0) * 2.0, "evening peak towers over night");
        assert!(w(13.0) < w(8.5), "midday dips between peaks");
        for h in 0..24 {
            assert!(w(h as f64) > 0.0);
        }
    }

    #[test]
    fn same_seed_same_series() {
        let a = PopulationModel::new(PopulationConfig::default());
        let b = PopulationModel::new(PopulationConfig::default());
        for w in 0..a.windows() {
            assert_eq!(a.demand(w), b.demand(w));
        }
        assert_eq!(a.crowds(), b.crowds());
    }

    #[test]
    fn flash_peak_hits_the_multiplier() {
        let cfg = PopulationConfig {
            flash_crowds: 1,
            flash_multiplier: 3.0,
            flash_width: 3,
            ..PopulationConfig::default()
        };
        let pop = PopulationModel::new(cfg);
        let crowd = pop.crowds()[0];
        let center = crowd.start + crowd.width / 2;
        let ratio = pop.demand(center) as f64 / pop.base(center) as f64;
        assert!(
            (ratio - 3.0).abs() < 0.01,
            "center window multiplies by the configured factor, got {ratio}"
        );
    }

    #[test]
    fn window_boundaries_tile_the_day() {
        let pop = PopulationModel::new(PopulationConfig::default());
        assert_eq!(pop.window_start(0), SimTime::ZERO);
        assert_eq!(
            pop.window_end(pop.windows() - 1).as_micros(),
            pop.config().day.as_micros()
        );
        for w in 1..pop.windows() {
            assert_eq!(pop.window_end(w - 1), pop.window_start(w));
        }
    }
}
