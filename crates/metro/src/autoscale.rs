//! The closed loop: burn-rate-fed autoscaling with hysteresis.
//!
//! An [`AutoscalePolicy`] watches one demand window at a time — the
//! good/bad tallies feed an [`scobserve::BurnMeter`] (Google-SRE
//! multi-window burn rates), utilization feeds threshold rules — and
//! emits [`ScaleAction`]s: add or remove serving shards, grow or shrink
//! the compute pool, or shed at the admission door. The simulation
//! applies them to the live [`scserve::Server`] via its runtime knobs.
//!
//! Three hysteresis mechanisms keep the loop stable, and each is
//! *structural* so the property tests can quantify over arbitrary
//! telemetry streams rather than hand-picked traces:
//!
//! - **One action per window.** A single window can never both add and
//!   remove capacity.
//! - **Cooldown.** After any fleet change, further fleet changes wait
//!   `cooldown` windows.
//! - **Age-gated removal.** Only shards the policy itself added are
//!   removable, tracked in a LIFO stack with their birth window; a shard
//!   younger than `cooldown` windows cannot be removed. Add→remove
//!   flapping of the same shard inside the hysteresis window is
//!   impossible by construction.
//!
//! Every emitted action is recorded as a [`ScaleDecision`] whose
//! `Display` line uses fixed-precision formatting, so identical seeds
//! produce byte-identical decision logs at any thread count or SIMD ISA.

use std::fmt;

use scobserve::{BurnMeter, BurnSignal, SloRule};
use simclock::SimTime;

/// Closed-loop knobs.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Fleet floor; the policy never shrinks below this.
    pub min_shards: usize,
    /// Fleet ceiling; the policy never grows past this.
    pub max_shards: usize,
    /// Compute-pool floor (scpar workers).
    pub min_pool: usize,
    /// Compute-pool ceiling.
    pub max_pool: usize,
    /// Utilization at or above which the loop scales up.
    pub scale_up_util: f64,
    /// Utilization at or below which the loop may scale down.
    pub scale_down_util: f64,
    /// Windows any fleet change must wait after the previous one.
    pub cooldown: u64,
    /// Windows a scale-up must settle before voluntary shrink.
    pub settle: u64,
    /// The SLO whose burn rate drives emergency scale-ups.
    pub slo: SloRule,
    /// Admission-rate multiplier while shedding (fraction kept).
    pub shed_fraction: f64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            min_shards: 2,
            max_shards: 16,
            min_pool: 1,
            max_pool: 8,
            scale_up_util: 0.85,
            scale_down_util: 0.45,
            cooldown: 2,
            settle: 3,
            slo: SloRule::availability("metro/serve", 0.99)
                .with_windows(simclock::SimDuration::from_secs(60), 4)
                .with_burn_threshold(2.0),
            shed_fraction: 0.5,
        }
    }
}

/// One actuation the policy asks the plant to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Join a new serving shard under this node id.
    AddShard {
        /// Node id of the joining shard.
        node: u32,
    },
    /// Retire this serving shard.
    RemoveShard {
        /// Node id of the departing shard.
        node: u32,
    },
    /// Resize the compute pool up to this many workers.
    GrowPool {
        /// New worker count.
        workers: usize,
    },
    /// Resize the compute pool down to this many workers.
    ShrinkPool {
        /// New worker count.
        workers: usize,
    },
    /// Shed at the admission door, keeping this fraction of the rate.
    Shed {
        /// Admission-rate fraction kept, in thousandths (deterministic).
        keep_millis: u32,
    },
    /// Lift admission-control shedding.
    Restore,
}

impl fmt::Display for ScaleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleAction::AddShard { node } => write!(f, "add_shard({node})"),
            ScaleAction::RemoveShard { node } => write!(f, "remove_shard({node})"),
            ScaleAction::GrowPool { workers } => write!(f, "grow_pool({workers})"),
            ScaleAction::ShrinkPool { workers } => write!(f, "shrink_pool({workers})"),
            ScaleAction::Shed { keep_millis } => {
                write!(
                    f,
                    "shed(keep={}.{:03})",
                    keep_millis / 1000,
                    keep_millis % 1000
                )
            }
            ScaleAction::Restore => write!(f, "restore"),
        }
    }
}

/// One logged scaling decision: the action plus the evidence behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleDecision {
    /// Demand window index the decision was made in.
    pub window: u64,
    /// Sim-time of the window boundary.
    pub at: SimTime,
    /// The actuation emitted.
    pub action: ScaleAction,
    /// Short-window burn rate at decision time.
    pub burn_short: f64,
    /// Long-window burn rate at decision time.
    pub burn_long: f64,
    /// Plant utilization (offered load over capacity) at decision time.
    pub utilization: f64,
    /// Serving shards after the action.
    pub shards: usize,
    /// Pool workers after the action.
    pub pool: usize,
}

impl fmt::Display for ScaleDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "w{:04} t={:>12}us {:<18} burn={:.4}/{:.4} util={:.4} shards={} pool={}",
            self.window,
            self.at.as_micros(),
            self.action.to_string(),
            self.burn_short,
            self.burn_long,
            self.utilization,
            self.shards,
            self.pool,
        )
    }
}

/// The policy engine; see the module docs for the hysteresis contract.
///
/// # Examples
///
/// ```
/// use scmetro::{AutoscaleConfig, AutoscalePolicy, ScaleAction};
/// use simclock::SimTime;
///
/// let mut policy = AutoscalePolicy::new(AutoscaleConfig::default(), 4, 2, 100);
/// // A healthy, hot window forces a scale-up.
/// let actions = policy.observe(0, SimTime::ZERO, 1_000, 0, 0.95);
/// assert_eq!(actions, vec![ScaleAction::AddShard { node: 100 }]);
/// // The very next window is cool, but the cooldown holds the fleet.
/// assert!(policy.observe(1, SimTime::from_secs(60), 10, 0, 0.10).is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct AutoscalePolicy {
    cfg: AutoscaleConfig,
    meter: BurnMeter,
    shards: usize,
    pool: usize,
    shedding: bool,
    /// Window of the most recent fleet (shard) change.
    last_fleet_change: Option<u64>,
    /// Window of the most recent pool change.
    last_pool_change: Option<u64>,
    /// Shards this policy added, LIFO, with their birth windows.
    added: Vec<(u32, u64)>,
    next_node: u32,
    decisions: Vec<ScaleDecision>,
    /// One burn signal per observed window, in window order.
    signals: Vec<BurnSignal>,
}

impl AutoscalePolicy {
    /// A policy starting from `shards` serving shards and `pool` compute
    /// workers; new shards take node ids from `next_node` upward.
    pub fn new(cfg: AutoscaleConfig, shards: usize, pool: usize, next_node: u32) -> Self {
        let meter = BurnMeter::new(cfg.slo.clone());
        AutoscalePolicy {
            shards: shards.max(cfg.min_shards.min(shards)),
            pool: pool.clamp(cfg.min_pool, cfg.max_pool),
            cfg,
            meter,
            shedding: false,
            last_fleet_change: None,
            last_pool_change: None,
            added: Vec::new(),
            next_node,
            decisions: Vec::new(),
            signals: Vec::new(),
        }
    }

    /// Current serving-shard count as the policy believes it.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Current compute-pool worker count.
    pub fn pool(&self) -> usize {
        self.pool
    }

    /// Whether admission-control shedding is currently engaged.
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    /// Every decision taken so far, in order.
    pub fn decisions(&self) -> &[ScaleDecision] {
        &self.decisions
    }

    /// Every burn signal observed so far, one per window in window order
    /// — the closed-loop record a flight recorder stores and the
    /// series-based batch evaluation (`scobserve::burn_over_series`) must
    /// reproduce bit for bit.
    pub fn signals(&self) -> &[BurnSignal] {
        &self.signals
    }

    /// The deterministic decision log, one `Display` line per decision.
    pub fn decision_log(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }

    fn elapsed(window: u64, since: Option<u64>) -> u64 {
        match since {
            None => u64::MAX,
            Some(w) => window.saturating_sub(w),
        }
    }

    fn log(&mut self, window: u64, at: SimTime, action: ScaleAction, sig: &BurnSignal, util: f64) {
        self.decisions.push(ScaleDecision {
            window,
            at,
            action,
            burn_short: sig.burn_short,
            burn_long: sig.burn_long,
            utilization: util,
            shards: self.shards,
            pool: self.pool,
        });
    }

    /// Feeds one window's evidence and returns the actions to apply.
    ///
    /// `good`/`bad` are the window's SLO tallies (answered vs shed or
    /// degraded); `utilization` is offered load over current capacity.
    /// At most one shard action and one pool/shed action are emitted per
    /// window, and all hysteresis rules from the module docs hold.
    pub fn observe(
        &mut self,
        window: u64,
        at: SimTime,
        good: usize,
        bad: usize,
        utilization: f64,
    ) -> Vec<ScaleAction> {
        let sig = self.meter.observe(good, bad);
        self.signals.push(sig);
        let mut actions = Vec::new();
        let fleet_ok = Self::elapsed(window, self.last_fleet_change) >= self.cfg.cooldown;
        let pool_ok = Self::elapsed(window, self.last_pool_change) >= self.cfg.cooldown;
        let settled = Self::elapsed(window, self.last_fleet_change) >= self.cfg.settle
            && Self::elapsed(window, self.last_pool_change) >= self.cfg.settle;

        let up = utilization >= self.cfg.scale_up_util || sig.violating;
        let down = utilization <= self.cfg.scale_down_util && !sig.violating;

        if up {
            if self.shards < self.cfg.max_shards && fleet_ok {
                let node = self.next_node;
                self.next_node += 1;
                self.shards += 1;
                self.added.push((node, window));
                self.last_fleet_change = Some(window);
                let a = ScaleAction::AddShard { node };
                self.log(window, at, a, &sig, utilization);
                actions.push(a);
            } else if self.pool < self.cfg.max_pool && pool_ok {
                self.pool += 1;
                self.last_pool_change = Some(window);
                let a = ScaleAction::GrowPool { workers: self.pool };
                self.log(window, at, a, &sig, utilization);
                actions.push(a);
            } else if !self.shedding {
                self.shedding = true;
                let keep_millis = (self.cfg.shed_fraction * 1000.0).round() as u32;
                let a = ScaleAction::Shed { keep_millis };
                self.log(window, at, a, &sig, utilization);
                actions.push(a);
            }
        } else if down {
            if self.shedding {
                self.shedding = false;
                let a = ScaleAction::Restore;
                self.log(window, at, a, &sig, utilization);
                actions.push(a);
            } else if self.pool > self.cfg.min_pool && pool_ok && settled {
                self.pool -= 1;
                self.last_pool_change = Some(window);
                let a = ScaleAction::ShrinkPool { workers: self.pool };
                self.log(window, at, a, &sig, utilization);
                actions.push(a);
            } else if settled && fleet_ok && self.shards > self.cfg.min_shards {
                // Only a shard this policy added, and only once it has
                // outlived the hysteresis window, may be retired.
                let removable = self
                    .added
                    .last()
                    .is_some_and(|(_, born)| window.saturating_sub(*born) >= self.cfg.cooldown);
                if removable {
                    let (node, _) = self.added.pop().expect("checked non-empty");
                    self.shards -= 1;
                    self.last_fleet_change = Some(window);
                    let a = ScaleAction::RemoveShard { node };
                    self.log(window, at, a, &sig, utilization);
                    actions.push(a);
                }
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simclock::SimDuration;

    fn hot() -> (usize, usize, f64) {
        (100, 0, 0.95)
    }
    fn cold() -> (usize, usize, f64) {
        (100, 0, 0.10)
    }

    fn policy() -> AutoscalePolicy {
        AutoscalePolicy::new(AutoscaleConfig::default(), 4, 2, 100)
    }

    fn at(w: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(60 * w)
    }

    #[test]
    fn scales_up_on_utilization_and_respects_cooldown() {
        let mut p = policy();
        let (g, b, u) = hot();
        assert_eq!(
            p.observe(0, at(0), g, b, u),
            vec![ScaleAction::AddShard { node: 100 }]
        );
        // Cooldown (2 windows) diverts pressure to the pool, not a shard.
        assert_eq!(
            p.observe(1, at(1), g, b, u),
            vec![ScaleAction::GrowPool { workers: 3 }]
        );
        assert_eq!(
            p.observe(2, at(2), g, b, u),
            vec![ScaleAction::AddShard { node: 101 }]
        );
        assert_eq!(p.shards(), 6);
    }

    #[test]
    fn sheds_when_fleet_and_pool_are_capped() {
        let cfg = AutoscaleConfig {
            max_shards: 4,
            max_pool: 2,
            ..AutoscaleConfig::default()
        };
        let mut p = AutoscalePolicy::new(cfg, 4, 2, 100);
        let (g, b, u) = hot();
        assert_eq!(
            p.observe(0, at(0), g, b, u),
            vec![ScaleAction::Shed { keep_millis: 500 }]
        );
        assert!(p.shedding());
        // Shed is latched: no duplicate shed actions while hot.
        assert!(p.observe(1, at(1), g, b, u).is_empty());
        // Cooling restores admission before anything shrinks.
        let (g, b, u) = cold();
        assert_eq!(p.observe(2, at(2), g, b, u), vec![ScaleAction::Restore]);
    }

    #[test]
    fn young_shards_are_never_removed() {
        let mut p = policy();
        let (g, b, u) = hot();
        p.observe(0, at(0), g, b, u); // adds shard 100 at window 0
        let (g, b, u) = cold();
        // Settle is 3 windows; even after it passes, removal also needs
        // the shard itself to be cooldown-old — window 1 and 2 emit nothing.
        assert!(p.observe(1, at(1), g, b, u).is_empty());
        assert!(p.observe(2, at(2), g, b, u).is_empty());
        // Window 3: settled, shard 100 is 3 ≥ cooldown windows old, but the
        // pool shrinks first (LIFO of cheapness).
        assert_eq!(
            p.observe(3, at(3), g, b, u),
            vec![ScaleAction::ShrinkPool { workers: 1 }]
        );
        // Pool at floor ⇒ window 6 (pool change re-arms settle) retires it.
        assert!(p.observe(4, at(4), g, b, u).is_empty());
        assert!(p.observe(5, at(5), g, b, u).is_empty());
        assert_eq!(
            p.observe(6, at(6), g, b, u),
            vec![ScaleAction::RemoveShard { node: 100 }]
        );
        assert_eq!(p.shards(), 4);
    }

    #[test]
    fn burn_violation_forces_scale_up_even_at_low_utilization() {
        let mut p = policy();
        // Warm the meter with healthy windows.
        for w in 0..4 {
            let acts = p.observe(w, at(w), 100, 0, 0.50);
            assert!(acts.is_empty(), "mid utilization, healthy: no action");
        }
        // A 50% failure window burns budget 50× over: both windows
        // violate immediately, and the loop scales up at mid utilization.
        let acts = p.observe(4, at(4), 50, 50, 0.50);
        assert_eq!(acts, vec![ScaleAction::AddShard { node: 100 }]);
    }

    #[test]
    fn decision_log_is_stable() {
        let run = || {
            let mut p = policy();
            for w in 0..20 {
                let (g, b, u) = if w % 5 < 3 { hot() } else { cold() };
                p.observe(w, at(w), g, b, u);
            }
            p.decision_log()
        };
        let a = run();
        assert_eq!(a, run(), "same inputs, byte-identical log");
        assert!(a.contains("add_shard(100)"));
    }
}
