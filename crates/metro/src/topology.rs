//! Capacity planning: sizing the pipeline for a population.
//!
//! The source paper's cyberinfrastructure was sized by hand — so many
//! Kafka partitions per broker, so many HBase region servers — from
//! design guidelines and measured per-node throughput. [`TopologyPlan`]
//! encodes that arithmetic: given a [`PopulationModel`]'s demand series
//! and per-component [`SizingGuidelines`], it derives the broker count,
//! partition count, DFS footprint, and the *initial* serving-shard fleet.
//!
//! The plan deliberately sizes the serving tier for the **mean** rate
//! plus headroom, not the peak: the Metropolis benchmark's whole point
//! is that the diurnal peaks and flash crowds *exceed* the static plan
//! and must be absorbed by the closed-loop autoscaler
//! ([`crate::AutoscalePolicy`]), not by over-provisioning.

use crate::population::PopulationModel;

/// Measured-throughput design guidelines, per component.
#[derive(Debug, Clone)]
pub struct SizingGuidelines {
    /// Events per sim-second one stream partition sustains.
    pub partition_capacity_eps: f64,
    /// Partitions one broker hosts comfortably.
    pub partitions_per_broker: usize,
    /// DFS replication factor for the archived event log.
    pub dfs_replication: usize,
    /// DFS block size in bytes.
    pub dfs_block_size: usize,
    /// Mean serialized event size in bytes (sizes the daily archive).
    pub bytes_per_event: u64,
    /// Requests per sim-second one serving shard sustains.
    pub per_shard_rps: f64,
    /// Capacity margin over the mean rate the static plan provisions.
    pub headroom: f64,
}

impl Default for SizingGuidelines {
    fn default() -> Self {
        SizingGuidelines {
            partition_capacity_eps: 50.0,
            partitions_per_broker: 8,
            dfs_replication: 3,
            dfs_block_size: 64 * 1024,
            bytes_per_event: 256,
            per_shard_rps: 15.0,
            headroom: 1.2,
        }
    }
}

/// The derived static deployment plan.
///
/// # Examples
///
/// ```
/// use scmetro::{PopulationConfig, PopulationModel, SizingGuidelines, TopologyPlan};
///
/// let pop = PopulationModel::new(PopulationConfig::default());
/// let plan = TopologyPlan::size(&pop, &SizingGuidelines::default());
/// assert!(plan.initial_shards >= 1);
/// // Mean-plus-headroom sizing leaves the diurnal peak for the autoscaler.
/// assert!(plan.peak_rps > plan.initial_shards as f64 * plan.guidelines.per_shard_rps);
/// ```
#[derive(Debug, Clone)]
pub struct TopologyPlan {
    /// Stream partitions needed to absorb the peak ingest rate.
    pub partitions: usize,
    /// Brokers hosting those partitions.
    pub brokers: usize,
    /// DFS data nodes (≥ replication, sized for the daily archive).
    pub dfs_nodes: usize,
    /// Serving shards the static plan provisions (mean × headroom).
    pub initial_shards: usize,
    /// Peak demand rate the plan was derived from, queries per second.
    pub peak_rps: f64,
    /// Mean demand rate, queries per second.
    pub mean_rps: f64,
    /// Bytes the day's events occupy on the DFS before replication.
    pub archive_bytes: u64,
    /// The guidelines the plan was derived from.
    pub guidelines: SizingGuidelines,
}

impl TopologyPlan {
    /// Derives a plan for `pop` under `g`.
    pub fn size(pop: &PopulationModel, g: &SizingGuidelines) -> TopologyPlan {
        let peak_rps = pop.peak_rps();
        let mean_rps = pop.mean_rps();
        let partitions = (peak_rps / g.partition_capacity_eps).ceil().max(1.0) as usize;
        let brokers = partitions.div_ceil(g.partitions_per_broker.max(1));
        let archive_bytes = pop.total() * g.bytes_per_event;
        // One data node per ~64 MiB of replicated archive, floored at the
        // replication factor so every block has distinct homes.
        let replicated = archive_bytes.saturating_mul(g.dfs_replication as u64);
        let dfs_nodes = (replicated.div_ceil(64 * 1024 * 1024) as usize).max(g.dfs_replication);
        let initial_shards = ((mean_rps * g.headroom) / g.per_shard_rps).ceil().max(1.0) as usize;
        TopologyPlan {
            partitions,
            brokers,
            dfs_nodes,
            initial_shards,
            peak_rps,
            mean_rps,
            archive_bytes,
            guidelines: g.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;

    #[test]
    fn plan_scales_with_population() {
        let small = PopulationModel::new(PopulationConfig {
            users: 100_000,
            ..PopulationConfig::default()
        });
        let large = PopulationModel::new(PopulationConfig {
            users: 10_000_000,
            ..PopulationConfig::default()
        });
        let g = SizingGuidelines::default();
        let sp = TopologyPlan::size(&small, &g);
        let lp = TopologyPlan::size(&large, &g);
        assert!(lp.partitions > sp.partitions);
        assert!(lp.initial_shards > sp.initial_shards);
        assert!(lp.archive_bytes > sp.archive_bytes);
        assert!(lp.dfs_nodes >= g.dfs_replication);
    }

    #[test]
    fn plan_underprovisions_the_peak_on_purpose() {
        let pop = PopulationModel::new(PopulationConfig::default());
        let g = SizingGuidelines::default();
        let plan = TopologyPlan::size(&pop, &g);
        let static_capacity = plan.initial_shards as f64 * g.per_shard_rps;
        assert!(static_capacity >= plan.mean_rps, "mean is covered");
        assert!(
            static_capacity < plan.peak_rps,
            "the peak must exceed the static plan so autoscaling has work to do"
        );
    }

    #[test]
    fn brokers_cover_partitions() {
        let pop = PopulationModel::new(PopulationConfig::default());
        let plan = TopologyPlan::size(&pop, &SizingGuidelines::default());
        assert!(plan.brokers * plan.guidelines.partitions_per_broker >= plan.partitions);
    }
}
