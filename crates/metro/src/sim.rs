//! The Metropolis macro-simulation: a full day of city demand through
//! the whole stack, with the autoscaling loop closed.
//!
//! [`MetroSim`] wires every layer of the repo together on sim-time:
//! a [`PopulationModel`]'s demand series drives a
//! [`scstream::Broker`] (ingest), an [`scdfs::DfsCluster`] (archival), an
//! [`scserve::Server`] with an attached [`scneural`] model (queries and
//! inference), all under one shared [`scfault::FaultPlan`]. Each demand
//! window's good/bad tallies and utilization feed the
//! [`AutoscalePolicy`], whose actions are applied
//! back to the live server through its runtime knobs — shards join and
//! leave the hash ring, the scpar pool resizes through [`ExecCtx`], and
//! admission control sheds at the door.
//!
//! # Sampled execution
//!
//! A million-user day is ~4 M queries; executing each one would make the
//! benchmark minutes long. Instead the simulation *plans* at full
//! population scale and *executes* a deterministic sample:
//! `sample_total` requests are apportioned across windows exactly
//! proportional to demand (largest-remainder, like the population model
//! itself), and the server's service rate is expressed in the same
//! sample units. Utilization — the autoscaler's main input — is computed
//! from the full-population rates, so the scaling trace is the trace the
//! full-scale system would produce.
//!
//! # The flight recorder
//!
//! The day's trajectory is not tallied by hand: every request outcome
//! increments a cumulative counter recorded into an [`sctsdb::Tsdb`] at
//! each window close (plus shard/pool/utilization/burn gauges and a raw
//! answered-latency series), and *everything derived* — the per-window
//! [`WindowStats`], the policy's good/bad inputs, the report's
//! answered/unanswered/p50/p99 — is computed back out of that store with
//! [`sctsdb::increase`]/[`sctsdb::quantile_over_time`] queries.
//! Recording rules (`metro:rps`, `metro:shed_fraction`, `metro:p50_ms`,
//! `metro:p99_ms`) materialise the headline trajectory at each close.
//! [`MetroSim::run_with_flight`] returns the store as a
//! [`FlightRecorder`]; E19 writes it next to its BENCH JSON as
//! `flight_seed42.tsdb.json`. Attach a full [`sctelemetry::Telemetry`]
//! with [`MetroSim::with_recorder`] and a [`sctsdb::Scraper`] also
//! snapshots the whole metrics registry (serving, ingest, cache, pool
//! counters) into the same flight at every window close.
//!
//! # Determinism
//!
//! The simulation never reads the environment. The pool size the policy
//! controls is its own integer (applied via `ScparConfig::with_threads`,
//! a pure perf knob), so the decision log, the report, the exported
//! Prometheus text, and the flight-recorder artifact are byte-identical
//! at any `SCPAR_THREADS` or `SCSIMD_FORCE` setting.

use std::collections::BTreeMap;
use std::sync::Arc;

use scdfs::{ClusterStats, DfsCluster};
use scfault::{FaultPlan, FaultSpec, OutageWindows, RetryPolicy};
use scneural::exec::ExecCtx;
use scneural::layers::{Dense, Relu};
use scneural::net::Sequential;
use scnosql::document::{Doc, Filter};
use scpar::ScparConfig;
use scserve::{CacheConfig, InferSubmit, ServeConfig, Server};
use scstream::{audit_delivery, Broker, Event, ResilientProducer, SendOutcome, Topic};
use sctelemetry::{MetricsRegistry, Telemetry, TelemetryHandle};
use sctsdb::{
    increase, last_over_time, quantile_over_time, FlightRecorder, RecordingRule, RuleEngine,
    RuleExpr, Scraper, Series, SeriesId, Tsdb,
};
use serde_json::json;
use simclock::{SeededRng, SimDuration, SimTime};

use crate::autoscale::{AutoscaleConfig, AutoscalePolicy, ScaleAction, ScaleDecision};
use crate::population::{apportion, PopulationConfig, PopulationModel};
use crate::topology::{SizingGuidelines, TopologyPlan};

/// The four query kinds city residents issue (mirrors the serving
/// workload generator so cache behavior matches E17).
const KINDS: [&str; 4] = ["traffic", "air", "camera", "event"];

/// Node id the ingest broker occupies in the shared fault plan.
const BROKER_NODE: u32 = 0;

/// First node id the autoscaler hands to joining shards; far above any
/// statically planned fleet so ids never collide.
const SCALE_NODE_BASE: u32 = 1_000;

/// Everything a Metropolis run needs.
#[derive(Debug, Clone)]
pub struct MetroConfig {
    /// Master seed; forks every stream the run draws from.
    pub seed: u64,
    /// The demand side.
    pub population: PopulationConfig,
    /// Static capacity-planning guidelines.
    pub sizing: SizingGuidelines,
    /// The closed loop.
    pub autoscale: AutoscaleConfig,
    /// Requests actually executed across the day (sampled execution).
    pub sample_total: u64,
    /// Distinct serving keys.
    pub keyspace: usize,
    /// Key-popularity skew (see [`scserve::WorkloadConfig`]).
    pub skew: f64,
    /// Fraction of requests that are writes.
    pub write_fraction: f64,
    /// Fraction of requests that are inference submissions.
    pub infer_fraction: f64,
    /// Feature-row width for inference.
    pub feature_dim: usize,
    /// Distinct circulating feature rows.
    pub row_pool: usize,
    /// Fault schedule; `None` generates one from `fault_intensity`.
    pub fault_plan: Option<FaultPlan>,
    /// Intensity knob for the generated plan (ignored when a plan is
    /// supplied).
    pub fault_intensity: f64,
}

impl Default for MetroConfig {
    fn default() -> Self {
        MetroConfig {
            seed: 42,
            population: PopulationConfig::default(),
            sizing: SizingGuidelines::default(),
            autoscale: AutoscaleConfig::default(),
            sample_total: 20_000,
            keyspace: 200,
            skew: 1.0,
            write_fraction: 0.05,
            infer_fraction: 0.2,
            feature_dim: 8,
            row_pool: 32,
            fault_plan: None,
            fault_intensity: 1.0,
        }
    }
}

/// One demand window's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// Window index.
    pub window: u64,
    /// Full-population demand (queries).
    pub demand: u64,
    /// Requests actually executed.
    pub sampled: u64,
    /// Answered requests (fresh, cached, stale, or degraded).
    pub good: u64,
    /// Requests that got nothing at all.
    pub bad: u64,
    /// Offered full-population load over current capacity.
    pub utilization: f64,
    /// Serving shards at the window's close.
    pub shards: usize,
    /// Pool workers at the window's close.
    pub pool: usize,
}

impl WindowStats {
    /// `bad / sampled` (0 for an empty window).
    pub fn shed_fraction(&self) -> f64 {
        if self.sampled == 0 {
            0.0
        } else {
            self.bad as f64 / self.sampled as f64
        }
    }
}

/// The distilled outcome of one Metropolis day.
#[derive(Debug, Clone, PartialEq)]
pub struct MetroReport {
    /// Simulated residents.
    pub users: u64,
    /// Daily diurnal-base queries (exact).
    pub daily_queries: u64,
    /// Full-population demand including flash crowds.
    pub total_demand: u64,
    /// Requests actually executed.
    pub sampled_requests: u64,
    /// Peak full-population demand rate, queries per sim-second.
    pub peak_rps: f64,
    /// Mean full-population demand rate.
    pub mean_rps: f64,
    /// Median answered latency, sim-milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile answered latency, sim-milliseconds.
    pub p99_ms: f64,
    /// Answered requests.
    pub answered: u64,
    /// Requests that got nothing.
    pub unanswered: u64,
    /// `unanswered / sampled_requests`.
    pub shed_fraction: f64,
    /// Shards the loop added / removed.
    pub shards_added: u64,
    /// Shards the loop removed.
    pub shards_removed: u64,
    /// Pool grow / shrink actions.
    pub pool_resizes: u64,
    /// Shed / restore actions at the admission door.
    pub shed_actions: u64,
    /// Fleet size at the day's close.
    pub final_shards: usize,
    /// Pool size at the day's close.
    pub final_pool: usize,
    /// Sim-seconds from the last serve-fleet outage's end to the first
    /// subsequent window with zero shed (0 when the day had no outage).
    pub recovery_s: f64,
    /// Ingest events acknowledged end-to-end.
    pub delivered: usize,
    /// Duplicate ingest copies (lost acks).
    pub duplicates: usize,
    /// Ingest events lost outright.
    pub lost: usize,
    /// Archive-cluster state at the day's close.
    pub dfs: ClusterStats,
    /// Every scaling decision, in order.
    pub decisions: Vec<ScaleDecision>,
    /// Per-window outcomes.
    pub windows: Vec<WindowStats>,
}

impl MetroReport {
    /// The deterministic scaling-decision log, one line per decision.
    pub fn decision_log(&self) -> String {
        let mut out = String::new();
        for d in &self.decisions {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

/// The wired-up city; see the module docs.
///
/// # Examples
///
/// ```
/// use scmetro::{MetroConfig, MetroSim, PopulationConfig};
///
/// let cfg = MetroConfig {
///     population: PopulationConfig { users: 50_000, windows: 24, ..PopulationConfig::default() },
///     sample_total: 2_000,
///     ..MetroConfig::default()
/// };
/// let report = MetroSim::new(cfg.clone()).run();
/// assert_eq!(report.sampled_requests, 2_000);
/// // Same seed, byte-identical scaling trace.
/// assert_eq!(report.decision_log(), MetroSim::new(cfg).run().decision_log());
/// ```
#[derive(Debug)]
pub struct MetroSim {
    cfg: MetroConfig,
    pop: PopulationModel,
    plan: TopologyPlan,
    faults: FaultPlan,
    telemetry: TelemetryHandle,
    registry: Option<MetricsRegistry>,
}

impl MetroSim {
    /// Plans the topology and fault schedule for `cfg`.
    pub fn new(cfg: MetroConfig) -> Self {
        let pop = PopulationModel::new(cfg.population.clone());
        let plan = TopologyPlan::size(&pop, &cfg.sizing);
        let faults = cfg.fault_plan.clone().unwrap_or_else(|| {
            FaultPlan::generate(
                &FaultSpec::new(cfg.population.day, plan.initial_shards as u32)
                    .intensity(cfg.fault_intensity),
                cfg.seed,
            )
        });
        MetroSim {
            cfg,
            pop,
            plan,
            faults,
            telemetry: TelemetryHandle::disabled(),
            registry: None,
        }
    }

    /// Attaches telemetry; serving and ingest metrics flow into it.
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a full recorder: telemetry flows into it *and* its
    /// metrics registry is scraped into the flight recorder at every
    /// window close (a [`Scraper`] in the loop).
    pub fn with_recorder(mut self, recorder: &Arc<Telemetry>) -> Self {
        self.telemetry = recorder.handle();
        self.registry = Some(recorder.registry().clone());
        self
    }

    /// The demand model the run will execute.
    pub fn population(&self) -> &PopulationModel {
        &self.pop
    }

    /// The static deployment plan.
    pub fn topology(&self) -> &TopologyPlan {
        &self.plan
    }

    /// The fault schedule the run will suffer.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    fn model(dim: usize) -> Sequential {
        Sequential::new()
            .with(Dense::new(dim, 16, 1_901))
            .with(Relu::new())
            .with(Dense::new(16, 4, 1_902))
    }

    /// Full-population capacity at `shards` serving shards and `pool`
    /// compute workers, queries per sim-second.
    fn capacity_rps(&self, shards: usize, pool: usize) -> f64 {
        let pool_factor = 1.0 + 0.25 * pool.saturating_sub(self.cfg.autoscale.min_pool) as f64;
        self.plan.guidelines.per_shard_rps * shards as f64 * pool_factor
    }

    fn ctx_for_pool(pool: usize) -> ExecCtx {
        let par = if pool <= 1 {
            ScparConfig::serial()
        } else {
            ScparConfig::with_threads(pool)
        };
        ExecCtx::serial().with_par(par)
    }

    /// Runs the day and distils it into a [`MetroReport`].
    ///
    /// # Panics
    ///
    /// Panics on internal arithmetic bugs only; every generated document,
    /// filter, and DFS write is valid by construction.
    pub fn run(self) -> MetroReport {
        self.run_with_flight().0
    }

    /// Runs the day and returns the report plus the flight recorder
    /// holding every trajectory series the report was derived from (see
    /// the module docs).
    pub fn run_with_flight(self) -> (MetroReport, FlightRecorder) {
        let cfg = &self.cfg;
        let pop = &self.pop;
        let windows = pop.windows();
        let total_demand = pop.total().max(1);
        let ratio = cfg.sample_total as f64 / total_demand as f64;

        // Exact per-window sample counts, proportional to demand.
        let weights: Vec<f64> = (0..windows).map(|w| pop.demand(w) as f64).collect();
        let samples = apportion(cfg.sample_total, &weights);

        // --- The plant. -------------------------------------------------
        let mut policy = AutoscalePolicy::new(
            cfg.autoscale.clone(),
            self.plan.initial_shards,
            cfg.autoscale.min_pool,
            SCALE_NODE_BASE,
        );
        let mut shards = self.plan.initial_shards;
        let mut pool = cfg.autoscale.min_pool;
        let capacity_sample = |s: usize, p: usize| (self.capacity_rps(s, p) * ratio).max(1e-9);
        let nominal_rate = |s: usize, p: usize| 4.0 * capacity_sample(s, p);

        let mut server = Server::new(ServeConfig {
            shards: shards as u32,
            rate_per_s: nominal_rate(shards, pool),
            burst: 64.0,
            service_rate: capacity_sample(shards, pool),
            queue_capacity: 64,
            query_cache: CacheConfig {
                ttl: SimDuration::from_secs(300),
                ..CacheConfig::default()
            },
            ..ServeConfig::default()
        })
        .with_model(Self::model(cfg.feature_dim))
        .with_ctx(Self::ctx_for_pool(pool))
        .with_fault_plan(&self.faults)
        .with_telemetry(self.telemetry.clone());

        let mut broker = Broker::new(
            Topic::new("metro/ingest", self.plan.partitions as u32),
            BROKER_NODE,
            &self.faults,
        )
        .with_telemetry(self.telemetry.clone());
        let mut producer = ResilientProducer::new(
            "metro",
            RetryPolicy::new(4, SimDuration::from_millis(50)).with_jitter(0.0),
            cfg.seed ^ 0x16E5_7001,
        );

        let mut dfs = DfsCluster::new(
            self.plan.dfs_nodes,
            self.plan.guidelines.dfs_replication,
            self.plan.guidelines.dfs_block_size,
            cfg.seed ^ 0xD5,
        )
        .expect("topology plan sizes a valid cluster");
        dfs.create("/metro/day.log", b"metropolis\n")
            .expect("fresh namespace");

        // --- Seeded request streams. ------------------------------------
        let mut rng = SeededRng::new(cfg.seed ^ 0x3E7_2070);
        let mut row_rng = rng.fork();
        let rows: Vec<Vec<f32>> = (0..cfg.row_pool.max(1))
            .map(|_| {
                (0..cfg.feature_dim.max(1))
                    .map(|_| row_rng.next_f64() as f32)
                    .collect()
            })
            .collect();
        let rank = |rng: &mut SeededRng, n: usize| -> usize {
            let u = rng.next_f64();
            ((n as f64 * u.powf(1.0 + cfg.skew)) as usize).min(n - 1)
        };
        // Seed the keyspace at t = 0.
        let mut serial = 0i64;
        for r in 0..cfg.keyspace {
            let kind = KINDS[rng.next_bounded(KINDS.len() as u64) as usize];
            let doc = Doc::object([
                ("kind", Doc::Str(kind.into())),
                ("v", Doc::I64(serial)),
                ("reading", Doc::F64(rng.next_f64() * 100.0)),
            ]);
            serial += 1;
            server
                .put(&format!("k-{r:05}"), doc, SimTime::ZERO)
                .expect("generated docs are valid");
        }

        // --- The day. ----------------------------------------------------
        let mut fault_cursor = 0usize;
        let fault_events = self.faults.events();
        let mut dfs_clock = SimTime::ZERO;
        let mut sends = 0u64;
        let mut delivered_sends = 0u64;

        let mut pending: BTreeMap<u64, ()> = BTreeMap::new();
        let mut shards_added = 0u64;
        let mut shards_removed = 0u64;
        let mut pool_resizes = 0u64;
        let mut shed_actions = 0u64;

        // --- The flight recorder. ----------------------------------------
        // Raw trajectory series; every derived number below comes back
        // out of this store through the query layer.
        let good_id = SeriesId::new("metro_good_total");
        let bad_id = SeriesId::new("metro_bad_total");
        let sampled_id = SeriesId::new("metro_sampled_total");
        let demand_id = SeriesId::new("metro_demand_total");
        let lat_id = SeriesId::new("metro_latency_ms");
        let shards_id = SeriesId::new("metro_shards");
        let pool_id = SeriesId::new("metro_pool");
        let util_id = SeriesId::new("metro_utilization");
        let burn_short_id = SeriesId::new("metro:burn_short");
        let burn_long_id = SeriesId::new("metro:burn_long");
        let burn_fired_id = SeriesId::new("metro:burn_fired");

        let mut db = Tsdb::with_capacity_hint(windows + 2);
        db.insert_series(Series::with_capacity(
            lat_id.clone(),
            cfg.sample_total as usize + 8,
        ));
        let (mut cum_good, mut cum_bad, mut cum_sampled, mut cum_demand) = (0u64, 0u64, 0u64, 0u64);
        for id in [&good_id, &bad_id, &sampled_id, &demand_id] {
            db.record(id, SimTime::ZERO, 0.0).expect("epoch baseline");
        }
        db.record(&shards_id, SimTime::ZERO, shards as f64)
            .expect("epoch baseline");
        db.record(&pool_id, SimTime::ZERO, pool as f64)
            .expect("epoch baseline");

        // Recording rules materialise the headline trajectory per window.
        let rules = RuleEngine::new()
            .with_rule(RecordingRule::new(
                "metro:rps",
                RuleExpr::Rate(demand_id.clone()),
            ))
            .with_rule(RecordingRule::new(
                "metro:shed_fraction",
                RuleExpr::Ratio(
                    Box::new(RuleExpr::Increase(bad_id.clone())),
                    Box::new(RuleExpr::Increase(sampled_id.clone())),
                ),
            ))
            .with_rule(RecordingRule::new(
                "metro:p50_ms",
                RuleExpr::Quantile(lat_id.clone(), 0.50),
            ))
            .with_rule(RecordingRule::new(
                "metro:p99_ms",
                RuleExpr::Quantile(lat_id.clone(), 0.99),
            ));

        // With a full recorder attached, scrape its registry in the loop.
        let mut scraper = self.registry.as_ref().map(|reg| {
            Scraper::new(reg.clone(), SimDuration::from_secs_f64(pop.window_secs(0)))
                .with_sample_capacity(windows + 2)
                .with_label("job", "metro")
        });

        for (w, &sampled) in samples.iter().enumerate() {
            let t0 = pop.window_start(w);
            let t1 = pop.window_end(w);
            let secs = pop.window_secs(w);

            // Archive layer: suffer this window's faults, heal, append.
            while fault_cursor < fault_events.len() && fault_events[fault_cursor].at < t1 {
                dfs.apply_fault(&fault_events[fault_cursor]);
                fault_cursor += 1;
            }
            dfs_clock = dfs.tick(t1.saturating_since(dfs_clock));
            dfs.re_replicate();
            let digest = vec![(w % 251) as u8; (sampled as usize).max(1)];
            // Appends may fail mid-outage when too few nodes are alive;
            // the archive is best-effort during faults, like HDFS.
            let _ = dfs.append("/metro/day.log", &digest);

            // Ingest layer: every sampled query is archived as an event.
            for i in 0..sampled {
                let at = t0
                    + SimDuration::from_micros(
                        t1.saturating_since(t0).as_micros() * i / sampled.max(1),
                    );
                let key = format!("k-{:05}", rank(&mut rng, cfg.keyspace.max(1)));
                sends += 1;
                cum_sampled += 1;
                if let SendOutcome::Delivered { .. } =
                    producer.send(&mut broker, Event::with_key(key.clone(), vec![w as u8]), at)
                {
                    delivered_sends += 1;
                }

                // Serving layer: flush due micro-batches, then issue.
                while let Some(deadline) = server.next_deadline() {
                    if deadline > at {
                        break;
                    }
                    for c in server.tick(deadline) {
                        pending.remove(&c.req.0);
                        cum_good += 1;
                        db.record(&lat_id, deadline, c.latency.as_secs_f64() * 1e3)
                            .expect("completions land in time order");
                    }
                }
                let roll = rng.next_f64();
                if roll < cfg.write_fraction {
                    let kind = KINDS[rng.next_bounded(KINDS.len() as u64) as usize];
                    let doc = Doc::object([
                        ("kind", Doc::Str(kind.into())),
                        ("v", Doc::I64(serial)),
                        ("reading", Doc::F64(rng.next_f64() * 100.0)),
                    ]);
                    serial += 1;
                    server.put(&key, doc, at).expect("generated docs are valid");
                    cum_good += 1;
                    db.record(&lat_id, at, scserve::CACHE_HIT_COST.as_secs_f64() * 1e3)
                        .expect("issue times are non-decreasing");
                } else if roll < cfg.write_fraction + cfg.infer_fraction {
                    let row = rows[rank(&mut rng, rows.len())].clone();
                    match server.infer(row, at) {
                        InferSubmit::Cached { latency, .. }
                        | InferSubmit::Stale { latency, .. } => {
                            cum_good += 1;
                            db.record(&lat_id, at, latency.as_secs_f64() * 1e3)
                                .expect("issue times are non-decreasing");
                        }
                        InferSubmit::Pending(req) => {
                            pending.insert(req.0, ());
                        }
                        InferSubmit::Shed => cum_bad += 1,
                    }
                } else if rng.next_f64() < 0.5 {
                    let served = server.get(&key, at).expect("gets cannot fail");
                    if served.outcome.is_shed() {
                        cum_bad += 1;
                    } else {
                        cum_good += 1;
                        db.record(&lat_id, at, served.latency.as_secs_f64() * 1e3)
                            .expect("issue times are non-decreasing");
                    }
                } else {
                    let kind = KINDS[rank(&mut rng, KINDS.len())];
                    let filter = Filter::Eq("kind".into(), Doc::Str(kind.into()));
                    let served = server.query(&filter, at).expect("filters are valid");
                    if served.outcome.is_shed() {
                        cum_bad += 1;
                    } else {
                        cum_good += 1;
                        db.record(&lat_id, at, served.latency.as_secs_f64() * 1e3)
                            .expect("issue times are non-decreasing");
                    }
                }
            }
            // Close the window: flush the stragglers that are due.
            while let Some(deadline) = server.next_deadline() {
                if deadline > t1 {
                    break;
                }
                for c in server.tick(deadline) {
                    pending.remove(&c.req.0);
                    cum_good += 1;
                    db.record(&lat_id, deadline, c.latency.as_secs_f64() * 1e3)
                        .expect("completions land in time order");
                }
            }

            // Snapshot the cumulative counters at the window close; the
            // policy's inputs are read back out of the store.
            cum_demand += pop.demand(w);
            db.record(&good_id, t1, cum_good as f64)
                .expect("window closes advance");
            db.record(&bad_id, t1, cum_bad as f64)
                .expect("window closes advance");
            db.record(&sampled_id, t1, cum_sampled as f64)
                .expect("window closes advance");
            db.record(&demand_id, t1, cum_demand as f64)
                .expect("window closes advance");

            // The loop closes here: evidence in, actions out. The policy's
            // good/bad inputs are window increases read back from the store,
            // not side tallies — the store is the accounting system.
            let w_good = increase(&db.samples(&good_id), t0.as_micros(), t1.as_micros()) as u64;
            let w_bad = increase(&db.samples(&bad_id), t0.as_micros(), t1.as_micros()) as u64;
            let utilization = (pop.demand(w) as f64 / secs) / self.capacity_rps(shards, pool);
            let actions =
                policy.observe(w as u64, t1, w_good as usize, w_bad as usize, utilization);
            for action in actions {
                match action {
                    ScaleAction::AddShard { node } => {
                        server.add_shard(node);
                        shards += 1;
                        shards_added += 1;
                    }
                    ScaleAction::RemoveShard { node } => {
                        server.remove_shard(node);
                        shards -= 1;
                        shards_removed += 1;
                    }
                    ScaleAction::GrowPool { workers } | ScaleAction::ShrinkPool { workers } => {
                        pool = workers;
                        server.set_ctx(Self::ctx_for_pool(pool));
                        pool_resizes += 1;
                    }
                    ScaleAction::Shed { keep_millis } => {
                        let keep = keep_millis as f64 / 1_000.0;
                        server.set_rate_limit(keep * capacity_sample(shards, pool), 8.0, t1);
                        shed_actions += 1;
                    }
                    ScaleAction::Restore => {
                        server.set_rate_limit(nominal_rate(shards, pool), 64.0, t1);
                        shed_actions += 1;
                    }
                }
            }
            // Fleet or pool changes move the service rate; sync the queue.
            server.set_service_rate(capacity_sample(shards, pool), t1);

            // Post-action fleet gauges and the policy's own burn signals.
            db.record(&util_id, t1, utilization)
                .expect("window closes advance");
            db.record(&shards_id, t1, shards as f64)
                .expect("window closes advance");
            db.record(&pool_id, t1, pool as f64)
                .expect("window closes advance");
            let sig = *policy
                .signals()
                .last()
                .expect("observe emits one signal per window");
            db.record(&burn_short_id, t1, sig.burn_short)
                .expect("window closes advance");
            db.record(&burn_long_id, t1, sig.burn_long)
                .expect("window closes advance");
            db.record(&burn_fired_id, t1, if sig.fired { 1.0 } else { 0.0 })
                .expect("window closes advance");

            // Recording rules distil the window into the `metro:*` series.
            rules.eval_window(&mut db, t0, t1);
            if let Some(sc) = scraper.as_mut() {
                sc.sync();
                sc.scrape_at(t1);
            }
        }
        // Drain whatever inference is still in flight at the day's end. The
        // tail lands one microsecond past the last window close so window
        // queries over `(t0, t1]` never see it but full-day queries do.
        let day_end = pop.window_end(windows - 1);
        let drain_at = SimTime::from_micros(day_end.as_micros() + 1);
        for c in server.drain(day_end) {
            pending.remove(&c.req.0);
            cum_good += 1;
            db.record(&lat_id, drain_at, c.latency.as_secs_f64() * 1e3)
                .expect("drain lands after the last window");
        }
        db.record(&good_id, drain_at, cum_good as f64)
            .expect("drain lands after the last window");
        debug_assert!(pending.is_empty(), "drain settles every ticket");

        // --- Distil: everything below is queries over the store. ----------
        let good_samples = db.samples(&good_id);
        let bad_samples = db.samples(&bad_id);
        let sampled_samples = db.samples(&sampled_id);
        let demand_samples = db.samples(&demand_id);
        let util_samples = db.samples(&util_id);
        let shards_samples = db.samples(&shards_id);
        let pool_samples = db.samples(&pool_id);
        let lat_samples = db.samples(&lat_id);

        let window_stats: Vec<WindowStats> = (0..windows)
            .map(|w| {
                let f = pop.window_start(w).as_micros();
                let t = pop.window_end(w).as_micros();
                WindowStats {
                    window: w as u64,
                    demand: increase(&demand_samples, f, t) as u64,
                    sampled: increase(&sampled_samples, f, t) as u64,
                    good: increase(&good_samples, f, t) as u64,
                    bad: increase(&bad_samples, f, t) as u64,
                    utilization: last_over_time(&util_samples, f, t).unwrap_or(0.0),
                    shards: last_over_time(&shards_samples, f, t).unwrap_or(0.0) as usize,
                    pool: last_over_time(&pool_samples, f, t).unwrap_or(0.0) as usize,
                }
            })
            .collect();

        let end_us = drain_at.as_micros();
        let answered = increase(&good_samples, 0, end_us) as u64;
        let unanswered = increase(&bad_samples, 0, end_us) as u64;
        let p50_ms = quantile_over_time(&lat_samples, 0, end_us, 0.50).unwrap_or(0.0);
        let p99_ms = quantile_over_time(&lat_samples, 0, end_us, 0.99).unwrap_or(0.0);

        // Recovery: last serve-fleet outage end → first clean window after.
        let outages = OutageWindows::node_crashes(&self.faults);
        let last_outage_end = (0..self.plan.initial_shards as u32)
            .flat_map(|n| outages.windows_for(n).iter().map(|&(_, e)| e))
            .max();
        let recovery_s = last_outage_end
            .map(|end| {
                window_stats
                    .iter()
                    .find(|s| pop.window_end(s.window as usize) > end && s.bad == 0)
                    .map(|s| {
                        pop.window_end(s.window as usize)
                            .saturating_since(end)
                            .as_secs_f64()
                    })
                    .unwrap_or(f64::INFINITY)
            })
            .unwrap_or(0.0);

        let audit = audit_delivery(broker.topic(), &[("metro", sends)]);
        debug_assert!(audit.delivered >= delivered_sends as usize);

        // Fold the scraped registry series into the flight artifact.
        if let Some(sc) = scraper {
            sc.export_into(&mut db);
        }
        let flight = FlightRecorder::new(db)
            .with_meta("bench", json!("e19_metropolis"))
            .with_meta("seed", json!(cfg.seed))
            .with_meta("users", json!(cfg.population.users))
            .with_meta("windows", json!(windows as u64))
            .with_meta("sample_total", json!(cfg.sample_total));

        let report = MetroReport {
            users: cfg.population.users,
            daily_queries: pop.base_total(),
            total_demand: pop.total(),
            sampled_requests: cfg.sample_total,
            peak_rps: pop.peak_rps(),
            mean_rps: pop.mean_rps(),
            p50_ms,
            p99_ms,
            answered,
            unanswered,
            shed_fraction: unanswered as f64 / cfg.sample_total.max(1) as f64,
            shards_added,
            shards_removed,
            pool_resizes,
            shed_actions,
            final_shards: shards,
            final_pool: pool,
            recovery_s,
            delivered: audit.delivered,
            duplicates: audit.duplicates,
            lost: audit.lost,
            dfs: dfs.stats(),
            decisions: policy.decisions().to_vec(),
            windows: window_stats,
        };
        (report, flight)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scfault::FaultKind;

    fn small() -> MetroConfig {
        MetroConfig {
            population: PopulationConfig {
                users: 50_000,
                windows: 24,
                ..PopulationConfig::default()
            },
            sample_total: 2_000,
            ..MetroConfig::default()
        }
    }

    #[test]
    fn accounts_for_every_sampled_request_modulo_pending() {
        let r = MetroSim::new(small()).run();
        assert_eq!(r.sampled_requests, 2_000);
        assert_eq!(r.answered + r.unanswered, 2_000);
        assert!(r.p99_ms >= r.p50_ms);
    }

    #[test]
    fn same_seed_byte_identical_report() {
        let a = MetroSim::new(small()).run();
        let b = MetroSim::new(small()).run();
        assert_eq!(a, b);
        assert_eq!(a.decision_log(), b.decision_log());
    }

    #[test]
    fn different_seed_different_trace() {
        let a = MetroSim::new(small()).run();
        let b = MetroSim::new(MetroConfig { seed: 7, ..small() }).run();
        assert_ne!(a, b);
    }

    #[test]
    fn peaks_force_the_loop_to_scale_up() {
        // Slow shards make the diurnal peak tower over the mean-sized
        // static plan, so the loop must grow the fleet.
        let cfg = MetroConfig {
            sizing: SizingGuidelines {
                per_shard_rps: 1.0,
                ..SizingGuidelines::default()
            },
            fault_plan: Some(FaultPlan::empty()),
            ..small()
        };
        let initial = MetroSim::new(cfg.clone()).topology().initial_shards;
        let r = MetroSim::new(cfg).run();
        assert!(
            r.shards_added > 0,
            "mean-sized static plan must be outgrown at the diurnal peak:\n{}",
            r.decision_log()
        );
        assert!(r.final_shards >= initial);
    }

    #[test]
    fn recovery_is_finite_after_a_crash_and_restart() {
        // Node 0 is both a serving shard and the ingest broker: a
        // two-hour outage in the middle of the morning peak.
        let plan = FaultPlan::empty()
            .with_event(
                SimTime::from_secs(6 * 3600),
                FaultKind::NodeCrash { node: 0 },
            )
            .with_event(
                SimTime::from_secs(8 * 3600),
                FaultKind::NodeRestart { node: 0 },
            );
        let r = MetroSim::new(MetroConfig {
            fault_plan: Some(plan),
            ..small()
        })
        .run();
        assert!(r.recovery_s.is_finite(), "the loop must recover");
        assert!(r.recovery_s >= 0.0);
    }

    #[test]
    fn ingest_is_audited_end_to_end() {
        let r = MetroSim::new(MetroConfig {
            fault_plan: Some(FaultPlan::empty()),
            ..small()
        })
        .run();
        assert_eq!(r.lost, 0, "no faults, no loss");
        assert_eq!(r.delivered as u64, r.sampled_requests);
        assert_eq!(r.duplicates, 0);
    }
}
