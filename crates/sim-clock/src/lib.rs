//! # simclock — deterministic simulation time
//!
//! Foundations shared by every simulator in the smart-city cyberinfrastructure:
//!
//! - [`SimTime`] / [`SimDuration`]: microsecond-resolution virtual time.
//! - [`VirtualClock`]: a monotonically advancing clock.
//! - [`EventQueue`]: a stable priority queue of timestamped events (ties break
//!   by insertion order so simulations are reproducible).
//! - [`SeededRng`]: a tiny, fast, fully deterministic xorshift* PRNG used
//!   wherever cross-platform bit-for-bit reproducibility matters.
//!
//! # Examples
//!
//! ```
//! use simclock::{EventQueue, SimTime, SimDuration};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_millis(5), "b");
//! q.schedule(SimTime::from_millis(1), "a");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!(t, SimTime::from_millis(1));
//! assert_eq!(e, "a");
//! ```

mod event_queue;
mod rng;
mod time;

pub use event_queue::EventQueue;
pub use rng::SeededRng;
pub use time::{SimDuration, SimTime, VirtualClock};
