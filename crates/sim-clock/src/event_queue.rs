//! A stable, timestamp-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A priority queue of events ordered by [`SimTime`], with FIFO tie-breaking.
///
/// Deterministic simulations require that two events scheduled for the same
/// instant pop in the order they were scheduled; a plain [`BinaryHeap`] does
/// not guarantee that, so each entry carries a monotonically increasing
/// sequence number.
///
/// # Examples
///
/// ```
/// use simclock::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(1), "first");
/// q.schedule(SimTime::from_millis(1), "second");
/// assert_eq!(q.pop().unwrap().1, "first");
/// assert_eq!(q.pop().unwrap().1, "second");
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then the
        // lowest sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_millis(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(7), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.schedule(SimTime::from_millis(1), "c");
        // "c" is earlier than the remaining "a" even though scheduled later.
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }
}
