//! Virtual time primitives.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in virtual simulation time, measured in microseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered and cheap to copy. Use [`SimDuration`] for
/// differences between instants.
///
/// # Examples
///
/// ```
/// use simclock::{SimTime, SimDuration};
/// let t = SimTime::from_millis(3) + SimDuration::from_micros(500);
/// assert_eq!(t.as_micros(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

/// A span of virtual time in microseconds.
///
/// # Examples
///
/// ```
/// use simclock::SimDuration;
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(5);
/// assert_eq!(d.as_micros(), 2_005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by a non-negative factor, rounding to microseconds.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// A monotonically advancing virtual clock.
///
/// The clock only moves forward; [`VirtualClock::advance_to`] ignores
/// timestamps earlier than the current time.
///
/// # Examples
///
/// ```
/// use simclock::{VirtualClock, SimTime, SimDuration};
/// let mut clock = VirtualClock::new();
/// clock.advance(SimDuration::from_millis(10));
/// assert_eq!(clock.now(), SimTime::from_millis(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: SimTime,
}

impl VirtualClock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Moves the clock forward by `d`.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Moves the clock to `t` if `t` is in the future; otherwise leaves it
    /// unchanged. Returns the (possibly unchanged) current time.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        if t > self.now {
            self.now = t;
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(1500).as_millis(), 1500);
        assert!((SimTime::from_millis(2500).as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(2) + SimDuration::from_micros(5);
        assert_eq!(d.as_micros(), 2005);
        assert_eq!(d.mul_f64(2.0).as_micros(), 4010);
    }

    #[test]
    fn time_sub_gives_duration() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(b.saturating_since(a), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_sub_underflow_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    fn clock_is_monotonic() {
        let mut c = VirtualClock::new();
        c.advance(SimDuration::from_secs(1));
        let t = c.now();
        c.advance_to(SimTime::ZERO);
        assert_eq!(c.now(), t, "advance_to must never move backwards");
        c.advance_to(SimTime::from_secs(5));
        assert_eq!(c.now(), SimTime::from_secs(5));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_micros(250).to_string(), "0.000250s");
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimDuration::from_secs_f64(0.0000015).as_micros(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
