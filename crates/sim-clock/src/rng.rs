//! Deterministic pseudo-randomness for simulations.

/// A small, fast xorshift64* PRNG with explicit seeding.
///
/// Every generator and simulator in the workspace threads a `SeededRng` (or a
/// value derived from one via [`SeededRng::fork`]) so identical seeds yield
/// bit-identical runs on every platform.
///
/// This is *not* a cryptographic generator.
///
/// # Examples
///
/// ```
/// use simclock::SeededRng;
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SeededRng {
    state: u64,
}

impl SeededRng {
    /// Creates a generator from `seed`. A zero seed is remapped internally
    /// (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scrambles weak user seeds (0, 1, 2, ...) into
        // well-distributed initial states.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SeededRng {
            state: if z == 0 { 0xDEAD_BEEF_CAFE_F00D } else { z },
        }
    }

    /// Derives an independent child generator; used to give each subsystem
    /// its own stream so adding draws in one place does not perturb another.
    pub fn fork(&mut self) -> Self {
        SeededRng::new(self.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[0, 1)` as `f32`.
    pub fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift (Lemire) without rejection: bias is negligible for
        // simulation bounds (< 2^32).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_bounded(len as u64) as usize
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "range_f64 requires lo <= hi");
        lo + self.next_f64() * (hi - lo)
    }

    /// Uniform integer in `[lo, hi)` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.next_bounded(hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal draw (Box–Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(1e-12);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.next_gaussian()
    }

    /// Exponential draw with the given rate parameter λ.
    ///
    /// # Panics
    ///
    /// Panics if `rate <= 0`.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        -self.next_f64().max(1e-12).ln() / rate
    }

    /// Poisson draw (Knuth's method; suitable for small means).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // guard against pathological means
            }
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Samples an index according to non-negative `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weights must be non-empty with positive sum"
        );
        let mut target = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

impl Default for SeededRng {
    fn default() -> Self {
        SeededRng::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_works() {
        let mut r = SeededRng::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SeededRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = SeededRng::new(4);
        for _ in 0..10_000 {
            assert!(r.next_bounded(13) < 13);
        }
    }

    #[test]
    fn bounded_covers_all_values() {
        let mut r = SeededRng::new(5);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_bounded(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SeededRng::new(6);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = SeededRng::new(8);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn poisson_mean() {
        let mut r = SeededRng::new(9);
        let n = 20_000;
        let mean = (0..n).map(|_| r.poisson(3.0) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(10);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not shuffle to identity"
        );
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut r = SeededRng::new(11);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SeededRng::new(12);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SeededRng::new(13);
        let empty: &[u8] = &[];
        assert!(r.choose(empty).is_none());
    }
}
