//! Jobs, workloads, and placement policies.

use simclock::{SeededRng, SimDuration, SimTime};

/// One video-analysis job: a frame (or clip) arriving at an edge device that
/// must end as an annotation in the cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Arrival time at the edge device.
    pub arrival: SimTime,
    /// Index of the source edge device (modulo the topology's edge count).
    pub edge_index: usize,
    /// Raw input size in bytes (e.g. a JPEG frame).
    pub raw_bytes: u64,
    /// Total model compute in operations for a *full* inference.
    pub total_ops: f64,
    /// Annotation size shipped to the cloud after analysis.
    pub annotation_bytes: u64,
    /// Pre-drawn early-exit outcome: `true` means the local exit is *not*
    /// confident and the job escalates (only consulted by
    /// [`Placement::EarlyExit`]).
    pub escalates: bool,
}

/// A collection of jobs plus the escalation rate they were drawn with.
#[derive(Debug, Clone)]
pub struct Workload {
    jobs: Vec<Job>,
    escalation_rate: f64,
}

impl Workload {
    /// Builds a Poisson-ish workload: `n` jobs with exponential inter-arrival
    /// times (mean `1/rate_hz` seconds between jobs across the whole fleet),
    /// each `raw_bytes` large, spread round-robin over edge devices.
    /// `escalates` flags are drawn at the default 30% rate.
    pub fn uniform(n: usize, raw_bytes: u64, rate_hz: f64, seed: u64) -> Self {
        Workload::with_escalation(n, raw_bytes, rate_hz, 0.3, seed)
    }

    /// Like [`Workload::uniform`] with an explicit escalation probability
    /// (the fraction of jobs whose local inference is not confident — in the
    /// paper, frames where the tiny model's score is below threshold).
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= escalation_rate <= 1` and `rate_hz > 0`.
    pub fn with_escalation(
        n: usize,
        raw_bytes: u64,
        rate_hz: f64,
        escalation_rate: f64,
        seed: u64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&escalation_rate),
            "escalation rate in [0,1]"
        );
        assert!(rate_hz > 0.0, "arrival rate must be positive");
        let mut rng = SeededRng::new(seed);
        let mut t = SimTime::ZERO;
        let jobs = (0..n)
            .map(|i| {
                t += SimDuration::from_secs_f64(rng.exponential(rate_hz));
                Job {
                    arrival: t,
                    edge_index: i,
                    raw_bytes,
                    // Full inference ≈ YOLOv2-scale: ~3e9 ops with jitter.
                    total_ops: 3e9 * rng.range_f64(0.8, 1.2),
                    annotation_bytes: 256,
                    escalates: rng.chance(escalation_rate),
                }
            })
            .collect();
        Workload {
            jobs,
            escalation_rate,
        }
    }

    /// The jobs in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The escalation rate the jobs were drawn with.
    pub fn escalation_rate(&self) -> f64 {
        self.escalation_rate
    }
}

/// Where the computation of each job runs (Fig. 3's division of
/// computation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Full model on the edge device; only annotations go upstream.
    AllEdge,
    /// Raw data shipped to the analysis server; full model there.
    ServerOnly,
    /// Raw data shipped all the way to the cloud; full model there.
    AllCloud,
    /// The paper's split (Figs. 5/7): a tiny model (`local_fraction` of the
    /// full ops) runs on the edge; jobs flagged as escalating ship a
    /// `feature_bytes` feature map to the analysis server, which runs the
    /// remaining ops.
    EarlyExit {
        /// Fraction of `total_ops` the local/tiny model costs.
        local_fraction: f64,
        /// Feature-map bytes shipped upstream on escalation.
        feature_bytes: u64,
    },
    /// §II-B1's fog variant: "we utilize fog nodes to run inferences using
    /// the first few layers of a deep learning model". Raw frames hop one
    /// link to the fog node, which runs the tiny model (it has ~10× the edge
    /// FLOPS); escalations continue to the analysis server.
    FogAssisted {
        /// Fraction of `total_ops` the fog-side tiny model costs.
        local_fraction: f64,
        /// Feature-map bytes shipped upstream on escalation.
        feature_bytes: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_time_ordered() {
        let w = Workload::uniform(100, 50_000, 10.0, 1);
        for pair in w.jobs().windows(2) {
            assert!(pair[1].arrival >= pair[0].arrival);
        }
    }

    #[test]
    fn escalation_rate_respected() {
        let w = Workload::with_escalation(2000, 1000, 10.0, 0.25, 2);
        let esc = w.jobs().iter().filter(|j| j.escalates).count();
        let rate = esc as f64 / 2000.0;
        assert!((rate - 0.25).abs() < 0.04, "drawn rate {rate}");
    }

    #[test]
    fn zero_and_full_escalation() {
        let w0 = Workload::with_escalation(100, 1000, 10.0, 0.0, 3);
        assert!(w0.jobs().iter().all(|j| !j.escalates));
        let w1 = Workload::with_escalation(100, 1000, 10.0, 1.0, 3);
        assert!(w1.jobs().iter().all(|j| j.escalates));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Workload::uniform(50, 1000, 5.0, 4);
        let b = Workload::uniform(50, 1000, 5.0, 4);
        assert_eq!(a.jobs(), b.jobs());
    }

    #[test]
    #[should_panic(expected = "escalation rate")]
    fn bad_escalation_rate_panics() {
        let _ = Workload::with_escalation(1, 1, 1.0, 1.5, 0);
    }
}
