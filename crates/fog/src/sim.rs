//! The discrete-event engine.

use std::collections::HashMap;

use scpar::ScparConfig;
use sctelemetry::{
    prometheus_text, MetricsRegistry, Report, SampleSummary, Telemetry, TelemetryHandle,
};
use simclock::{EventQueue, SimDuration, SimTime};

use crate::topology::{FogNodeId, Tier, Topology};
use crate::workload::{Job, Placement, Workload};

/// Metric name of the exact per-job latency histogram.
pub const METRIC_JOB_LATENCY: &str = "scfog_sim_job_latency_seconds";
/// Metric name of the completed-jobs counter.
pub const METRIC_JOBS: &str = "scfog_sim_jobs_total";
/// Metric name of the exact makespan record (single observation per run).
pub const METRIC_MAKESPAN: &str = "scfog_sim_makespan_seconds";

fn link_bytes_metric(from: Tier, to: Tier) -> String {
    format!("scfog_link_{}_to_{}_bytes_total", from.name(), to.name())
}

fn busy_metric(tier: Tier) -> String {
    format!("scfog_sim_busy_{}_seconds", tier.name())
}

fn nodes_metric(tier: Tier) -> String {
    format!("scfog_topology_{}_nodes", tier.name())
}

/// One step of a job's execution plan.
#[derive(Debug, Clone)]
enum Step {
    /// Run `ops` operations on `node` (FIFO queueing on the node).
    Compute { node: FogNodeId, ops: f64 },
    /// Move `bytes` from `from` to `to` (FIFO queueing on the link).
    Transfer {
        from: FogNodeId,
        to: FogNodeId,
        bytes: u64,
    },
}

/// Busy-time utilization of one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierUtilization {
    /// The tier.
    pub tier: Tier,
    /// Total busy seconds across the tier's nodes.
    pub busy_secs: f64,
    /// Busy / (nodes × makespan), in `[0, 1]`.
    pub utilization: f64,
}

/// Results of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Jobs completed.
    pub jobs: usize,
    /// Mean end-to-end latency (arrival → annotation at cloud) in seconds.
    pub mean_latency_s: f64,
    /// Median latency in seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile latency in seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile latency in seconds.
    pub p99_latency_s: f64,
    /// Maximum latency in seconds.
    pub max_latency_s: f64,
    /// Bytes crossing edge→fog links.
    pub edge_to_fog_bytes: u64,
    /// Bytes crossing fog→server links.
    pub fog_to_server_bytes: u64,
    /// Bytes crossing server→cloud links.
    pub server_to_cloud_bytes: u64,
    /// Per-tier utilization.
    pub tier_utilization: Vec<TierUtilization>,
    /// Completion time of the last job (makespan).
    pub makespan_s: f64,
}

impl SimReport {
    /// Total bytes sent upstream across all tier boundaries.
    pub fn total_upstream_bytes(&self) -> u64 {
        self.edge_to_fog_bytes + self.fog_to_server_bytes + self.server_to_cloud_bytes
    }

    /// Utilization of one tier (0 if absent).
    pub fn utilization_of(&self, tier: Tier) -> f64 {
        self.tier_utilization
            .iter()
            .find(|u| u.tier == tier)
            .map(|u| u.utilization)
            .unwrap_or(0.0)
    }

    /// Rebuilds the report from a telemetry registry populated by a
    /// [`FogSimulator`] run — the report is a *view* over the registry, not
    /// a separate source of truth. Returns `None` if the registry has no
    /// fog-run metrics (e.g. the simulator ran with telemetry disabled).
    pub fn from_registry(registry: &MetricsRegistry) -> Option<SimReport> {
        let latency = registry.get(METRIC_JOB_LATENCY)?.as_histogram()?.snapshot();
        if latency.count == 0 {
            return None;
        }
        let makespan = registry
            .get(METRIC_MAKESPAN)
            .and_then(|e| e.as_histogram().map(|h| h.snapshot().max))
            .unwrap_or(0.0);
        let counter = |name: &str| {
            registry
                .get(name)
                .and_then(|e| e.as_counter().map(|c| c.get()))
                .unwrap_or(0)
        };
        let tier_utilization = Tier::ALL
            .iter()
            .map(|&tier| {
                let busy = registry
                    .get(&busy_metric(tier))
                    .and_then(|e| e.as_histogram().map(|h| h.snapshot().sum))
                    .unwrap_or(0.0);
                let nodes = registry
                    .get(&nodes_metric(tier))
                    .and_then(|e| e.as_gauge().map(|g| g.get()))
                    .unwrap_or(0);
                TierUtilization {
                    tier,
                    busy_secs: busy,
                    utilization: if nodes == 0 || makespan <= 0.0 {
                        0.0
                    } else {
                        (busy / (nodes as f64 * makespan)).min(1.0)
                    },
                }
            })
            .collect();
        Some(SimReport {
            jobs: latency.count as usize,
            mean_latency_s: latency.mean().unwrap_or(0.0),
            p50_latency_s: latency.percentile(0.50).unwrap_or(0.0),
            p95_latency_s: latency.percentile(0.95).unwrap_or(0.0),
            p99_latency_s: latency.percentile(0.99).unwrap_or(0.0),
            max_latency_s: latency.max,
            edge_to_fog_bytes: counter(&link_bytes_metric(Tier::Edge, Tier::Fog)),
            fog_to_server_bytes: counter(&link_bytes_metric(Tier::Fog, Tier::Server)),
            server_to_cloud_bytes: counter(&link_bytes_metric(Tier::Server, Tier::Cloud)),
            tier_utilization,
            makespan_s: makespan,
        })
    }
}

impl Report for SimReport {
    fn kv(&self) -> Vec<(String, f64)> {
        let mut kv = vec![
            ("jobs".to_string(), self.jobs as f64),
            ("mean_latency_s".to_string(), self.mean_latency_s),
            ("p50_latency_s".to_string(), self.p50_latency_s),
            ("p95_latency_s".to_string(), self.p95_latency_s),
            ("p99_latency_s".to_string(), self.p99_latency_s),
            ("max_latency_s".to_string(), self.max_latency_s),
            (
                "edge_to_fog_bytes".to_string(),
                self.edge_to_fog_bytes as f64,
            ),
            (
                "fog_to_server_bytes".to_string(),
                self.fog_to_server_bytes as f64,
            ),
            (
                "server_to_cloud_bytes".to_string(),
                self.server_to_cloud_bytes as f64,
            ),
            ("makespan_s".to_string(), self.makespan_s),
        ];
        for u in &self.tier_utilization {
            kv.push((
                format!("utilization_{:?}", u.tier).to_lowercase(),
                u.utilization,
            ));
        }
        kv
    }
}

/// The simulator: executes a [`Workload`] against a [`Topology`] under a
/// [`Placement`] policy.
#[derive(Debug)]
pub struct FogSimulator {
    topology: Topology,
    telemetry: TelemetryHandle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Node(FogNodeId),
    LinkRes(FogNodeId, FogNodeId),
}

impl FogSimulator {
    /// Creates a simulator over `topology` with telemetry disabled.
    pub fn new(topology: Topology) -> Self {
        FogSimulator {
            topology,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry handle; subsequent runs emit per-tier
    /// queue-wait/busy histograms, per-link byte counters, per-job spans,
    /// and an exact latency histogram through it (unless a
    /// [`SimRunner::telemetry`] override routes them elsewhere).
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn plan(&self, job: &Job, placement: Placement, edge: FogNodeId) -> Vec<Step> {
        let topo = &self.topology;
        let fog = topo
            .ancestor_at(edge, Tier::Fog)
            .expect("edge has a fog parent");
        let server = topo
            .ancestor_at(edge, Tier::Server)
            .expect("fog has a server parent");
        let cloud = topo
            .ancestor_at(edge, Tier::Cloud)
            .expect("server has a cloud parent");
        let ann = job.annotation_bytes;
        match placement {
            Placement::AllEdge => vec![
                Step::Compute {
                    node: edge,
                    ops: job.total_ops,
                },
                Step::Transfer {
                    from: edge,
                    to: fog,
                    bytes: ann,
                },
                Step::Transfer {
                    from: fog,
                    to: server,
                    bytes: ann,
                },
                Step::Transfer {
                    from: server,
                    to: cloud,
                    bytes: ann,
                },
            ],
            Placement::ServerOnly => vec![
                Step::Transfer {
                    from: edge,
                    to: fog,
                    bytes: job.raw_bytes,
                },
                Step::Transfer {
                    from: fog,
                    to: server,
                    bytes: job.raw_bytes,
                },
                Step::Compute {
                    node: server,
                    ops: job.total_ops,
                },
                Step::Transfer {
                    from: server,
                    to: cloud,
                    bytes: ann,
                },
            ],
            Placement::AllCloud => vec![
                Step::Transfer {
                    from: edge,
                    to: fog,
                    bytes: job.raw_bytes,
                },
                Step::Transfer {
                    from: fog,
                    to: server,
                    bytes: job.raw_bytes,
                },
                Step::Transfer {
                    from: server,
                    to: cloud,
                    bytes: job.raw_bytes,
                },
                Step::Compute {
                    node: cloud,
                    ops: job.total_ops,
                },
            ],
            Placement::EarlyExit {
                local_fraction,
                feature_bytes,
            } => {
                let local = local_fraction.clamp(0.0, 1.0);
                let mut steps = vec![Step::Compute {
                    node: edge,
                    ops: job.total_ops * local,
                }];
                if job.escalates {
                    steps.push(Step::Transfer {
                        from: edge,
                        to: fog,
                        bytes: feature_bytes,
                    });
                    steps.push(Step::Transfer {
                        from: fog,
                        to: server,
                        bytes: feature_bytes,
                    });
                    steps.push(Step::Compute {
                        node: server,
                        ops: job.total_ops * (1.0 - local),
                    });
                    steps.push(Step::Transfer {
                        from: server,
                        to: cloud,
                        bytes: ann,
                    });
                } else {
                    steps.push(Step::Transfer {
                        from: edge,
                        to: fog,
                        bytes: ann,
                    });
                    steps.push(Step::Transfer {
                        from: fog,
                        to: server,
                        bytes: ann,
                    });
                    steps.push(Step::Transfer {
                        from: server,
                        to: cloud,
                        bytes: ann,
                    });
                }
                steps
            }
            Placement::FogAssisted {
                local_fraction,
                feature_bytes,
            } => {
                let local = local_fraction.clamp(0.0, 1.0);
                let mut steps = vec![
                    Step::Transfer {
                        from: edge,
                        to: fog,
                        bytes: job.raw_bytes,
                    },
                    Step::Compute {
                        node: fog,
                        ops: job.total_ops * local,
                    },
                ];
                if job.escalates {
                    steps.push(Step::Transfer {
                        from: fog,
                        to: server,
                        bytes: feature_bytes,
                    });
                    steps.push(Step::Compute {
                        node: server,
                        ops: job.total_ops * (1.0 - local),
                    });
                    steps.push(Step::Transfer {
                        from: server,
                        to: cloud,
                        bytes: ann,
                    });
                } else {
                    steps.push(Step::Transfer {
                        from: fog,
                        to: server,
                        bytes: ann,
                    });
                    steps.push(Step::Transfer {
                        from: server,
                        to: cloud,
                        bytes: ann,
                    });
                }
                steps
            }
        }
    }

    /// Starts building a configured run of `workload` on this simulator.
    ///
    /// The runner defaults to [`Placement::AllCloud`] (the paper's baseline),
    /// the simulator's own telemetry handle, and the ambient
    /// [`ScparConfig`] (`SCPAR_THREADS` / available parallelism) for sweeps.
    ///
    /// ```
    /// # use scfog::{FogSimulator, Placement, Topology, Workload};
    /// let sim = FogSimulator::new(Topology::four_tier(4, 2, 1));
    /// let w = Workload::uniform(20, 100_000, 5.0, 42);
    /// let report = sim
    ///     .runner(&w)
    ///     .placement(Placement::ServerOnly)
    ///     .run();
    /// assert_eq!(report.jobs, 20);
    /// ```
    pub fn runner<'a>(&'a self, workload: &'a Workload) -> SimRunner<'a> {
        SimRunner {
            sim: self,
            workload,
            placement: Placement::AllCloud,
            telemetry: None,
            par: ScparConfig::from_env(),
        }
    }

    /// Runs the workload to completion, returning aggregate metrics.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty or the topology has no edge tier.
    #[deprecated(
        since = "0.2.0",
        note = "use `runner(&workload).placement(p).run()` instead"
    )]
    pub fn run(&self, workload: &Workload, placement: Placement) -> SimReport {
        self.run_with(workload, placement, &self.telemetry)
    }

    /// The engine: one serial discrete-event run recording into `telemetry`.
    fn run_with(
        &self,
        workload: &Workload,
        placement: Placement,
        telemetry: &TelemetryHandle,
    ) -> SimReport {
        assert!(!workload.is_empty(), "empty workload");
        let edges = self.topology.nodes_in_tier(Tier::Edge);
        assert!(!edges.is_empty(), "topology has no edge nodes");

        // Build plans.
        let plans: Vec<Vec<Step>> = workload
            .jobs()
            .iter()
            .map(|j| self.plan(j, placement, edges[j.edge_index % edges.len()]))
            .collect();

        let mut queue: EventQueue<(usize, usize)> = EventQueue::new();
        for (ji, job) in workload.jobs().iter().enumerate() {
            queue.schedule(job.arrival, (ji, 0));
        }

        let mut busy_until: HashMap<Resource, SimTime> = HashMap::new();
        let mut busy_total: HashMap<Resource, f64> = HashMap::new();
        let mut boundary_bytes: HashMap<(Tier, Tier), u64> = HashMap::new();
        let mut completion: Vec<Option<SimTime>> = vec![None; plans.len()];

        // Per-tier metric names, formatted once (the event loop is hot).
        let recording = telemetry.is_enabled();
        let queue_wait_names: Vec<String> = Tier::ALL
            .iter()
            .map(|t| format!("scfog_sim_queue_wait_{}_seconds", t.name()))
            .collect();
        let tier_idx = |t: Tier| Tier::ALL.iter().position(|&x| x == t).expect("known tier");

        while let Some((now, (ji, si))) = queue.pop() {
            let step = &plans[ji][si];
            let (resource, duration) = match step {
                Step::Compute { node, ops } => {
                    let flops = self.topology.spec(*node).flops;
                    (
                        Resource::Node(*node),
                        SimDuration::from_secs_f64(ops / flops),
                    )
                }
                Step::Transfer { from, to, bytes } => {
                    let (_, link) = self
                        .topology
                        .parent(*from)
                        .filter(|(p, _)| p == to)
                        .expect("transfers follow uplinks");
                    let tx = if link.bandwidth_bps.is_finite() {
                        *bytes as f64 / link.bandwidth_bps
                    } else {
                        0.0
                    };
                    *boundary_bytes
                        .entry((self.topology.tier(*from), self.topology.tier(*to)))
                        .or_default() += bytes;
                    (
                        Resource::LinkRes(*from, *to),
                        link.latency + SimDuration::from_secs_f64(tx),
                    )
                }
            };
            let free_at = busy_until.get(&resource).copied().unwrap_or(SimTime::ZERO);
            let start = free_at.max(now);
            let finish = start + duration;
            busy_until.insert(resource, finish);
            *busy_total.entry(resource).or_default() += duration.as_secs_f64();

            if recording {
                let tier = match step {
                    Step::Compute { node, .. } => self.topology.tier(*node),
                    Step::Transfer { from, .. } => self.topology.tier(*from),
                };
                telemetry.observe(
                    &queue_wait_names[tier_idx(tier)],
                    "time each step waited for its node or link, by tier",
                    start.saturating_since(now).as_secs_f64(),
                );
            }

            if si + 1 < plans[ji].len() {
                queue.schedule(finish, (ji, si + 1));
            } else {
                completion[ji] = Some(finish);
            }
        }

        // Latencies, summarized by the workspace-wide nearest-rank helper.
        let latencies: Vec<f64> = workload
            .jobs()
            .iter()
            .zip(&completion)
            .map(|(j, c)| (c.expect("job completed") - j.arrival).as_secs_f64())
            .collect();
        let stats = SampleSummary::from_sample(&latencies).expect("non-empty workload");
        let makespan = completion
            .iter()
            .map(|c| c.expect("job completed").as_secs_f64())
            .fold(0.0f64, f64::max);

        // Tier utilization.
        let tier_utilization: Vec<TierUtilization> = Tier::ALL
            .iter()
            .map(|&tier| {
                let nodes = self.topology.nodes_in_tier(tier);
                let busy: f64 = nodes
                    .iter()
                    .map(|n| busy_total.get(&Resource::Node(*n)).copied().unwrap_or(0.0))
                    .sum();
                TierUtilization {
                    tier,
                    busy_secs: busy,
                    utilization: if nodes.is_empty() || makespan <= 0.0 {
                        0.0
                    } else {
                        (busy / (nodes.len() as f64 * makespan)).min(1.0)
                    },
                }
            })
            .collect();

        if recording {
            self.record_run(
                telemetry,
                workload,
                &completion,
                &latencies,
                makespan,
                &tier_utilization,
                &boundary_bytes,
            );
        }

        SimReport {
            jobs: stats.count,
            mean_latency_s: stats.mean(),
            p50_latency_s: stats.p50,
            p95_latency_s: stats.p95,
            p99_latency_s: stats.p99,
            max_latency_s: stats.max,
            edge_to_fog_bytes: *boundary_bytes.get(&(Tier::Edge, Tier::Fog)).unwrap_or(&0),
            fog_to_server_bytes: *boundary_bytes.get(&(Tier::Fog, Tier::Server)).unwrap_or(&0),
            server_to_cloud_bytes: *boundary_bytes
                .get(&(Tier::Server, Tier::Cloud))
                .unwrap_or(&0),
            tier_utilization,
            makespan_s: makespan,
        }
    }

    /// Emits end-of-run aggregates so [`SimReport::from_registry`] can
    /// reconstruct the report as a pure view over the registry.
    #[allow(clippy::too_many_arguments)]
    fn record_run(
        &self,
        telemetry: &TelemetryHandle,
        workload: &Workload,
        completion: &[Option<SimTime>],
        latencies: &[f64],
        makespan: f64,
        tier_utilization: &[TierUtilization],
        boundary_bytes: &HashMap<(Tier, Tier), u64>,
    ) {
        let t = telemetry;
        t.counter_add(
            METRIC_JOBS,
            "jobs completed by the fog simulator",
            latencies.len() as u64,
        );
        for &l in latencies {
            t.observe_exact(METRIC_JOB_LATENCY, "end-to-end job latency (exact)", l);
        }
        t.observe_exact(METRIC_MAKESPAN, "completion time of the last job", makespan);
        for (ji, (job, done)) in workload.jobs().iter().zip(completion).enumerate() {
            t.span(
                "scfog",
                &format!("job/{ji}"),
                job.arrival,
                done.expect("job completed"),
            );
        }
        for u in tier_utilization {
            t.observe_exact(
                &busy_metric(u.tier),
                "total busy seconds across the tier's nodes",
                u.busy_secs,
            );
            t.gauge_set(
                &nodes_metric(u.tier),
                "nodes in the tier",
                self.topology.nodes_in_tier(u.tier).len() as i64,
            );
        }
        for (from, to) in [
            (Tier::Edge, Tier::Fog),
            (Tier::Fog, Tier::Server),
            (Tier::Server, Tier::Cloud),
        ] {
            t.counter_add(
                &link_bytes_metric(from, to),
                "bytes shipped across the tier boundary",
                *boundary_bytes.get(&(from, to)).unwrap_or(&0),
            );
        }
    }
}

/// Builder for configured simulation runs — the redesigned run API.
///
/// Obtained from [`FogSimulator::runner`]. A single [`SimRunner::run`] stays
/// serial (the discrete-event engine is inherently sequential); placement
/// *sweeps* fan out across the `scpar` worker pool, one placement per task.
///
/// Every sweep run records into its own private recorder, so the shared
/// handle is never written from worker threads: per-placement reports and
/// Prometheus snapshots are byte-identical for any thread count.
#[derive(Debug)]
pub struct SimRunner<'a> {
    sim: &'a FogSimulator,
    workload: &'a Workload,
    placement: Placement,
    telemetry: Option<TelemetryHandle>,
    par: ScparConfig,
}

impl SimRunner<'_> {
    /// Sets the placement policy (defaults to [`Placement::AllCloud`]).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Routes this run's signals to `telemetry` instead of the simulator's
    /// own handle (which is left untouched).
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Caps the worker pool used by [`SimRunner::sweep`] at `threads`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.par = ScparConfig::with_threads(threads);
        self
    }

    /// Supplies a full parallelism config for sweeps.
    pub fn par_config(mut self, par: ScparConfig) -> Self {
        self.par = par;
        self
    }

    /// Runs the configured workload/placement once, serially.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty or the topology has no edge tier.
    pub fn run(self) -> SimReport {
        let telemetry = self.telemetry.as_ref().unwrap_or(&self.sim.telemetry);
        self.sim.run_with(self.workload, self.placement, telemetry)
    }

    /// Runs the workload under each placement, fanning the runs out across
    /// the worker pool. Reports come back in `placements` order regardless
    /// of thread count; telemetry handles are not written to.
    pub fn sweep(&self, placements: &[Placement]) -> Vec<SimReport> {
        scpar::par_map(&self.par, placements, |p| {
            self.sim
                .run_with(self.workload, *p, &TelemetryHandle::disabled())
        })
    }

    /// Like [`SimRunner::sweep`], but each run records into a fresh private
    /// recorder whose Prometheus rendering is returned alongside the report.
    ///
    /// Because recorders are per-run and reports are combined in submission
    /// order, the returned snapshots are byte-identical for any thread
    /// count — the property checked by the determinism suite.
    pub fn sweep_recorded(&self, placements: &[Placement]) -> Vec<(SimReport, String)> {
        scpar::par_map(&self.par, placements, |p| {
            let recorder = Telemetry::shared();
            let report = self.sim.run_with(self.workload, *p, &recorder.handle());
            (report, prometheus_text(recorder.registry()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FogSimulator {
        FogSimulator::new(Topology::four_tier(4, 2, 1))
    }

    fn workload(n: usize, esc: f64) -> Workload {
        Workload::with_escalation(n, 100_000, 5.0, esc, 7)
    }

    fn run(s: &FogSimulator, w: &Workload, p: Placement) -> SimReport {
        s.runner(w).placement(p).run()
    }

    #[test]
    fn all_placements_complete_all_jobs() {
        let s = sim();
        let w = workload(40, 0.3);
        for placement in [
            Placement::AllEdge,
            Placement::ServerOnly,
            Placement::AllCloud,
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ] {
            let r = run(&s, &w, placement);
            assert_eq!(r.jobs, 40, "{placement:?}");
            assert!(r.mean_latency_s > 0.0);
            assert!(r.makespan_s >= r.max_latency_s * 0.5);
        }
    }

    #[test]
    fn all_edge_ships_fewest_bytes() {
        let s = sim();
        let w = workload(40, 0.3);
        let edge = run(&s, &w, Placement::AllEdge);
        let cloud = run(&s, &w, Placement::AllCloud);
        assert!(edge.total_upstream_bytes() < cloud.total_upstream_bytes() / 10);
    }

    #[test]
    fn all_edge_is_slow_compute() {
        // Edge FLOPS are 200x slower than the server: full models on the
        // edge take far longer than shipping raw data to the server.
        let s = sim();
        let w = workload(20, 0.3);
        let edge = run(&s, &w, Placement::AllEdge);
        let server = run(&s, &w, Placement::ServerOnly);
        assert!(
            edge.mean_latency_s > server.mean_latency_s,
            "edge {} vs server {}",
            edge.mean_latency_s,
            server.mean_latency_s
        );
    }

    #[test]
    fn early_exit_bytes_scale_with_escalation() {
        let s = sim();
        let policy = Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        };
        let low = run(&s, &workload(100, 0.1), policy);
        let high = run(&s, &workload(100, 0.9), policy);
        assert!(
            high.fog_to_server_bytes > low.fog_to_server_bytes * 3,
            "low {} vs high {}",
            low.fog_to_server_bytes,
            high.fog_to_server_bytes
        );
    }

    #[test]
    fn early_exit_beats_all_cloud_on_upstream_bytes() {
        let s = sim();
        let w = workload(60, 0.3);
        let ee = run(
            &s,
            &w,
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        let cloud = run(&s, &w, Placement::AllCloud);
        assert!(ee.total_upstream_bytes() < cloud.total_upstream_bytes());
    }

    #[test]
    fn latency_percentiles_ordered() {
        let s = sim();
        let r = run(&s, &workload(80, 0.3), Placement::ServerOnly);
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.max_latency_s);
        assert!(r.mean_latency_s <= r.max_latency_s);
    }

    #[test]
    fn utilization_in_bounds() {
        let s = sim();
        let r = run(
            &s,
            &workload(60, 0.5),
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        for u in &r.tier_utilization {
            assert!((0.0..=1.0).contains(&u.utilization), "{u:?}");
        }
        // Early-exit keeps edges busy.
        assert!(r.utilization_of(Tier::Edge) > 0.0);
    }

    #[test]
    fn server_only_leaves_edges_idle() {
        let s = sim();
        let r = run(&s, &workload(40, 0.3), Placement::ServerOnly);
        assert_eq!(r.utilization_of(Tier::Edge), 0.0);
        assert!(r.utilization_of(Tier::Server) > 0.0);
    }

    #[test]
    fn queueing_grows_latency_under_load() {
        let s = sim();
        // Same jobs, 100x the arrival rate: queueing must raise p95.
        let slow = Workload::with_escalation(60, 100_000, 0.5, 0.3, 9);
        let fast = Workload::with_escalation(60, 100_000, 50.0, 0.3, 9);
        let r_slow = run(&s, &slow, Placement::AllEdge);
        let r_fast = run(&s, &fast, Placement::AllEdge);
        assert!(
            r_fast.p95_latency_s > r_slow.p95_latency_s,
            "fast {} vs slow {}",
            r_fast.p95_latency_s,
            r_slow.p95_latency_s
        );
    }

    #[test]
    fn deterministic_runs() {
        let s = sim();
        let w = workload(30, 0.3);
        let a = run(&s, &w, Placement::AllCloud);
        let b = run(&s, &w, Placement::AllCloud);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
        assert_eq!(a.total_upstream_bytes(), b.total_upstream_bytes());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_run_matches_runner() {
        let s = sim();
        let w = workload(25, 0.3);
        let old = s.run(&w, Placement::ServerOnly);
        let new = s.runner(&w).placement(Placement::ServerOnly).run();
        assert_eq!(old.mean_latency_s, new.mean_latency_s);
        assert_eq!(old.total_upstream_bytes(), new.total_upstream_bytes());
    }

    #[test]
    fn runner_telemetry_override_leaves_sim_handle_untouched() {
        let shared = Telemetry::shared();
        let s = sim().with_telemetry(shared.handle());
        let private = Telemetry::shared();
        let w = workload(10, 0.3);
        let r = s
            .runner(&w)
            .placement(Placement::AllCloud)
            .telemetry(private.handle())
            .run();
        assert_eq!(r.jobs, 10);
        assert!(shared.registry().get(METRIC_JOBS).is_none());
        assert!(private.registry().get(METRIC_JOBS).is_some());
    }

    const SWEEP: [Placement; 4] = [
        Placement::AllEdge,
        Placement::ServerOnly,
        Placement::AllCloud,
        Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        },
    ];

    #[test]
    fn sweep_matches_individual_runs_in_order() {
        let s = sim();
        let w = workload(30, 0.3);
        let swept = s.runner(&w).threads(4).sweep(&SWEEP);
        assert_eq!(swept.len(), SWEEP.len());
        for (p, r) in SWEEP.iter().zip(&swept) {
            let solo = run(&s, &w, *p);
            assert_eq!(solo.mean_latency_s, r.mean_latency_s, "{p:?}");
            assert_eq!(solo.total_upstream_bytes(), r.total_upstream_bytes());
        }
    }

    #[test]
    fn sweep_recorded_snapshots_are_thread_count_independent() {
        let s = sim();
        let w = workload(20, 0.3);
        let serial = s.runner(&w).threads(1).sweep_recorded(&SWEEP);
        let parallel = s.runner(&w).threads(4).sweep_recorded(&SWEEP);
        for ((ra, ta), (rb, tb)) in serial.iter().zip(&parallel) {
            assert_eq!(ra.mean_latency_s, rb.mean_latency_s);
            assert_eq!(ta, tb, "prometheus snapshots must be byte-identical");
        }
    }
}

#[cfg(test)]
mod fog_assisted_tests {
    use super::*;

    fn sim() -> FogSimulator {
        FogSimulator::new(Topology::four_tier(4, 2, 1))
    }

    fn run(s: &FogSimulator, w: &Workload, p: Placement) -> SimReport {
        s.runner(w).placement(p).run()
    }

    #[test]
    fn fog_assisted_completes_and_uses_fog_tier() {
        let s = sim();
        let w = Workload::with_escalation(40, 100_000, 5.0, 0.3, 70);
        let r = run(
            &s,
            &w,
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        assert_eq!(r.jobs, 40);
        assert!(r.utilization_of(Tier::Fog) > 0.0, "fog runs the tiny model");
        assert_eq!(r.utilization_of(Tier::Edge), 0.0, "edges only forward");
    }

    #[test]
    fn fog_assisted_is_faster_than_edge_early_exit() {
        // The fog node has 10x the edge FLOPS, so running the tiny model
        // there beats the edge even after the extra raw-frame hop.
        let s = sim();
        let w = Workload::with_escalation(40, 100_000, 5.0, 0.3, 71);
        let edge = run(
            &s,
            &w,
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        let fog = run(
            &s,
            &w,
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        assert!(
            fog.mean_latency_s < edge.mean_latency_s,
            "fog {} vs edge {}",
            fog.mean_latency_s,
            edge.mean_latency_s
        );
    }

    #[test]
    fn fog_assisted_ships_raw_on_first_hop_only() {
        let s = sim();
        let w = Workload::with_escalation(30, 100_000, 5.0, 0.0, 72); // no escalation
        let r = run(
            &s,
            &w,
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        assert_eq!(r.edge_to_fog_bytes, 30 * 100_000, "raw frames to the fog");
        assert_eq!(r.fog_to_server_bytes, 30 * 256, "only annotations upstream");
    }
}
