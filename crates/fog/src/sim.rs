//! The discrete-event engine.

use std::collections::HashMap;

use scfault::{FaultPlan, LatencySpikes, OutageWindows, RetryPolicy, FOREVER};
use scpar::ScparConfig;
use sctelemetry::{
    prometheus_text, MetricsRegistry, Report, SampleSummary, SpanContext, Telemetry,
    TelemetryHandle, TraceId, WorkDelta, STREAM_FOG,
};
use simclock::{EventQueue, SeededRng, SimDuration, SimTime};

use crate::topology::{FogNodeId, Tier, Topology};
use crate::workload::{Job, Placement, Workload};

/// Metric name of the exact per-job latency histogram.
pub const METRIC_JOB_LATENCY: &str = "scfog_sim_job_latency_seconds";
/// Metric name of the completed-jobs counter.
pub const METRIC_JOBS: &str = "scfog_sim_jobs_total";
/// Metric name of the exact makespan record (single observation per run).
pub const METRIC_MAKESPAN: &str = "scfog_sim_makespan_seconds";
/// Counter: jobs whose compute moved to a healthy sibling after a crash.
pub const METRIC_JOBS_REROUTED: &str = "scfog_fault_jobs_rerouted_total";
/// Counter: jobs abandoned because no node could ever run them.
pub const METRIC_JOBS_LOST: &str = "scfog_fault_jobs_lost_total";
/// Counter: escalating jobs that fell back to the edge exit under partition.
pub const METRIC_JOBS_DEGRADED: &str = "scfog_fault_jobs_degraded_total";
/// Counter: transfer retry probes issued while an uplink was partitioned.
pub const METRIC_FAULT_RETRIES: &str = "scfog_fault_retries_total";
/// Counter: steps re-queued to wait for a crashed node's restart.
pub const METRIC_FAULT_REQUEUES: &str = "scfog_fault_requeues_total";
/// Exact histogram: per-job sim-time stalled on faults (max = recovery time).
pub const METRIC_FAULT_RECOVERY: &str = "scfog_fault_recovery_seconds";

fn link_bytes_metric(from: Tier, to: Tier) -> String {
    format!("scfog_link_{}_to_{}_bytes_total", from.name(), to.name())
}

fn busy_metric(tier: Tier) -> String {
    format!("scfog_sim_busy_{}_seconds", tier.name())
}

fn nodes_metric(tier: Tier) -> String {
    format!("scfog_topology_{}_nodes", tier.name())
}

/// One step of a job's execution plan.
#[derive(Debug, Clone)]
enum Step {
    /// Run `ops` operations on `node` (FIFO queueing on the node).
    Compute { node: FogNodeId, ops: f64 },
    /// Move `bytes` from `from` to `to` (FIFO queueing on the link).
    Transfer {
        from: FogNodeId,
        to: FogNodeId,
        bytes: u64,
    },
}

/// Busy-time utilization of one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierUtilization {
    /// The tier.
    pub tier: Tier,
    /// Total busy seconds across the tier's nodes.
    pub busy_secs: f64,
    /// Busy / (nodes × makespan), in `[0, 1]`.
    pub utilization: f64,
}

/// Results of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Jobs completed.
    pub jobs: usize,
    /// Mean end-to-end latency (arrival → annotation at cloud) in seconds.
    pub mean_latency_s: f64,
    /// Median latency in seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile latency in seconds.
    pub p95_latency_s: f64,
    /// 99th-percentile latency in seconds.
    pub p99_latency_s: f64,
    /// Maximum latency in seconds.
    pub max_latency_s: f64,
    /// Bytes crossing edge→fog links.
    pub edge_to_fog_bytes: u64,
    /// Bytes crossing fog→server links.
    pub fog_to_server_bytes: u64,
    /// Bytes crossing server→cloud links.
    pub server_to_cloud_bytes: u64,
    /// Per-tier utilization.
    pub tier_utilization: Vec<TierUtilization>,
    /// Completion time of the last job (makespan).
    pub makespan_s: f64,
    /// Jobs whose compute re-routed to a healthy sibling after a node crash.
    pub jobs_rerouted: usize,
    /// Jobs lost outright (their node never recovered and no sibling was up).
    pub jobs_lost: usize,
    /// Escalating jobs that degraded to the edge-exit answer under partition.
    pub jobs_degraded: usize,
    /// Longest fault-induced stall suffered by any job, in seconds — how long
    /// the system took to route around the worst injected failure.
    pub recovery_time_s: f64,
}

impl SimReport {
    /// Total bytes sent upstream across all tier boundaries.
    pub fn total_upstream_bytes(&self) -> u64 {
        self.edge_to_fog_bytes + self.fog_to_server_bytes + self.server_to_cloud_bytes
    }

    /// Utilization of one tier (0 if absent).
    pub fn utilization_of(&self, tier: Tier) -> f64 {
        self.tier_utilization
            .iter()
            .find(|u| u.tier == tier)
            .map(|u| u.utilization)
            .unwrap_or(0.0)
    }

    /// Rebuilds the report from a telemetry registry populated by a
    /// [`FogSimulator`] run — the report is a *view* over the registry, not
    /// a separate source of truth. Returns `None` if the registry has no
    /// fog-run metrics (e.g. the simulator ran with telemetry disabled).
    pub fn from_registry(registry: &MetricsRegistry) -> Option<SimReport> {
        let latency = registry.get(METRIC_JOB_LATENCY)?.as_histogram()?.snapshot();
        if latency.count == 0 {
            return None;
        }
        let makespan = registry
            .get(METRIC_MAKESPAN)
            .and_then(|e| e.as_histogram().map(|h| h.snapshot().max))
            .unwrap_or(0.0);
        let counter = |name: &str| {
            registry
                .get(name)
                .and_then(|e| e.as_counter().map(|c| c.get()))
                .unwrap_or(0)
        };
        let tier_utilization = Tier::ALL
            .iter()
            .map(|&tier| {
                let busy = registry
                    .get(&busy_metric(tier))
                    .and_then(|e| e.as_histogram().map(|h| h.snapshot().sum))
                    .unwrap_or(0.0);
                let nodes = registry
                    .get(&nodes_metric(tier))
                    .and_then(|e| e.as_gauge().map(|g| g.get()))
                    .unwrap_or(0);
                TierUtilization {
                    tier,
                    busy_secs: busy,
                    utilization: if nodes == 0 || makespan <= 0.0 {
                        0.0
                    } else {
                        (busy / (nodes as f64 * makespan)).min(1.0)
                    },
                }
            })
            .collect();
        Some(SimReport {
            jobs: latency.count as usize,
            mean_latency_s: latency.mean().unwrap_or(0.0),
            p50_latency_s: latency.percentile(0.50).unwrap_or(0.0),
            p95_latency_s: latency.percentile(0.95).unwrap_or(0.0),
            p99_latency_s: latency.percentile(0.99).unwrap_or(0.0),
            max_latency_s: latency.max,
            edge_to_fog_bytes: counter(&link_bytes_metric(Tier::Edge, Tier::Fog)),
            fog_to_server_bytes: counter(&link_bytes_metric(Tier::Fog, Tier::Server)),
            server_to_cloud_bytes: counter(&link_bytes_metric(Tier::Server, Tier::Cloud)),
            tier_utilization,
            makespan_s: makespan,
            jobs_rerouted: counter(METRIC_JOBS_REROUTED) as usize,
            jobs_lost: counter(METRIC_JOBS_LOST) as usize,
            jobs_degraded: counter(METRIC_JOBS_DEGRADED) as usize,
            recovery_time_s: registry
                .get(METRIC_FAULT_RECOVERY)
                .and_then(|e| e.as_histogram().map(|h| h.snapshot().max))
                .unwrap_or(0.0),
        })
    }
}

impl Report for SimReport {
    fn kv(&self) -> Vec<(String, f64)> {
        let mut kv = vec![
            ("jobs".to_string(), self.jobs as f64),
            ("mean_latency_s".to_string(), self.mean_latency_s),
            ("p50_latency_s".to_string(), self.p50_latency_s),
            ("p95_latency_s".to_string(), self.p95_latency_s),
            ("p99_latency_s".to_string(), self.p99_latency_s),
            ("max_latency_s".to_string(), self.max_latency_s),
            (
                "edge_to_fog_bytes".to_string(),
                self.edge_to_fog_bytes as f64,
            ),
            (
                "fog_to_server_bytes".to_string(),
                self.fog_to_server_bytes as f64,
            ),
            (
                "server_to_cloud_bytes".to_string(),
                self.server_to_cloud_bytes as f64,
            ),
            ("makespan_s".to_string(), self.makespan_s),
            ("jobs_rerouted".to_string(), self.jobs_rerouted as f64),
            ("jobs_lost".to_string(), self.jobs_lost as f64),
            ("jobs_degraded".to_string(), self.jobs_degraded as f64),
            ("recovery_time_s".to_string(), self.recovery_time_s),
        ];
        for u in &self.tier_utilization {
            kv.push((
                format!("utilization_{:?}", u.tier).to_lowercase(),
                u.utilization,
            ));
        }
        kv
    }
}

/// The simulator: executes a [`Workload`] against a [`Topology`] under a
/// [`Placement`] policy.
#[derive(Debug)]
pub struct FogSimulator {
    topology: Topology,
    telemetry: TelemetryHandle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Node(FogNodeId),
    LinkRes(FogNodeId, FogNodeId),
}

impl FogSimulator {
    /// Creates a simulator over `topology` with telemetry disabled.
    pub fn new(topology: Topology) -> Self {
        FogSimulator {
            topology,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Attaches a telemetry handle; subsequent runs emit per-tier
    /// queue-wait/busy histograms, per-link byte counters, per-job spans,
    /// and an exact latency histogram through it (unless a
    /// [`SimRunner::telemetry`] override routes them elsewhere).
    pub fn with_telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn plan(&self, job: &Job, placement: Placement, edge: FogNodeId) -> Vec<Step> {
        let topo = &self.topology;
        let fog = topo
            .ancestor_at(edge, Tier::Fog)
            .expect("edge has a fog parent");
        let server = topo
            .ancestor_at(edge, Tier::Server)
            .expect("fog has a server parent");
        let cloud = topo
            .ancestor_at(edge, Tier::Cloud)
            .expect("server has a cloud parent");
        let ann = job.annotation_bytes;
        match placement {
            Placement::AllEdge => vec![
                Step::Compute {
                    node: edge,
                    ops: job.total_ops,
                },
                Step::Transfer {
                    from: edge,
                    to: fog,
                    bytes: ann,
                },
                Step::Transfer {
                    from: fog,
                    to: server,
                    bytes: ann,
                },
                Step::Transfer {
                    from: server,
                    to: cloud,
                    bytes: ann,
                },
            ],
            Placement::ServerOnly => vec![
                Step::Transfer {
                    from: edge,
                    to: fog,
                    bytes: job.raw_bytes,
                },
                Step::Transfer {
                    from: fog,
                    to: server,
                    bytes: job.raw_bytes,
                },
                Step::Compute {
                    node: server,
                    ops: job.total_ops,
                },
                Step::Transfer {
                    from: server,
                    to: cloud,
                    bytes: ann,
                },
            ],
            Placement::AllCloud => vec![
                Step::Transfer {
                    from: edge,
                    to: fog,
                    bytes: job.raw_bytes,
                },
                Step::Transfer {
                    from: fog,
                    to: server,
                    bytes: job.raw_bytes,
                },
                Step::Transfer {
                    from: server,
                    to: cloud,
                    bytes: job.raw_bytes,
                },
                Step::Compute {
                    node: cloud,
                    ops: job.total_ops,
                },
            ],
            Placement::EarlyExit {
                local_fraction,
                feature_bytes,
            } => {
                let local = local_fraction.clamp(0.0, 1.0);
                let mut steps = vec![Step::Compute {
                    node: edge,
                    ops: job.total_ops * local,
                }];
                if job.escalates {
                    steps.push(Step::Transfer {
                        from: edge,
                        to: fog,
                        bytes: feature_bytes,
                    });
                    steps.push(Step::Transfer {
                        from: fog,
                        to: server,
                        bytes: feature_bytes,
                    });
                    steps.push(Step::Compute {
                        node: server,
                        ops: job.total_ops * (1.0 - local),
                    });
                    steps.push(Step::Transfer {
                        from: server,
                        to: cloud,
                        bytes: ann,
                    });
                } else {
                    steps.push(Step::Transfer {
                        from: edge,
                        to: fog,
                        bytes: ann,
                    });
                    steps.push(Step::Transfer {
                        from: fog,
                        to: server,
                        bytes: ann,
                    });
                    steps.push(Step::Transfer {
                        from: server,
                        to: cloud,
                        bytes: ann,
                    });
                }
                steps
            }
            Placement::FogAssisted {
                local_fraction,
                feature_bytes,
            } => {
                let local = local_fraction.clamp(0.0, 1.0);
                let mut steps = vec![
                    Step::Transfer {
                        from: edge,
                        to: fog,
                        bytes: job.raw_bytes,
                    },
                    Step::Compute {
                        node: fog,
                        ops: job.total_ops * local,
                    },
                ];
                if job.escalates {
                    steps.push(Step::Transfer {
                        from: fog,
                        to: server,
                        bytes: feature_bytes,
                    });
                    steps.push(Step::Compute {
                        node: server,
                        ops: job.total_ops * (1.0 - local),
                    });
                    steps.push(Step::Transfer {
                        from: server,
                        to: cloud,
                        bytes: ann,
                    });
                } else {
                    steps.push(Step::Transfer {
                        from: fog,
                        to: server,
                        bytes: ann,
                    });
                    steps.push(Step::Transfer {
                        from: server,
                        to: cloud,
                        bytes: ann,
                    });
                }
                steps
            }
        }
    }

    /// Starts building a configured run of `workload` on this simulator.
    ///
    /// The runner defaults to [`Placement::AllCloud`] (the paper's baseline),
    /// the simulator's own telemetry handle, and the ambient
    /// [`ScparConfig`] (`SCPAR_THREADS` / available parallelism) for sweeps.
    ///
    /// ```
    /// # use scfog::{FogSimulator, Placement, Topology, Workload};
    /// let sim = FogSimulator::new(Topology::four_tier(4, 2, 1));
    /// let w = Workload::uniform(20, 100_000, 5.0, 42);
    /// let report = sim
    ///     .runner(&w)
    ///     .placement(Placement::ServerOnly)
    ///     .run();
    /// assert_eq!(report.jobs, 20);
    /// ```
    pub fn runner<'a>(&'a self, workload: &'a Workload) -> SimRunner<'a> {
        SimRunner {
            sim: self,
            workload,
            placement: Placement::AllCloud,
            telemetry: None,
            par: ScparConfig::from_env(),
            faults: None,
            retry: default_retry(),
            trace_seed: 0,
        }
    }

    /// The annotation-only store-and-forward chain from `from` to the cloud —
    /// what remains of a job's plan after it degrades to the edge-exit answer.
    fn annotation_chain(&self, from: FogNodeId, ann: u64) -> Vec<Step> {
        let mut steps = Vec::new();
        let mut cur = from;
        while let Some((parent, _)) = self.topology.parent(cur) {
            steps.push(Step::Transfer {
                from: cur,
                to: parent,
                bytes: ann,
            });
            cur = parent;
        }
        steps
    }

    /// The engine under a fault plan. Fault semantics (documented in
    /// DESIGN.md "Fault model"):
    ///
    /// - **Node crash** (crash-stop, step-atomic): a compute step cannot
    ///   *start* on a down node. It re-routes to the lowest-id healthy
    ///   sibling in the same tier (paying one uplink-latency re-dispatch
    ///   penalty; byte flows stay on the planned path), or re-queues until
    ///   the restart, or — if the node never restarts and no sibling is up —
    ///   the job is lost.
    /// - **Link partition**: a transfer probes the uplink on the job's
    ///   deterministic retry schedule. If the schedule finds the link healed
    ///   the transfer proceeds; if it exhausts, an escalating early-exit job
    ///   *degrades* (accepts the edge-exit answer, queueing only annotations
    ///   upstream once the partition heals), anything else store-and-forwards
    ///   at heal time.
    /// - **Latency spike**: the link's propagation latency is multiplied for
    ///   the window's duration.
    ///
    /// All fault-induced waiting is accounted per job; the max is the run's
    /// `recovery_time_s`.
    #[allow(clippy::too_many_arguments)]
    fn run_faulted(
        &self,
        workload: &Workload,
        placement: Placement,
        telemetry: &TelemetryHandle,
        faults: Option<&FaultPlan>,
        retry: RetryPolicy,
        trace_seed: u64,
    ) -> SimReport {
        assert!(!workload.is_empty(), "empty workload");
        let edges = self.topology.nodes_in_tier(Tier::Edge);
        assert!(!edges.is_empty(), "topology has no edge nodes");

        // Build plans.
        let mut plans: Vec<Vec<Step>> = workload
            .jobs()
            .iter()
            .map(|j| self.plan(j, placement, edges[j.edge_index % edges.len()]))
            .collect();

        // Precomputed fault views: the hot loop never scans the schedule.
        let node_outages = faults.map(OutageWindows::node_crashes).unwrap_or_default();
        let link_outages = faults
            .map(OutageWindows::link_partitions)
            .unwrap_or_default();
        let spikes = faults.map(LatencySpikes::from_plan).unwrap_or_default();
        let fault_seed = faults.map(FaultPlan::seed).unwrap_or(0);
        let feature_bytes = match placement {
            Placement::EarlyExit { feature_bytes, .. }
            | Placement::FogAssisted { feature_bytes, .. } => Some(feature_bytes),
            _ => None,
        };

        let mut queue: EventQueue<(usize, usize)> = EventQueue::new();
        for (ji, job) in workload.jobs().iter().enumerate() {
            queue.schedule(job.arrival, (ji, 0));
        }

        let mut busy_until: HashMap<Resource, SimTime> = HashMap::new();
        let mut busy_total: HashMap<Resource, f64> = HashMap::new();
        let mut boundary_bytes: HashMap<(Tier, Tier), u64> = HashMap::new();
        let mut completion: Vec<Option<SimTime>> = vec![None; plans.len()];
        let mut stall: Vec<f64> = vec![0.0; plans.len()];
        let mut rerouted: Vec<bool> = vec![false; plans.len()];
        let mut degraded: Vec<bool> = vec![false; plans.len()];
        let mut lost: Vec<bool> = vec![false; plans.len()];
        let mut fault_retries: u64 = 0;
        let mut fault_requeues: u64 = 0;

        // Per-tier metric names, formatted once (the event loop is hot).
        let recording = telemetry.is_enabled();
        // One causal trace per job, rooted at a seed-derived id; step
        // spans become children in execution order.
        let job_ctx: Vec<SpanContext> = (0..plans.len())
            .map(|ji| SpanContext::root(TraceId::derive(trace_seed, STREAM_FOG, ji as u64)))
            .collect();
        let mut job_children: Vec<u64> = vec![0; plans.len()];
        let queue_wait_names: Vec<String> = Tier::ALL
            .iter()
            .map(|t| format!("scfog_sim_queue_wait_{}_seconds", t.name()))
            .collect();
        let tier_idx = |t: Tier| Tier::ALL.iter().position(|&x| x == t).expect("known tier");

        while let Some((now, (ji, si))) = queue.pop() {
            // `ready` is when the step may start once faults are dealt with.
            let mut ready = now;
            let step = plans[ji][si].clone();
            let (resource, duration) = match step {
                Step::Compute { node, ops } => {
                    if let Some(until) = node_outages.down_until(node.0, now) {
                        let tier = self.topology.tier(node);
                        let sibling = self
                            .topology
                            .nodes_in_tier(tier)
                            .iter()
                            .copied()
                            .find(|n| *n != node && !node_outages.is_down(n.0, now));
                        if let Some(alt) = sibling {
                            // Re-route: compute moves to the sibling after one
                            // re-dispatch hop; byte flows keep the planned path.
                            let penalty = self
                                .topology
                                .parent(node)
                                .map(|(_, l)| l.latency)
                                .unwrap_or(SimDuration::from_millis(1));
                            rerouted[ji] = true;
                            stall[ji] += penalty.as_secs_f64();
                            plans[ji][si] = Step::Compute { node: alt, ops };
                            queue.schedule(now + penalty, (ji, si));
                            if recording {
                                telemetry.event(
                                    "scfog",
                                    "reroute",
                                    now,
                                    &format!(
                                        "trace={} node={} alt={}",
                                        job_ctx[ji].trace.as_hex(),
                                        node.0,
                                        alt.0
                                    ),
                                );
                            }
                        } else if until < FOREVER {
                            // No healthy sibling: re-queue for the restart.
                            fault_requeues += 1;
                            stall[ji] += (until - now).as_secs_f64();
                            queue.schedule(until, (ji, si));
                            if recording {
                                telemetry.event(
                                    "scfog",
                                    "requeue",
                                    now,
                                    &format!(
                                        "trace={} node={}",
                                        job_ctx[ji].trace.as_hex(),
                                        node.0
                                    ),
                                );
                            }
                        } else {
                            lost[ji] = true;
                            if recording {
                                // Lost jobs still close their trace: a root
                                // span ending at the loss point plus a
                                // trace-tagged loss marker for SLO streams.
                                telemetry.span_in(
                                    "scfog",
                                    &format!("job/{ji}"),
                                    workload.jobs()[ji].arrival,
                                    now,
                                    job_ctx[ji],
                                );
                                telemetry.event(
                                    "scfog",
                                    "job/lost",
                                    now,
                                    &format!("trace={}", job_ctx[ji].trace.as_hex()),
                                );
                            }
                        }
                        continue;
                    }
                    let flops = self.topology.spec(node).flops;
                    (
                        Resource::Node(node),
                        SimDuration::from_secs_f64(ops / flops),
                    )
                }
                Step::Transfer { from, to, bytes } => {
                    let mut bytes = bytes;
                    if link_outages.is_down(from.0, ready) {
                        // Probe along the job-step-deterministic backoff
                        // schedule until the partition heals or we give up.
                        let mut rng = SeededRng::new(
                            fault_seed
                                ^ (ji as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                                ^ (si as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                        );
                        let mut attempt = 1;
                        while attempt < retry.max_attempts && link_outages.is_down(from.0, ready) {
                            ready += retry.delay(attempt, &mut rng);
                            fault_retries += 1;
                            attempt += 1;
                        }
                        if let Some(heal) = link_outages.down_until(from.0, ready) {
                            // Retries exhausted while still partitioned.
                            if heal == FOREVER {
                                lost[ji] = true;
                                if recording {
                                    telemetry.span_in(
                                        "scfog",
                                        &format!("job/{ji}"),
                                        workload.jobs()[ji].arrival,
                                        now,
                                        job_ctx[ji],
                                    );
                                    telemetry.event(
                                        "scfog",
                                        "job/lost",
                                        now,
                                        &format!("trace={}", job_ctx[ji].trace.as_hex()),
                                    );
                                }
                                continue;
                            }
                            if feature_bytes == Some(bytes) {
                                // Escalation can't reach the server: degrade
                                // to the edge-exit answer; only annotations go
                                // upstream, queued until the link heals.
                                degraded[ji] = true;
                                let ann = workload.jobs()[ji].annotation_bytes;
                                plans[ji].truncate(si);
                                let chain = self.annotation_chain(from, ann);
                                plans[ji].extend(chain);
                                bytes = ann;
                                if recording {
                                    telemetry.event(
                                        "scfog",
                                        "degraded",
                                        now,
                                        &format!(
                                            "trace={} node={}",
                                            job_ctx[ji].trace.as_hex(),
                                            from.0
                                        ),
                                    );
                                }
                            }
                            // Store-and-forward: the payload moves at heal time.
                            ready = heal;
                        }
                        stall[ji] += ready.saturating_since(now).as_secs_f64();
                    }
                    let (_, link) = self
                        .topology
                        .parent(from)
                        .filter(|(p, _)| *p == to)
                        .expect("transfers follow uplinks");
                    let tx = if link.bandwidth_bps.is_finite() {
                        bytes as f64 / link.bandwidth_bps
                    } else {
                        0.0
                    };
                    *boundary_bytes
                        .entry((self.topology.tier(from), self.topology.tier(to)))
                        .or_default() += bytes;
                    let latency = link.latency.mul_f64(spikes.factor_at(from.0, ready));
                    (
                        Resource::LinkRes(from, to),
                        latency + SimDuration::from_secs_f64(tx),
                    )
                }
            };
            let free_at = busy_until.get(&resource).copied().unwrap_or(SimTime::ZERO);
            let start = free_at.max(ready);
            let finish = start + duration;
            busy_until.insert(resource, finish);
            *busy_total.entry(resource).or_default() += duration.as_secs_f64();

            if recording {
                // Per-tier work attribution: the event loop is serial, so
                // deltas accumulate in one deterministic order regardless
                // of `SCPAR_THREADS`.
                let (tier, step_name) = match &plans[ji][si] {
                    Step::Compute { node, ops } => {
                        let tier = self.topology.tier(*node);
                        telemetry.work(
                            &format!("fog/{}/compute", tier.name()),
                            WorkDelta::flops(*ops as u64).with_items(1),
                        );
                        (tier, format!("compute/{}", tier.name()))
                    }
                    Step::Transfer { from, to, bytes } => {
                        let tier = self.topology.tier(*from);
                        telemetry.work(
                            &format!("fog/{}/transfer", tier.name()),
                            WorkDelta::bytes(*bytes).with_items(1),
                        );
                        (
                            tier,
                            format!("xfer/{}-{}", tier.name(), self.topology.tier(*to).name()),
                        )
                    }
                };
                telemetry.observe(
                    &queue_wait_names[tier_idx(tier)],
                    "time each step waited for its node or link, by tier",
                    start.saturating_since(now).as_secs_f64(),
                );
                // Child span of the job trace: covers resource wait plus
                // service, so consecutive children tile the job span and
                // fault stalls surface as parent self-time.
                let ctx = job_ctx[ji].child(job_children[ji]);
                job_children[ji] += 1;
                telemetry.span_in("scfog", &step_name, now, finish, ctx);
            }

            if si + 1 < plans[ji].len() {
                queue.schedule(finish, (ji, si + 1));
            } else {
                completion[ji] = Some(finish);
            }
        }

        // Latencies over completed jobs only, summarized by the
        // workspace-wide nearest-rank helper. Lost jobs have no latency.
        let latencies: Vec<f64> = workload
            .jobs()
            .iter()
            .zip(&completion)
            .filter_map(|(j, c)| c.map(|c| (c - j.arrival).as_secs_f64()))
            .collect();
        let stats = SampleSummary::from_sample(&latencies);
        let makespan = completion
            .iter()
            .flatten()
            .map(|c| c.as_secs_f64())
            .fold(0.0f64, f64::max);
        let jobs_rerouted = rerouted.iter().filter(|&&r| r).count();
        let jobs_lost = lost.iter().filter(|&&l| l).count();
        let jobs_degraded = degraded.iter().filter(|&&d| d).count();
        let recovery_time_s = stall.iter().copied().fold(0.0f64, f64::max);

        // Tier utilization.
        let tier_utilization: Vec<TierUtilization> = Tier::ALL
            .iter()
            .map(|&tier| {
                let nodes = self.topology.nodes_in_tier(tier);
                let busy: f64 = nodes
                    .iter()
                    .map(|n| busy_total.get(&Resource::Node(*n)).copied().unwrap_or(0.0))
                    .sum();
                TierUtilization {
                    tier,
                    busy_secs: busy,
                    utilization: if nodes.is_empty() || makespan <= 0.0 {
                        0.0
                    } else {
                        (busy / (nodes.len() as f64 * makespan)).min(1.0)
                    },
                }
            })
            .collect();

        if recording {
            self.record_run(
                telemetry,
                workload,
                &completion,
                &latencies,
                makespan,
                &tier_utilization,
                &boundary_bytes,
                &job_ctx,
            );
            let fault_tallies = FaultTallies {
                jobs_rerouted,
                jobs_lost,
                jobs_degraded,
                fault_retries,
                fault_requeues,
            };
            record_faults(telemetry, faults, &fault_tallies, &stall);
        }

        SimReport {
            jobs: latencies.len(),
            mean_latency_s: stats.as_ref().map_or(0.0, SampleSummary::mean),
            p50_latency_s: stats.as_ref().map_or(0.0, |s| s.p50),
            p95_latency_s: stats.as_ref().map_or(0.0, |s| s.p95),
            p99_latency_s: stats.as_ref().map_or(0.0, |s| s.p99),
            max_latency_s: stats.as_ref().map_or(0.0, |s| s.max),
            edge_to_fog_bytes: *boundary_bytes.get(&(Tier::Edge, Tier::Fog)).unwrap_or(&0),
            fog_to_server_bytes: *boundary_bytes.get(&(Tier::Fog, Tier::Server)).unwrap_or(&0),
            server_to_cloud_bytes: *boundary_bytes
                .get(&(Tier::Server, Tier::Cloud))
                .unwrap_or(&0),
            tier_utilization,
            makespan_s: makespan,
            jobs_rerouted,
            jobs_lost,
            jobs_degraded,
            recovery_time_s,
        }
    }

    /// Emits end-of-run aggregates so [`SimReport::from_registry`] can
    /// reconstruct the report as a pure view over the registry.
    #[allow(clippy::too_many_arguments)]
    fn record_run(
        &self,
        telemetry: &TelemetryHandle,
        workload: &Workload,
        completion: &[Option<SimTime>],
        latencies: &[f64],
        makespan: f64,
        tier_utilization: &[TierUtilization],
        boundary_bytes: &HashMap<(Tier, Tier), u64>,
        job_ctx: &[SpanContext],
    ) {
        let t = telemetry;
        t.counter_add(
            METRIC_JOBS,
            "jobs completed by the fog simulator",
            latencies.len() as u64,
        );
        for &l in latencies {
            t.observe_exact(METRIC_JOB_LATENCY, "end-to-end job latency (exact)", l);
        }
        t.observe_exact(METRIC_MAKESPAN, "completion time of the last job", makespan);
        for (ji, (job, done)) in workload.jobs().iter().zip(completion).enumerate() {
            // Lost jobs recorded their root at the loss point; completed
            // jobs close their trace here.
            if let Some(done) = done {
                t.span_in(
                    "scfog",
                    &format!("job/{ji}"),
                    job.arrival,
                    *done,
                    job_ctx[ji],
                );
            }
        }
        for u in tier_utilization {
            t.observe_exact(
                &busy_metric(u.tier),
                "total busy seconds across the tier's nodes",
                u.busy_secs,
            );
            t.gauge_set(
                &nodes_metric(u.tier),
                "nodes in the tier",
                self.topology.nodes_in_tier(u.tier).len() as i64,
            );
        }
        for (from, to) in [
            (Tier::Edge, Tier::Fog),
            (Tier::Fog, Tier::Server),
            (Tier::Server, Tier::Cloud),
        ] {
            t.counter_add(
                &link_bytes_metric(from, to),
                "bytes shipped across the tier boundary",
                *boundary_bytes.get(&(from, to)).unwrap_or(&0),
            );
        }
    }
}

/// The transfer-retry policy runs use unless [`SimRunner::retry`] overrides
/// it: four attempts from 50 ms, doubling, ±10 % seeded jitter.
fn default_retry() -> RetryPolicy {
    RetryPolicy::new(4, SimDuration::from_millis(50))
}

/// Per-run fault recovery tallies, bundled for telemetry recording.
struct FaultTallies {
    jobs_rerouted: usize,
    jobs_lost: usize,
    jobs_degraded: usize,
    fault_retries: u64,
    fault_requeues: u64,
}

/// Emits fault-injection events and recovery aggregates so that
/// [`SimReport::from_registry`] reconstructs the fault columns too.
fn record_faults(
    t: &TelemetryHandle,
    faults: Option<&FaultPlan>,
    tallies: &FaultTallies,
    stall: &[f64],
) {
    if let Some(plan) = faults {
        for e in plan.events() {
            // The fog layer applies node and link faults; message/block
            // faults belong to the stream and DFS layers.
            if matches!(
                e.kind,
                scfault::FaultKind::NodeCrash { .. }
                    | scfault::FaultKind::NodeRestart { .. }
                    | scfault::FaultKind::LinkPartition { .. }
                    | scfault::FaultKind::LinkLatencySpike { .. }
            ) {
                scfault::record_injection(t, e);
            }
        }
        let outages = OutageWindows::node_crashes(plan);
        for node in outages.targets() {
            for &(s, e) in outages.windows_for(node) {
                if e < FOREVER {
                    t.span("scfault", &format!("outage/node/{node}"), s, e);
                }
            }
        }
    }
    t.counter_add(
        METRIC_JOBS_REROUTED,
        "jobs re-routed to a healthy sibling",
        tallies.jobs_rerouted as u64,
    );
    t.counter_add(
        METRIC_JOBS_LOST,
        "jobs lost to unrecoverable crashes",
        tallies.jobs_lost as u64,
    );
    t.counter_add(
        METRIC_JOBS_DEGRADED,
        "jobs degraded to the edge-exit answer",
        tallies.jobs_degraded as u64,
    );
    t.counter_add(
        METRIC_FAULT_RETRIES,
        "transfer retry probes under partition",
        tallies.fault_retries,
    );
    t.counter_add(
        METRIC_FAULT_REQUEUES,
        "steps re-queued for a node restart",
        tallies.fault_requeues,
    );
    for &s in stall.iter().filter(|&&s| s > 0.0) {
        t.observe_exact(
            METRIC_FAULT_RECOVERY,
            "per-job sim-time stalled on injected faults",
            s,
        );
    }
}

/// Builder for configured simulation runs — the redesigned run API.
///
/// Obtained from [`FogSimulator::runner`]. A single [`SimRunner::run`] stays
/// serial (the discrete-event engine is inherently sequential); placement
/// *sweeps* fan out across the `scpar` worker pool, one placement per task.
///
/// Every sweep run records into its own private recorder, so the shared
/// handle is never written from worker threads: per-placement reports and
/// Prometheus snapshots are byte-identical for any thread count.
#[derive(Debug)]
pub struct SimRunner<'a> {
    sim: &'a FogSimulator,
    workload: &'a Workload,
    placement: Placement,
    telemetry: Option<TelemetryHandle>,
    par: ScparConfig,
    faults: Option<&'a FaultPlan>,
    retry: RetryPolicy,
    trace_seed: u64,
}

impl<'a> SimRunner<'a> {
    /// Sets the placement policy (defaults to [`Placement::AllCloud`]).
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Injects `plan`'s faults into the run (and into every sweep run):
    /// node crashes gate compute steps, link partitions gate transfers, and
    /// latency spikes stretch link propagation. See the DESIGN.md
    /// "Fault model" section for the exact semantics.
    ///
    /// ```
    /// # use scfog::{FogSimulator, Placement, Topology, Workload};
    /// use scfault::{FaultKind, FaultPlan};
    /// use simclock::{SimDuration, SimTime};
    ///
    /// let sim = FogSimulator::new(Topology::four_tier(4, 2, 2));
    /// let w = Workload::uniform(30, 100_000, 5.0, 42);
    /// // Crash the first analysis server one second in; restart it at t=5 s.
    /// let server = sim.topology().nodes_in_tier(scfog::Tier::Server)[0];
    /// let plan = FaultPlan::empty()
    ///     .with_event(SimTime::from_secs(1), FaultKind::NodeCrash { node: server.0 })
    ///     .with_event(SimTime::from_secs(5), FaultKind::NodeRestart { node: server.0 });
    /// let report = sim
    ///     .runner(&w)
    ///     .placement(Placement::ServerOnly)
    ///     .faults(&plan)
    ///     .run();
    /// assert_eq!(report.jobs + report.jobs_lost, 30);
    /// assert!(report.recovery_time_s >= 0.0);
    /// ```
    pub fn faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Replaces the transfer-retry policy used under link partitions
    /// (defaults to four attempts from 50 ms with seeded jitter).
    pub fn retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Routes this run's signals to `telemetry` instead of the simulator's
    /// own handle (which is left untouched).
    pub fn telemetry(mut self, telemetry: TelemetryHandle) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Sets the seed from which job trace ids are derived
    /// (`TraceId::derive(seed, STREAM_FOG, job_index)`), namespacing this
    /// run's traces in a shared recorder. Defaults to 0.
    pub fn trace_seed(mut self, seed: u64) -> Self {
        self.trace_seed = seed;
        self
    }

    /// Caps the worker pool used by [`SimRunner::sweep`] at `threads`.
    pub fn threads(mut self, threads: usize) -> Self {
        self.par = ScparConfig::with_threads(threads);
        self
    }

    /// Supplies a full parallelism config for sweeps.
    pub fn par_config(mut self, par: ScparConfig) -> Self {
        self.par = par;
        self
    }

    /// Runs the configured workload/placement once, serially.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty or the topology has no edge tier.
    pub fn run(self) -> SimReport {
        let telemetry = self.telemetry.as_ref().unwrap_or(&self.sim.telemetry);
        self.sim.run_faulted(
            self.workload,
            self.placement,
            telemetry,
            self.faults,
            self.retry,
            self.trace_seed,
        )
    }

    /// Runs the workload under each placement, fanning the runs out across
    /// the worker pool. Reports come back in `placements` order regardless
    /// of thread count; telemetry handles are not written to.
    pub fn sweep(&self, placements: &[Placement]) -> Vec<SimReport> {
        scpar::par_map(&self.par, placements, |p| {
            self.sim.run_faulted(
                self.workload,
                *p,
                &TelemetryHandle::disabled(),
                self.faults,
                self.retry,
                self.trace_seed,
            )
        })
    }

    /// Like [`SimRunner::sweep`], but each run records into a fresh private
    /// recorder whose Prometheus rendering is returned alongside the report.
    ///
    /// Because recorders are per-run and reports are combined in submission
    /// order, the returned snapshots are byte-identical for any thread
    /// count — the property checked by the determinism suite.
    pub fn sweep_recorded(&self, placements: &[Placement]) -> Vec<(SimReport, String)> {
        scpar::par_map(&self.par, placements, |p| {
            let recorder = Telemetry::shared();
            let report = self.sim.run_faulted(
                self.workload,
                *p,
                &recorder.handle(),
                self.faults,
                self.retry,
                self.trace_seed,
            );
            (report, prometheus_text(recorder.registry()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FogSimulator {
        FogSimulator::new(Topology::four_tier(4, 2, 1))
    }

    fn workload(n: usize, esc: f64) -> Workload {
        Workload::with_escalation(n, 100_000, 5.0, esc, 7)
    }

    fn run(s: &FogSimulator, w: &Workload, p: Placement) -> SimReport {
        s.runner(w).placement(p).run()
    }

    #[test]
    fn all_placements_complete_all_jobs() {
        let s = sim();
        let w = workload(40, 0.3);
        for placement in [
            Placement::AllEdge,
            Placement::ServerOnly,
            Placement::AllCloud,
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        ] {
            let r = run(&s, &w, placement);
            assert_eq!(r.jobs, 40, "{placement:?}");
            assert!(r.mean_latency_s > 0.0);
            assert!(r.makespan_s >= r.max_latency_s * 0.5);
        }
    }

    #[test]
    fn all_edge_ships_fewest_bytes() {
        let s = sim();
        let w = workload(40, 0.3);
        let edge = run(&s, &w, Placement::AllEdge);
        let cloud = run(&s, &w, Placement::AllCloud);
        assert!(edge.total_upstream_bytes() < cloud.total_upstream_bytes() / 10);
    }

    #[test]
    fn all_edge_is_slow_compute() {
        // Edge FLOPS are 200x slower than the server: full models on the
        // edge take far longer than shipping raw data to the server.
        let s = sim();
        let w = workload(20, 0.3);
        let edge = run(&s, &w, Placement::AllEdge);
        let server = run(&s, &w, Placement::ServerOnly);
        assert!(
            edge.mean_latency_s > server.mean_latency_s,
            "edge {} vs server {}",
            edge.mean_latency_s,
            server.mean_latency_s
        );
    }

    #[test]
    fn early_exit_bytes_scale_with_escalation() {
        let s = sim();
        let policy = Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        };
        let low = run(&s, &workload(100, 0.1), policy);
        let high = run(&s, &workload(100, 0.9), policy);
        assert!(
            high.fog_to_server_bytes > low.fog_to_server_bytes * 3,
            "low {} vs high {}",
            low.fog_to_server_bytes,
            high.fog_to_server_bytes
        );
    }

    #[test]
    fn early_exit_beats_all_cloud_on_upstream_bytes() {
        let s = sim();
        let w = workload(60, 0.3);
        let ee = run(
            &s,
            &w,
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        let cloud = run(&s, &w, Placement::AllCloud);
        assert!(ee.total_upstream_bytes() < cloud.total_upstream_bytes());
    }

    #[test]
    fn latency_percentiles_ordered() {
        let s = sim();
        let r = run(&s, &workload(80, 0.3), Placement::ServerOnly);
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.max_latency_s);
        assert!(r.mean_latency_s <= r.max_latency_s);
    }

    #[test]
    fn utilization_in_bounds() {
        let s = sim();
        let r = run(
            &s,
            &workload(60, 0.5),
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        for u in &r.tier_utilization {
            assert!((0.0..=1.0).contains(&u.utilization), "{u:?}");
        }
        // Early-exit keeps edges busy.
        assert!(r.utilization_of(Tier::Edge) > 0.0);
    }

    #[test]
    fn server_only_leaves_edges_idle() {
        let s = sim();
        let r = run(&s, &workload(40, 0.3), Placement::ServerOnly);
        assert_eq!(r.utilization_of(Tier::Edge), 0.0);
        assert!(r.utilization_of(Tier::Server) > 0.0);
    }

    #[test]
    fn queueing_grows_latency_under_load() {
        let s = sim();
        // Same jobs, 100x the arrival rate: queueing must raise p95.
        let slow = Workload::with_escalation(60, 100_000, 0.5, 0.3, 9);
        let fast = Workload::with_escalation(60, 100_000, 50.0, 0.3, 9);
        let r_slow = run(&s, &slow, Placement::AllEdge);
        let r_fast = run(&s, &fast, Placement::AllEdge);
        assert!(
            r_fast.p95_latency_s > r_slow.p95_latency_s,
            "fast {} vs slow {}",
            r_fast.p95_latency_s,
            r_slow.p95_latency_s
        );
    }

    #[test]
    fn deterministic_runs() {
        let s = sim();
        let w = workload(30, 0.3);
        let a = run(&s, &w, Placement::AllCloud);
        let b = run(&s, &w, Placement::AllCloud);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
        assert_eq!(a.total_upstream_bytes(), b.total_upstream_bytes());
    }

    #[test]
    fn runner_telemetry_override_leaves_sim_handle_untouched() {
        let shared = Telemetry::shared();
        let s = sim().with_telemetry(shared.handle());
        let private = Telemetry::shared();
        let w = workload(10, 0.3);
        let r = s
            .runner(&w)
            .placement(Placement::AllCloud)
            .telemetry(private.handle())
            .run();
        assert_eq!(r.jobs, 10);
        assert!(shared.registry().get(METRIC_JOBS).is_none());
        assert!(private.registry().get(METRIC_JOBS).is_some());
    }

    const SWEEP: [Placement; 4] = [
        Placement::AllEdge,
        Placement::ServerOnly,
        Placement::AllCloud,
        Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        },
    ];

    #[test]
    fn sweep_matches_individual_runs_in_order() {
        let s = sim();
        let w = workload(30, 0.3);
        let swept = s.runner(&w).threads(4).sweep(&SWEEP);
        assert_eq!(swept.len(), SWEEP.len());
        for (p, r) in SWEEP.iter().zip(&swept) {
            let solo = run(&s, &w, *p);
            assert_eq!(solo.mean_latency_s, r.mean_latency_s, "{p:?}");
            assert_eq!(solo.total_upstream_bytes(), r.total_upstream_bytes());
        }
    }

    #[test]
    fn sweep_recorded_snapshots_are_thread_count_independent() {
        let s = sim();
        let w = workload(20, 0.3);
        let serial = s.runner(&w).threads(1).sweep_recorded(&SWEEP);
        let parallel = s.runner(&w).threads(4).sweep_recorded(&SWEEP);
        for ((ra, ta), (rb, tb)) in serial.iter().zip(&parallel) {
            assert_eq!(ra.mean_latency_s, rb.mean_latency_s);
            assert_eq!(ta, tb, "prometheus snapshots must be byte-identical");
        }
    }
}

#[cfg(test)]
mod fog_assisted_tests {
    use super::*;

    fn sim() -> FogSimulator {
        FogSimulator::new(Topology::four_tier(4, 2, 1))
    }

    fn run(s: &FogSimulator, w: &Workload, p: Placement) -> SimReport {
        s.runner(w).placement(p).run()
    }

    #[test]
    fn fog_assisted_completes_and_uses_fog_tier() {
        let s = sim();
        let w = Workload::with_escalation(40, 100_000, 5.0, 0.3, 70);
        let r = run(
            &s,
            &w,
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        assert_eq!(r.jobs, 40);
        assert!(r.utilization_of(Tier::Fog) > 0.0, "fog runs the tiny model");
        assert_eq!(r.utilization_of(Tier::Edge), 0.0, "edges only forward");
    }

    #[test]
    fn fog_assisted_is_faster_than_edge_early_exit() {
        // The fog node has 10x the edge FLOPS, so running the tiny model
        // there beats the edge even after the extra raw-frame hop.
        let s = sim();
        let w = Workload::with_escalation(40, 100_000, 5.0, 0.3, 71);
        let edge = run(
            &s,
            &w,
            Placement::EarlyExit {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        let fog = run(
            &s,
            &w,
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        assert!(
            fog.mean_latency_s < edge.mean_latency_s,
            "fog {} vs edge {}",
            fog.mean_latency_s,
            edge.mean_latency_s
        );
    }

    #[test]
    fn fog_assisted_ships_raw_on_first_hop_only() {
        let s = sim();
        let w = Workload::with_escalation(30, 100_000, 5.0, 0.0, 72); // no escalation
        let r = run(
            &s,
            &w,
            Placement::FogAssisted {
                local_fraction: 0.3,
                feature_bytes: 20_000,
            },
        );
        assert_eq!(r.edge_to_fog_bytes, 30 * 100_000, "raw frames to the fog");
        assert_eq!(r.fog_to_server_bytes, 30 * 256, "only annotations upstream");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use scfault::{FaultKind, FaultSpec};

    fn crash_window(node: FogNodeId, from: SimTime, to: SimTime) -> FaultPlan {
        FaultPlan::empty()
            .with_event(from, FaultKind::NodeCrash { node: node.0 })
            .with_event(to, FaultKind::NodeRestart { node: node.0 })
    }

    #[test]
    fn empty_plan_matches_plain_run() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 1));
        let w = Workload::with_escalation(40, 100_000, 5.0, 0.3, 7);
        let plain = s.runner(&w).placement(Placement::ServerOnly).run();
        let empty = FaultPlan::empty();
        let faulted = s
            .runner(&w)
            .placement(Placement::ServerOnly)
            .faults(&empty)
            .run();
        assert_eq!(plain.mean_latency_s, faulted.mean_latency_s);
        assert_eq!(faulted.jobs_rerouted, 0);
        assert_eq!(faulted.jobs_lost, 0);
        assert_eq!(faulted.recovery_time_s, 0.0);
    }

    #[test]
    fn server_crash_reroutes_to_sibling() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 2));
        let w = Workload::uniform(40, 100_000, 5.0, 11);
        let victim = s.topology().nodes_in_tier(Tier::Server)[0];
        let plan = crash_window(victim, SimTime::ZERO, SimTime::from_secs(3600));
        let r = s
            .runner(&w)
            .placement(Placement::ServerOnly)
            .faults(&plan)
            .run();
        assert_eq!(r.jobs, 40, "re-routing loses nothing");
        assert_eq!(r.jobs_lost, 0);
        assert!(r.jobs_rerouted > 0, "victim's jobs moved to the sibling");
        assert!(r.recovery_time_s > 0.0);
    }

    #[test]
    fn crash_without_sibling_requeues_until_restart() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 1));
        let w = Workload::uniform(20, 100_000, 5.0, 12);
        let server = s.topology().nodes_in_tier(Tier::Server)[0];
        let plan = crash_window(server, SimTime::ZERO, SimTime::from_secs(30));
        let baseline = s.runner(&w).placement(Placement::ServerOnly).run();
        let r = s
            .runner(&w)
            .placement(Placement::ServerOnly)
            .faults(&plan)
            .run();
        assert_eq!(r.jobs, 20, "jobs wait out the outage");
        assert_eq!(r.jobs_lost, 0);
        assert_eq!(r.jobs_rerouted, 0, "no sibling server exists");
        assert!(
            r.max_latency_s > baseline.max_latency_s,
            "waiting for the restart costs latency"
        );
        assert!(r.recovery_time_s > 0.0 && r.recovery_time_s <= 30.0);
    }

    #[test]
    fn permanent_cloud_crash_loses_jobs() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 1));
        let w = Workload::uniform(15, 100_000, 5.0, 13);
        let cloud = s.topology().nodes_in_tier(Tier::Cloud)[0];
        let plan =
            FaultPlan::empty().with_event(SimTime::ZERO, FaultKind::NodeCrash { node: cloud.0 });
        let r = s
            .runner(&w)
            .placement(Placement::AllCloud)
            .faults(&plan)
            .run();
        assert_eq!(r.jobs, 0, "the only cloud never comes back");
        assert_eq!(r.jobs_lost, 15);
        assert_eq!(r.mean_latency_s, 0.0, "no completed jobs, no latency");
    }

    #[test]
    fn partition_store_and_forwards() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 1));
        let w = Workload::uniform(20, 100_000, 5.0, 14);
        let edge = s.topology().nodes_in_tier(Tier::Edge)[0];
        let plan = FaultPlan::empty().with_event(
            SimTime::ZERO,
            FaultKind::LinkPartition {
                node: edge.0,
                duration: SimDuration::from_secs(20),
            },
        );
        let r = s
            .runner(&w)
            .placement(Placement::ServerOnly)
            .faults(&plan)
            .run();
        assert_eq!(r.jobs, 20);
        assert_eq!(r.jobs_lost, 0, "partitions heal; payloads are queued");
        assert!(r.recovery_time_s > 0.0);
    }

    #[test]
    fn partitioned_escalation_degrades_to_edge_exit() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 1));
        // Every job escalates, so every job needs the fog->server hop.
        let w = Workload::with_escalation(20, 100_000, 5.0, 1.0, 15);
        let placement = Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        };
        let fogs = s.topology().nodes_in_tier(Tier::Fog);
        let mut plan = FaultPlan::empty();
        for f in &fogs {
            plan = plan.with_event(
                SimTime::ZERO,
                FaultKind::LinkPartition {
                    node: f.0,
                    duration: SimDuration::from_secs(3600),
                },
            );
        }
        let healthy = s.runner(&w).placement(placement).run();
        let r = s.runner(&w).placement(placement).faults(&plan).run();
        assert_eq!(r.jobs, 20, "degraded jobs still complete");
        assert_eq!(r.jobs_degraded, 20, "every escalation fell back");
        assert!(
            r.fog_to_server_bytes < healthy.fog_to_server_bytes,
            "features never cross the partition: {} vs {}",
            r.fog_to_server_bytes,
            healthy.fog_to_server_bytes
        );
    }

    #[test]
    fn latency_spike_stretches_transfers() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 1));
        let w = Workload::uniform(20, 100_000, 5.0, 16);
        let mut plan = FaultPlan::empty();
        for e in &s.topology().nodes_in_tier(Tier::Edge) {
            plan = plan.with_event(
                SimTime::ZERO,
                FaultKind::LinkLatencySpike {
                    node: e.0,
                    factor: 50.0,
                    duration: SimDuration::from_secs(3600),
                },
            );
        }
        let healthy = s.runner(&w).placement(Placement::ServerOnly).run();
        let spiked = s
            .runner(&w)
            .placement(Placement::ServerOnly)
            .faults(&plan)
            .run();
        assert!(
            spiked.mean_latency_s > healthy.mean_latency_s,
            "spiked {} vs healthy {}",
            spiked.mean_latency_s,
            healthy.mean_latency_s
        );
        assert_eq!(spiked.jobs_lost, 0);
    }

    #[test]
    fn fault_metrics_roundtrip_through_registry() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 2));
        let w = Workload::uniform(30, 100_000, 5.0, 17);
        let victim = s.topology().nodes_in_tier(Tier::Server)[0];
        let plan = crash_window(victim, SimTime::ZERO, SimTime::from_secs(3600));
        let rec = Telemetry::shared();
        let r = s
            .runner(&w)
            .placement(Placement::ServerOnly)
            .faults(&plan)
            .telemetry(rec.handle())
            .run();
        let rebuilt = SimReport::from_registry(rec.registry()).expect("metrics recorded");
        assert_eq!(rebuilt.jobs_rerouted, r.jobs_rerouted);
        assert_eq!(rebuilt.jobs_lost, r.jobs_lost);
        assert_eq!(rebuilt.jobs_degraded, r.jobs_degraded);
        assert_eq!(rebuilt.recovery_time_s, r.recovery_time_s);
        let injected = rec
            .registry()
            .get(scfault::METRIC_INJECTED)
            .and_then(|e| e.as_counter().map(|c| c.get()))
            .unwrap_or(0);
        assert_eq!(injected, 2, "crash + restart recorded as injections");
    }

    #[test]
    fn generated_plan_runs_are_deterministic() {
        let s = FogSimulator::new(Topology::four_tier(4, 2, 2));
        let w = Workload::with_escalation(40, 100_000, 5.0, 0.3, 18);
        let spec =
            FaultSpec::new(SimDuration::from_secs(30), s.topology().len() as u32).intensity(2.0);
        let plan = FaultPlan::generate(&spec, 99);
        let a = s
            .runner(&w)
            .placement(Placement::ServerOnly)
            .faults(&plan)
            .run();
        let b = s
            .runner(&w)
            .placement(Placement::ServerOnly)
            .faults(&plan)
            .run();
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
        assert_eq!(a.jobs_rerouted, b.jobs_rerouted);
        assert_eq!(a.recovery_time_s, b.recovery_time_s);
    }
}
