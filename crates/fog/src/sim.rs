//! The discrete-event engine.

use std::collections::HashMap;

use simclock::{EventQueue, SimDuration, SimTime};

use crate::topology::{FogNodeId, Tier, Topology};
use crate::workload::{Job, Placement, Workload};

/// One step of a job's execution plan.
#[derive(Debug, Clone)]
enum Step {
    /// Run `ops` operations on `node` (FIFO queueing on the node).
    Compute { node: FogNodeId, ops: f64 },
    /// Move `bytes` from `from` to `to` (FIFO queueing on the link).
    Transfer { from: FogNodeId, to: FogNodeId, bytes: u64 },
}

/// Busy-time utilization of one tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierUtilization {
    /// The tier.
    pub tier: Tier,
    /// Total busy seconds across the tier's nodes.
    pub busy_secs: f64,
    /// Busy / (nodes × makespan), in `[0, 1]`.
    pub utilization: f64,
}

/// Results of a simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Jobs completed.
    pub jobs: usize,
    /// Mean end-to-end latency (arrival → annotation at cloud) in seconds.
    pub mean_latency_s: f64,
    /// Median latency in seconds.
    pub p50_latency_s: f64,
    /// 95th-percentile latency in seconds.
    pub p95_latency_s: f64,
    /// Maximum latency in seconds.
    pub max_latency_s: f64,
    /// Bytes crossing edge→fog links.
    pub edge_to_fog_bytes: u64,
    /// Bytes crossing fog→server links.
    pub fog_to_server_bytes: u64,
    /// Bytes crossing server→cloud links.
    pub server_to_cloud_bytes: u64,
    /// Per-tier utilization.
    pub tier_utilization: Vec<TierUtilization>,
    /// Completion time of the last job (makespan).
    pub makespan_s: f64,
}

impl SimReport {
    /// Total bytes sent upstream across all tier boundaries.
    pub fn total_upstream_bytes(&self) -> u64 {
        self.edge_to_fog_bytes + self.fog_to_server_bytes + self.server_to_cloud_bytes
    }

    /// Utilization of one tier (0 if absent).
    pub fn utilization_of(&self, tier: Tier) -> f64 {
        self.tier_utilization
            .iter()
            .find(|u| u.tier == tier)
            .map(|u| u.utilization)
            .unwrap_or(0.0)
    }
}

/// The simulator: executes a [`Workload`] against a [`Topology`] under a
/// [`Placement`] policy.
#[derive(Debug)]
pub struct FogSimulator {
    topology: Topology,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Resource {
    Node(FogNodeId),
    LinkRes(FogNodeId, FogNodeId),
}

impl FogSimulator {
    /// Creates a simulator over `topology`.
    pub fn new(topology: Topology) -> Self {
        FogSimulator { topology }
    }

    /// The topology being simulated.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn plan(&self, job: &Job, placement: Placement, edge: FogNodeId) -> Vec<Step> {
        let topo = &self.topology;
        let fog = topo.ancestor_at(edge, Tier::Fog).expect("edge has a fog parent");
        let server = topo.ancestor_at(edge, Tier::Server).expect("fog has a server parent");
        let cloud = topo.ancestor_at(edge, Tier::Cloud).expect("server has a cloud parent");
        let ann = job.annotation_bytes;
        match placement {
            Placement::AllEdge => vec![
                Step::Compute { node: edge, ops: job.total_ops },
                Step::Transfer { from: edge, to: fog, bytes: ann },
                Step::Transfer { from: fog, to: server, bytes: ann },
                Step::Transfer { from: server, to: cloud, bytes: ann },
            ],
            Placement::ServerOnly => vec![
                Step::Transfer { from: edge, to: fog, bytes: job.raw_bytes },
                Step::Transfer { from: fog, to: server, bytes: job.raw_bytes },
                Step::Compute { node: server, ops: job.total_ops },
                Step::Transfer { from: server, to: cloud, bytes: ann },
            ],
            Placement::AllCloud => vec![
                Step::Transfer { from: edge, to: fog, bytes: job.raw_bytes },
                Step::Transfer { from: fog, to: server, bytes: job.raw_bytes },
                Step::Transfer { from: server, to: cloud, bytes: job.raw_bytes },
                Step::Compute { node: cloud, ops: job.total_ops },
            ],
            Placement::EarlyExit { local_fraction, feature_bytes } => {
                let local = local_fraction.clamp(0.0, 1.0);
                let mut steps = vec![Step::Compute { node: edge, ops: job.total_ops * local }];
                if job.escalates {
                    steps.push(Step::Transfer { from: edge, to: fog, bytes: feature_bytes });
                    steps.push(Step::Transfer { from: fog, to: server, bytes: feature_bytes });
                    steps.push(Step::Compute {
                        node: server,
                        ops: job.total_ops * (1.0 - local),
                    });
                    steps.push(Step::Transfer { from: server, to: cloud, bytes: ann });
                } else {
                    steps.push(Step::Transfer { from: edge, to: fog, bytes: ann });
                    steps.push(Step::Transfer { from: fog, to: server, bytes: ann });
                    steps.push(Step::Transfer { from: server, to: cloud, bytes: ann });
                }
                steps
            }
            Placement::FogAssisted { local_fraction, feature_bytes } => {
                let local = local_fraction.clamp(0.0, 1.0);
                let mut steps = vec![
                    Step::Transfer { from: edge, to: fog, bytes: job.raw_bytes },
                    Step::Compute { node: fog, ops: job.total_ops * local },
                ];
                if job.escalates {
                    steps.push(Step::Transfer { from: fog, to: server, bytes: feature_bytes });
                    steps.push(Step::Compute {
                        node: server,
                        ops: job.total_ops * (1.0 - local),
                    });
                    steps.push(Step::Transfer { from: server, to: cloud, bytes: ann });
                } else {
                    steps.push(Step::Transfer { from: fog, to: server, bytes: ann });
                    steps.push(Step::Transfer { from: server, to: cloud, bytes: ann });
                }
                steps
            }
        }
    }

    /// Runs the workload to completion, returning aggregate metrics.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty or the topology has no edge tier.
    pub fn run(&self, workload: &Workload, placement: Placement) -> SimReport {
        assert!(!workload.is_empty(), "empty workload");
        let edges = self.topology.nodes_in_tier(Tier::Edge);
        assert!(!edges.is_empty(), "topology has no edge nodes");

        // Build plans.
        let plans: Vec<Vec<Step>> = workload
            .jobs()
            .iter()
            .map(|j| self.plan(j, placement, edges[j.edge_index % edges.len()]))
            .collect();

        let mut queue: EventQueue<(usize, usize)> = EventQueue::new();
        for (ji, job) in workload.jobs().iter().enumerate() {
            queue.schedule(job.arrival, (ji, 0));
        }

        let mut busy_until: HashMap<Resource, SimTime> = HashMap::new();
        let mut busy_total: HashMap<Resource, f64> = HashMap::new();
        let mut boundary_bytes: HashMap<(Tier, Tier), u64> = HashMap::new();
        let mut completion: Vec<Option<SimTime>> = vec![None; plans.len()];

        while let Some((now, (ji, si))) = queue.pop() {
            let step = &plans[ji][si];
            let (resource, duration) = match step {
                Step::Compute { node, ops } => {
                    let flops = self.topology.spec(*node).flops;
                    (Resource::Node(*node), SimDuration::from_secs_f64(ops / flops))
                }
                Step::Transfer { from, to, bytes } => {
                    let (_, link) = self
                        .topology
                        .parent(*from)
                        .filter(|(p, _)| p == to)
                        .expect("transfers follow uplinks");
                    let tx = if link.bandwidth_bps.is_finite() {
                        *bytes as f64 / link.bandwidth_bps
                    } else {
                        0.0
                    };
                    *boundary_bytes
                        .entry((self.topology.tier(*from), self.topology.tier(*to)))
                        .or_default() += bytes;
                    (
                        Resource::LinkRes(*from, *to),
                        link.latency + SimDuration::from_secs_f64(tx),
                    )
                }
            };
            let free_at = busy_until.get(&resource).copied().unwrap_or(SimTime::ZERO);
            let start = free_at.max(now);
            let finish = start + duration;
            busy_until.insert(resource, finish);
            *busy_total.entry(resource).or_default() += duration.as_secs_f64();

            if si + 1 < plans[ji].len() {
                queue.schedule(finish, (ji, si + 1));
            } else {
                completion[ji] = Some(finish);
            }
        }

        // Latencies.
        let mut latencies: Vec<f64> = workload
            .jobs()
            .iter()
            .zip(&completion)
            .map(|(j, c)| (c.expect("job completed") - j.arrival).as_secs_f64())
            .collect();
        latencies.sort_by(f64::total_cmp);
        let n = latencies.len();
        let pct = |p: f64| latencies[((n as f64 * p) as usize).min(n - 1)];
        let makespan = completion
            .iter()
            .map(|c| c.expect("job completed").as_secs_f64())
            .fold(0.0f64, f64::max);

        // Tier utilization.
        let tier_utilization = Tier::ALL
            .iter()
            .map(|&tier| {
                let nodes = self.topology.nodes_in_tier(tier);
                let busy: f64 = nodes
                    .iter()
                    .map(|n| busy_total.get(&Resource::Node(*n)).copied().unwrap_or(0.0))
                    .sum();
                TierUtilization {
                    tier,
                    busy_secs: busy,
                    utilization: if nodes.is_empty() || makespan <= 0.0 {
                        0.0
                    } else {
                        (busy / (nodes.len() as f64 * makespan)).min(1.0)
                    },
                }
            })
            .collect();

        SimReport {
            jobs: n,
            mean_latency_s: latencies.iter().sum::<f64>() / n as f64,
            p50_latency_s: pct(0.50),
            p95_latency_s: pct(0.95),
            max_latency_s: latencies[n - 1],
            edge_to_fog_bytes: *boundary_bytes.get(&(Tier::Edge, Tier::Fog)).unwrap_or(&0),
            fog_to_server_bytes: *boundary_bytes
                .get(&(Tier::Fog, Tier::Server))
                .unwrap_or(&0),
            server_to_cloud_bytes: *boundary_bytes
                .get(&(Tier::Server, Tier::Cloud))
                .unwrap_or(&0),
            tier_utilization,
            makespan_s: makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> FogSimulator {
        FogSimulator::new(Topology::four_tier(4, 2, 1))
    }

    fn workload(n: usize, esc: f64) -> Workload {
        Workload::with_escalation(n, 100_000, 5.0, esc, 7)
    }

    #[test]
    fn all_placements_complete_all_jobs() {
        let s = sim();
        let w = workload(40, 0.3);
        for placement in [
            Placement::AllEdge,
            Placement::ServerOnly,
            Placement::AllCloud,
            Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 },
        ] {
            let r = s.run(&w, placement);
            assert_eq!(r.jobs, 40, "{placement:?}");
            assert!(r.mean_latency_s > 0.0);
            assert!(r.makespan_s >= r.max_latency_s * 0.5);
        }
    }

    #[test]
    fn all_edge_ships_fewest_bytes() {
        let s = sim();
        let w = workload(40, 0.3);
        let edge = s.run(&w, Placement::AllEdge);
        let cloud = s.run(&w, Placement::AllCloud);
        assert!(edge.total_upstream_bytes() < cloud.total_upstream_bytes() / 10);
    }

    #[test]
    fn all_edge_is_slow_compute() {
        // Edge FLOPS are 200x slower than the server: full models on the
        // edge take far longer than shipping raw data to the server.
        let s = sim();
        let w = workload(20, 0.3);
        let edge = s.run(&w, Placement::AllEdge);
        let server = s.run(&w, Placement::ServerOnly);
        assert!(
            edge.mean_latency_s > server.mean_latency_s,
            "edge {} vs server {}",
            edge.mean_latency_s,
            server.mean_latency_s
        );
    }

    #[test]
    fn early_exit_bytes_scale_with_escalation() {
        let s = sim();
        let policy = Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 };
        let low = s.run(&workload(100, 0.1), policy);
        let high = s.run(&workload(100, 0.9), policy);
        assert!(
            high.fog_to_server_bytes > low.fog_to_server_bytes * 3,
            "low {} vs high {}",
            low.fog_to_server_bytes,
            high.fog_to_server_bytes
        );
    }

    #[test]
    fn early_exit_beats_all_cloud_on_upstream_bytes() {
        let s = sim();
        let w = workload(60, 0.3);
        let ee = s.run(&w, Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 });
        let cloud = s.run(&w, Placement::AllCloud);
        assert!(ee.total_upstream_bytes() < cloud.total_upstream_bytes());
    }

    #[test]
    fn latency_percentiles_ordered() {
        let s = sim();
        let r = s.run(&workload(80, 0.3), Placement::ServerOnly);
        assert!(r.p50_latency_s <= r.p95_latency_s);
        assert!(r.p95_latency_s <= r.max_latency_s);
        assert!(r.mean_latency_s <= r.max_latency_s);
    }

    #[test]
    fn utilization_in_bounds() {
        let s = sim();
        let r = s.run(&workload(60, 0.5), Placement::EarlyExit {
            local_fraction: 0.3,
            feature_bytes: 20_000,
        });
        for u in &r.tier_utilization {
            assert!((0.0..=1.0).contains(&u.utilization), "{u:?}");
        }
        // Early-exit keeps edges busy.
        assert!(r.utilization_of(Tier::Edge) > 0.0);
    }

    #[test]
    fn server_only_leaves_edges_idle() {
        let s = sim();
        let r = s.run(&workload(40, 0.3), Placement::ServerOnly);
        assert_eq!(r.utilization_of(Tier::Edge), 0.0);
        assert!(r.utilization_of(Tier::Server) > 0.0);
    }

    #[test]
    fn queueing_grows_latency_under_load() {
        let s = sim();
        // Same jobs, 100x the arrival rate: queueing must raise p95.
        let slow = Workload::with_escalation(60, 100_000, 0.5, 0.3, 9);
        let fast = Workload::with_escalation(60, 100_000, 50.0, 0.3, 9);
        let r_slow = s.run(&slow, Placement::AllEdge);
        let r_fast = s.run(&fast, Placement::AllEdge);
        assert!(
            r_fast.p95_latency_s > r_slow.p95_latency_s,
            "fast {} vs slow {}",
            r_fast.p95_latency_s,
            r_slow.p95_latency_s
        );
    }

    #[test]
    fn deterministic_runs() {
        let s = sim();
        let w = workload(30, 0.3);
        let a = s.run(&w, Placement::AllCloud);
        let b = s.run(&w, Placement::AllCloud);
        assert_eq!(a.mean_latency_s, b.mean_latency_s);
        assert_eq!(a.total_upstream_bytes(), b.total_upstream_bytes());
    }
}

#[cfg(test)]
mod fog_assisted_tests {
    use super::*;

    fn sim() -> FogSimulator {
        FogSimulator::new(Topology::four_tier(4, 2, 1))
    }

    #[test]
    fn fog_assisted_completes_and_uses_fog_tier() {
        let s = sim();
        let w = Workload::with_escalation(40, 100_000, 5.0, 0.3, 70);
        let r = s.run(
            &w,
            Placement::FogAssisted { local_fraction: 0.3, feature_bytes: 20_000 },
        );
        assert_eq!(r.jobs, 40);
        assert!(r.utilization_of(Tier::Fog) > 0.0, "fog runs the tiny model");
        assert_eq!(r.utilization_of(Tier::Edge), 0.0, "edges only forward");
    }

    #[test]
    fn fog_assisted_is_faster_than_edge_early_exit() {
        // The fog node has 10x the edge FLOPS, so running the tiny model
        // there beats the edge even after the extra raw-frame hop.
        let s = sim();
        let w = Workload::with_escalation(40, 100_000, 5.0, 0.3, 71);
        let edge = s.run(
            &w,
            Placement::EarlyExit { local_fraction: 0.3, feature_bytes: 20_000 },
        );
        let fog = s.run(
            &w,
            Placement::FogAssisted { local_fraction: 0.3, feature_bytes: 20_000 },
        );
        assert!(
            fog.mean_latency_s < edge.mean_latency_s,
            "fog {} vs edge {}",
            fog.mean_latency_s,
            edge.mean_latency_s
        );
    }

    #[test]
    fn fog_assisted_ships_raw_on_first_hop_only() {
        let s = sim();
        let w = Workload::with_escalation(30, 100_000, 5.0, 0.0, 72); // no escalation
        let r = s.run(
            &w,
            Placement::FogAssisted { local_fraction: 0.3, feature_bytes: 20_000 },
        );
        assert_eq!(r.edge_to_fog_bytes, 30 * 100_000, "raw frames to the fog");
        assert_eq!(r.fog_to_server_bytes, 30 * 256, "only annotations upstream");
    }
}
